//! Benchmarking for the `hdp-osr` workspace.
//!
//! Self-contained stand-in for the subset of the `criterion 0.5` API the
//! workspace's benches use ([`Criterion`], benchmark groups, [`Bencher`]
//! with `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros). The build environment has no access to crates.io, so the real
//! criterion cannot be fetched.
//!
//! Methodology (simplified but honest): each benchmark runs a warm-up
//! iteration, then `sample_size` timed iterations, and reports the median,
//! minimum, and mean wall-clock time per iteration to stdout. There is no
//! statistical outlier analysis, HTML report, or saved baseline.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_benchmark(&name.into(), self.sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
    }

    /// Finish the group (kept for API compatibility; reporting is per
    /// benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Hands the benchmark body its timing loop.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` as-is.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; only `routine` is timed.
    pub fn iter_batched<I, T, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> T,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Input-size hint for [`Bencher::iter_batched`]; the shim times identically
/// for both, but keeps the names for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is cheap to hold in memory many times over.
    SmallInput,
    /// Input is large; batch sparingly.
    LargeInput,
}

/// Summary statistics of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Median time per iteration.
    pub median: Duration,
    /// Minimum time per iteration.
    pub min: Duration,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Number of timed iterations.
    pub samples: usize,
}

fn summarize(samples: &mut [Duration]) -> Summary {
    samples.sort_unstable();
    let n = samples.len();
    let total: Duration = samples.iter().sum();
    Summary {
        median: samples[n / 2],
        min: samples[0],
        mean: total / n as u32,
        samples: n,
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { sample_size, samples: Vec::with_capacity(sample_size) };
    f(&mut b);
    if b.samples.is_empty() {
        // The body never called iter/iter_batched; nothing to report.
        println!("{name:<48} (no samples)");
        return;
    }
    let s = summarize(&mut b.samples);
    println!(
        "{name:<48} median {:>12?}  min {:>12?}  mean {:>12?}  ({} samples)",
        s.median, s.min, s.mean, s.samples
    );
}

/// Run a benchmark body once and return its summary instead of printing —
/// the hook used by this workspace's JSON-emitting serving benchmark.
pub fn measure<F: FnMut(&mut Bencher)>(sample_size: usize, mut f: F) -> Summary {
    let mut b = Bencher { sample_size, samples: Vec::with_capacity(sample_size) };
    f(&mut b);
    assert!(!b.samples.is_empty(), "measure: body must call iter or iter_batched");
    summarize(&mut b.samples)
}

/// Collect benchmark functions into one runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_the_requested_samples() {
        let s = measure(7, |b| b.iter(|| black_box(3u64.pow(7))));
        assert_eq!(s.samples, 7);
        assert!(s.min <= s.median && s.median <= s.mean * 2);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut setups = 0u32;
        let s = measure(5, |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 64]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(s.samples, 5);
        assert_eq!(setups, 6); // warm-up + 5 timed
    }

    #[test]
    fn groups_and_macros_compile_and_run() {
        fn tiny(c: &mut Criterion) {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        criterion_group!(benches, tiny);
        benches();
    }
}
