//! JSON serialization for the `hdp-osr` workspace.
//!
//! Self-contained stand-in for the subset of the `serde_json 1.x` API the
//! workspace uses ([`to_string`], [`to_string_pretty`], [`from_str`]). The
//! build environment has no access to crates.io, so the real `serde_json`
//! cannot be fetched; this shim renders the vendored serde's [`Value`] tree
//! to JSON text and parses it back with a recursive-descent parser, so
//! round-trips through report files are faithful.
//!
//! Conventions shared with the real crate: non-finite floats serialize as
//! `null`; numbers parse through `str::parse::<f64>` (exact for every float
//! Rust's `Display` can print); strings support the full `\uXXXX` escape set
//! including surrogate pairs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// JSON failure (parse position + message, or a serialization problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
///
/// # Errors
/// Never fails for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
///
/// # Errors
/// Never fails for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a value out of JSON text.
///
/// # Errors
/// Fails on malformed JSON, trailing garbage, or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => emit_number(*n, out),
        Value::Str(s) => emit_string(s, out),
        Value::Arr(items) => emit_seq(items.iter(), b"[]", indent, depth, out, |x, d, o| {
            emit(x, indent, d, o);
        }),
        Value::Obj(entries) => emit_seq(entries.iter(), b"{}", indent, depth, out, |(k, x), d, o| {
            emit_string(k, o);
            o.push(':');
            if indent.is_some() {
                o.push(' ');
            }
            emit(x, indent, d, o);
        }),
    }
}

fn emit_seq<I: ExactSizeIterator>(
    items: I,
    brackets: &[u8; 2],
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut each: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(brackets[0] as char);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        each(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(brackets[1] as char);
}

fn emit_number(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip Display is valid JSON for finite floats.
        let _ = write!(out, "{n}");
    }
}

fn emit_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number characters");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert!(!from_str::<bool>(" false ").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 6.02e23, -0.000_123_456_789] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let x: Vec<(String, Vec<f64>)> =
            vec![("a".into(), vec![1.0, 2.5]), ("b".into(), vec![])];
        let json = to_string_pretty(&x).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1.0f64, 2.0];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1.5 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
