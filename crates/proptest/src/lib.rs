//! Property-based testing for the `hdp-osr` workspace.
//!
//! Self-contained stand-in for the subset of the `proptest 1.x` API the
//! workspace's test suites use. The build environment has no access to
//! crates.io, so the real `proptest` cannot be fetched; this shim keeps the
//! same surface — [`Strategy`], `prop::collection::vec`, [`Just`],
//! `prop_map`, `prop_oneof!`, `prop_compose!`, the `proptest!` test macro and
//! the `prop_assert*` family — backed by a deterministic random-case runner.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) and the case seed, but is not minimized.
//! - **Fixed derivation of case seeds** from the test's module path and case
//!   index, so failures reproduce exactly without a persistence file
//!   (`.proptest-regressions` files are ignored).
//! - `ProptestConfig` carries only the knobs this workspace sets (`cases`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use rand;

/// Strategies: how to draw random values of a type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for sampling values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy over a closure — the engine behind `prop_compose!`.
    pub struct SampleFn<F>(F);

    impl<T, F: Fn(&mut StdRng) -> T> Strategy for SampleFn<F> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Wrap a sampling closure as a [`Strategy`].
    pub fn sample_fn<T, F: Fn(&mut StdRng) -> T>(f: F) -> SampleFn<F> {
        SampleFn(f)
    }

    /// Object-safe sampling, so strategies of different concrete types can
    /// share one [`Union`] (`prop_oneof!`).
    pub trait SampleDyn<V> {
        /// Draw one value.
        fn sample_dyn(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> SampleDyn<S::Value> for S {
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Box one `prop_oneof!` arm.
    pub fn union_arm<S: Strategy + 'static>(s: S) -> Box<dyn SampleDyn<S::Value>> {
        Box::new(s)
    }

    /// Uniform choice among heterogeneous strategies with a common value
    /// type — the engine behind `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn SampleDyn<V>>>,
    }

    impl<V> Union<V> {
        /// Build from boxed arms.
        ///
        /// # Panics
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<Box<dyn SampleDyn<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut StdRng) -> V {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].sample_dyn(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    /// Outcome of one property case (other than plain success).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assume!` filter rejected the inputs; draw a fresh case.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Runner configuration; only the knobs this workspace sets.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) makes some of the heavier suites in this
            // workspace needlessly slow; 32 keeps tier-1 runs snappy while
            // still exercising varied inputs. Tests that need more set it
            // explicitly via `proptest_config`.
            Self { cases: 32 }
        }
    }

    /// Deterministic per-case seed: failures reproduce without a persistence
    /// file because the stream depends only on the test's identity and the
    /// attempt index.
    pub fn case_seed(test_ident: &str, attempt: u64) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // DefaultHasher::new() is specified to be stable across calls within
        // a process and across processes (SipHash-1-3 with fixed keys).
        test_ident.hash(&mut h);
        attempt.hash(&mut h);
        h.finish()
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose,
                    prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests. Each `#[test] fn name(bindings in strategies)`
/// item becomes a normal test that samples its inputs
/// [`ProptestConfig::cases`](test_runner::ProptestConfig) times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion of [`proptest!`] over its test items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            while accepted < config.cases {
                attempt += 1;
                assert!(
                    attempt <= u64::from(config.cases) * 64 + 256,
                    "proptest {}: too many cases rejected by prop_assume!",
                    stringify!($name),
                );
                let seed = $crate::test_runner::case_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let mut __proptest_rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            seed,
                        );
                    $(
                        let $p = $crate::strategy::Strategy::sample(&($s), &mut __proptest_rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed (case seed {seed:#x}): {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Compose strategies: draw named intermediate values, then produce a final
/// value from them. Supports proptest's one- and two-binding-group forms.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($p1:pat in $s1:expr),+ $(,)?)
        ($($p2:pat in $s2:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::sample_fn(move |__proptest_rng: &mut $crate::rand::rngs::StdRng| {
                $(let $p1 = $crate::strategy::Strategy::sample(&($s1), __proptest_rng);)+
                $(let $p2 = $crate::strategy::Strategy::sample(&($s2), __proptest_rng);)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($p:pat in $s:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::sample_fn(move |__proptest_rng: &mut $crate::rand::rngs::StdRng| {
                $(let $p = $crate::strategy::Strategy::sample(&($s), __proptest_rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Reject the current case (draw fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(::std::format!(
                            "assertion failed: `{:?} == {:?}`",
                            __left,
                            __right
                        )),
                    );
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(::std::format!(
                            "assertion failed: `{:?} == {:?}`: {}",
                            __left,
                            __right,
                            ::std::format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Fail the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(::std::format!(
                            "assertion failed: `{:?} != {:?}`",
                            __left,
                            __right
                        )),
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair_with_sum()(n in 2usize..10)(
            n in Just(n),
            parts in prop::collection::vec(1usize..5, n),
        ) -> (usize, Vec<usize>) {
            (n, parts)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..3.0f64, n in 1usize..12) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..12).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size((n, parts) in pair_with_sum()) {
            prop_assert_eq!(parts.len(), n);
            prop_assert!(parts.iter().all(|&p| (1..5).contains(&p)));
        }

        #[test]
        fn prop_map_and_oneof_compose(
            v in prop_oneof![Just(0usize), (1usize..4).prop_map(|x| x * 10)],
        ) {
            prop_assert!(v == 0 || (10..40).contains(&v), "v = {v}");
        }

        #[test]
        fn assume_filters_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn cases_are_deterministic_per_attempt() {
        let a = crate::test_runner::case_seed("mod::test", 3);
        let b = crate::test_runner::case_seed("mod::test", 3);
        let c = crate::test_runner::case_seed("mod::test", 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
