//! Scalar vs. banked predictive kernels — the tentpole micro-measurement.
//!
//! Benchmarks the two fused [`DishBank`] kernels against the legacy per-dish
//! [`NiwPosterior`] arithmetic they replaced, at the reproduction's two
//! feature dimensions (LETTER's 16 and USPS-after-PCA's 39):
//!
//! * **one-vs-all** — score a single observation under every live dish
//!   (the collective-decision scoring loop);
//! * **batch-vs-one** — the chain-rule joint predictive of a block under one
//!   dish (the Eq. 8 table-dish resampling factor).
//!
//! Per-iteration medians and the banked/scalar speedups are written to
//! `BENCH_predictive.json` at the repository root.
//!
//! ```text
//! cargo bench -p osr-bench --bench predictive
//! ```

use criterion::{measure, Summary};
use osr_linalg::Matrix;
use osr_stats::{sampling, DishBank, NiwParams, NiwPosterior};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;

/// Live dishes scored by the one-vs-all kernel (a typical post-burn-in menu).
const DISHES: usize = 12;
/// Observations absorbed per dish before measuring.
const OBS_PER_DISH: usize = 30;
/// Block size for the batch-vs-one kernel (a typical table occupancy).
const BLOCK: usize = 8;
const SAMPLES: usize = 2_000;
const SEED: u64 = 42;

#[derive(Serialize)]
struct KernelStats {
    scalar_median_ns: f64,
    banked_median_ns: f64,
    speedup_median: f64,
    samples: usize,
}

#[derive(Serialize)]
struct DimReport {
    dim: usize,
    dishes: usize,
    obs_per_dish: usize,
    block: usize,
    one_vs_all: KernelStats,
    batch_vs_one: KernelStats,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    dims: Vec<DimReport>,
}

fn ns(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e9
}

fn kernel_stats(scalar: Summary, banked: Summary) -> KernelStats {
    KernelStats {
        scalar_median_ns: ns(scalar.median),
        banked_median_ns: ns(banked.median),
        speedup_median: ns(scalar.median) / ns(banked.median).max(1e-9),
        samples: scalar.samples.min(banked.samples),
    }
}

fn spd(dim: usize) -> Matrix {
    let mut m = Matrix::scaled_identity(dim, 2.0);
    for i in 1..dim {
        m[(i, i - 1)] = 0.3;
        m[(i - 1, i)] = 0.3;
    }
    m
}

fn bench_dim(dim: usize) -> DimReport {
    let params = NiwParams::new(vec![0.0; dim], 1.0, dim as f64 + 3.0, spd(dim)).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);

    // Identical observation streams feed both representations, so the two
    // sides evaluate bit-identical posteriors (asserted below).
    let mut bank = DishBank::new(&params);
    let mut legacy: Vec<NiwPosterior> = Vec::with_capacity(DISHES);
    let mut slots: Vec<osr_stats::Slot> = Vec::with_capacity(DISHES);
    for k in 0..DISHES {
        let slot = bank.alloc();
        let mut post = NiwPosterior::from_prior(&params);
        for _ in 0..OBS_PER_DISH {
            let x: Vec<f64> = (0..dim)
                .map(|_| k as f64 + sampling::standard_normal(&mut rng))
                .collect();
            bank.add_obs(slot, &x);
            post.add(&x);
        }
        slots.push(slot);
        legacy.push(post);
    }
    let probe = vec![0.3; dim];
    let block: Vec<Vec<f64>> = (0..BLOCK)
        .map(|_| (0..dim).map(|_| sampling::standard_normal(&mut rng)).collect())
        .collect();
    let refs: Vec<&[f64]> = block.iter().map(Vec::as_slice).collect();

    // Sanity: the one-vs-all kernel agrees with the scalars bit-for-bit;
    // the block kernel (marginal-likelihood ratio, see DESIGN.md) agrees
    // with the chain rule to rounding.
    let mut scratch = vec![0.0; DISHES * dim];
    let mut scores = Vec::with_capacity(DISHES);
    bank.score_all(&slots, &probe, &mut scratch, &mut scores);
    for (got, post) in scores.iter().zip(&legacy) {
        assert_eq!(got.to_bits(), post.predictive_logpdf(&probe).to_bits());
    }
    let banked_lp = bank.block_predictive(slots[0], &refs);
    let chain_lp = legacy[0].clone().block_predictive_logpdf(&refs);
    assert!(
        (banked_lp - chain_lp).abs() <= 1e-9 * chain_lp.abs().max(1.0),
        "ratio kernel {banked_lp} strayed from chain rule {chain_lp}"
    );

    let scalar_all = measure(SAMPLES, |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for post in &legacy {
                acc += post.predictive_logpdf(black_box(&probe));
            }
            acc
        })
    });
    let banked_all = measure(SAMPLES, |b| {
        b.iter(|| {
            scores.clear();
            bank.score_all(black_box(&slots), black_box(&probe), &mut scratch, &mut scores);
            scores.last().copied()
        })
    });

    let scalar_block = measure(SAMPLES, |b| {
        b.iter(|| legacy[0].clone().block_predictive_logpdf(black_box(&refs)))
    });
    let banked_block = measure(SAMPLES, |b| {
        b.iter(|| bank.block_predictive(black_box(slots[0]), black_box(&refs)))
    });

    DimReport {
        dim,
        dishes: DISHES,
        obs_per_dish: OBS_PER_DISH,
        block: BLOCK,
        one_vs_all: kernel_stats(scalar_all, banked_all),
        batch_vs_one: kernel_stats(scalar_block, banked_block),
    }
}

fn main() {
    let report = Report { seed: SEED, dims: [16, 39].into_iter().map(bench_dim).collect() };
    for d in &report.dims {
        eprintln!(
            "d={:>2}: one-vs-all {:>8.0} ns -> {:>8.0} ns ({:.2}x), \
             batch-vs-one {:>8.0} ns -> {:>8.0} ns ({:.2}x)",
            d.dim,
            d.one_vs_all.scalar_median_ns,
            d.one_vs_all.banked_median_ns,
            d.one_vs_all.speedup_median,
            d.batch_vs_one.scalar_median_ns,
            d.batch_vs_one.banked_median_ns,
            d.batch_vs_one.speedup_median,
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    println!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predictive.json");
    std::fs::write(path, json + "\n").expect("write BENCH_predictive.json");
    eprintln!("-> {path}");
}
