//! Cold vs warm serving on the LETTER replica — the tentpole measurement —
//! plus method-agnostic serving through the production [`BatchServer`].
//!
//! Reproduces the fit-once/serve-many claim: classifying a 100-point batch
//! against 10 known LETTER classes costs a full transductive burn-in under
//! `ServingMode::ColdStart` but only `decision_sweeps` batch-local sweeps
//! under the default `ServingMode::WarmStart`. Wall-clock medians, the
//! machine-independent predictive-logpdf call counts, the production-stack
//! serve timings, and the serve counters (retries, degraded batches) are
//! written to `BENCH_serving.json` at the repository root.
//!
//! Since every method implements `CollectiveModel`, the same batch can be
//! benchmarked through the identical serving stack for any baseline:
//!
//! ```text
//! cargo bench -p osr-bench --bench serving                       # CD-OSR
//! cargo bench -p osr-bench --bench serving -- --method osnn      # a baseline
//! ```
//!
//! `--method {cdosr,wsvm,pisvm,osnn,onevset,wosvm}` selects the model;
//! baseline runs are written to `BENCH_serving_<method>.json` so the
//! committed CD-OSR report is never clobbered by a baseline sweep.

use std::time::Instant;

use criterion::{measure, Summary};
use hdp_osr_core::{BatchServer, CollectiveModel, HdpOsr, HdpOsrConfig, ServingMode};
use osr_baselines::{
    BaselineSpec, OneVsSetParams, OsnnParams, PiSvmParams, ServedBaseline, WOsvmParams,
    WSvmParams,
};
use osr_dataset::protocol::{OpenSetSplit, SplitConfig, TrainSet};
use osr_stats::counters::{
    degraded_batches, predictive_batch_vs_one_calls, predictive_logpdf_calls,
    predictive_one_vs_all_calls, serve_retries,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const BATCH: usize = 100;
const SEED: u64 = 42;
/// Report schema version: 2 = method-agnostic serving (method tag + serve
/// counters + production-stack serve timings).
const SCHEMA: u32 = 2;

#[derive(Serialize)]
struct ModeStats {
    fit_ms: f64,
    classify_median_ms: f64,
    classify_min_ms: f64,
    classify_mean_ms: f64,
    samples: usize,
    predictive_calls_per_batch: u64,
    one_vs_all_kernels_per_batch: u64,
    batch_vs_one_kernels_per_batch: u64,
}

/// One batch served through the production `BatchServer` stack, measured at
/// the method-agnostic `&dyn CollectiveModel` seam.
#[derive(Serialize)]
struct ServeStats {
    serve_median_ms: f64,
    serve_min_ms: f64,
    serve_mean_ms: f64,
    samples: usize,
    serve_retries: u64,
    degraded_batches: u64,
}

#[derive(Serialize)]
struct Report {
    schema: u32,
    method: String,
    dataset: String,
    train_points: usize,
    known_classes: usize,
    batch_size: usize,
    iterations: usize,
    decision_sweeps: usize,
    seed: u64,
    cold: ModeStats,
    warm: ModeStats,
    serve: ServeStats,
    speedup_median: f64,
    predictive_call_ratio: f64,
}

/// Baseline report: no cold/warm split (baselines are sweep-free) and no
/// predictive-kernel counters (those belong to the HDP sampler).
#[derive(Serialize)]
struct BaselineReport {
    schema: u32,
    method: String,
    dataset: String,
    train_points: usize,
    known_classes: usize,
    batch_size: usize,
    seed: u64,
    train_ms: f64,
    serve: ServeStats,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Measure one batch through the production serving stack for any method.
fn run_serve(model: &dyn CollectiveModel, batch: &[Vec<f64>], sample_size: usize) -> ServeStats {
    let batches = vec![batch.to_vec()];
    let retries_before = serve_retries();
    let degraded_before = degraded_batches();
    let summary = measure(sample_size, |b| {
        b.iter(|| {
            BatchServer::with_workers(model, 1)
                .classify_batches(&batches, SEED)
                .pop()
                .expect("one result per batch")
                .expect("healthy serve")
        })
    });
    ServeStats {
        serve_median_ms: ms(summary.median),
        serve_min_ms: ms(summary.min),
        serve_mean_ms: ms(summary.mean),
        samples: summary.samples,
        serve_retries: serve_retries() - retries_before,
        degraded_batches: degraded_batches() - degraded_before,
    }
}

fn run_mode(
    serving: ServingMode,
    train: &TrainSet,
    batch: &[Vec<f64>],
    sample_size: usize,
) -> (ModeStats, Summary) {
    let config = HdpOsrConfig { serving, ..Default::default() };
    let t0 = Instant::now();
    let model = HdpOsr::fit(&config, train).expect("fit LETTER replica");
    let fit_ms = ms(t0.elapsed());

    // Machine-independent units of work: predictive evaluations per batch,
    // plus the fused-kernel invocation counts (one-vs-all scoring passes and
    // batch-vs-one block predictives) that replaced the per-dish loop.
    let before = predictive_logpdf_calls();
    let before_one = predictive_one_vs_all_calls();
    let before_block = predictive_batch_vs_one_calls();
    model
        .classify(batch, &mut StdRng::seed_from_u64(SEED))
        .expect("classify LETTER batch");
    let calls = predictive_logpdf_calls() - before;
    let one_vs_all = predictive_one_vs_all_calls() - before_one;
    let batch_vs_one = predictive_batch_vs_one_calls() - before_block;

    let summary = measure(sample_size, |b| {
        b.iter(|| {
            model
                .classify(batch, &mut StdRng::seed_from_u64(SEED))
                .expect("classify LETTER batch")
        })
    });
    let stats = ModeStats {
        fit_ms,
        classify_median_ms: ms(summary.median),
        classify_min_ms: ms(summary.min),
        classify_mean_ms: ms(summary.mean),
        samples: summary.samples,
        predictive_calls_per_batch: calls,
        one_vs_all_kernels_per_batch: one_vs_all,
        batch_vs_one_kernels_per_batch: batch_vs_one,
    };
    (stats, summary)
}

fn baseline_spec(method: &str) -> Option<BaselineSpec> {
    match method {
        "onevset" => Some(BaselineSpec::OneVsSet(OneVsSetParams::default())),
        "wosvm" => Some(BaselineSpec::WOsvm(WOsvmParams::default())),
        "wsvm" => Some(BaselineSpec::WSvm(WSvmParams::default())),
        "pisvm" => Some(BaselineSpec::PiSvm(PiSvmParams::default())),
        "osnn" => Some(BaselineSpec::Osnn(OsnnParams::default())),
        _ => None,
    }
}

fn parse_method() -> String {
    let args: Vec<String> = std::env::args().collect();
    let mut method = "cdosr".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--method" {
            method = it
                .next()
                .expect("--method requires one of cdosr|wsvm|pisvm|osnn|onevset|wosvm")
                .clone();
        }
    }
    if method != "cdosr" && baseline_spec(&method).is_none() {
        panic!("unknown --method `{method}`; use cdosr|wsvm|pisvm|osnn|onevset|wosvm");
    }
    method
}

fn main() {
    let method = parse_method();
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = letter_scene(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(10, 5), &mut rng)
        .expect("LETTER replica supports a 10+5 split");
    let batch: Vec<Vec<f64>> = split.test.points.iter().take(BATCH).cloned().collect();
    assert_eq!(batch.len(), BATCH, "test split holds at least one full batch");

    if method == "cdosr" {
        bench_cdosr(&data.name, &split, &batch);
    } else {
        bench_baseline(&method, &data.name, &split, &batch);
    }
}

fn letter_scene(rng: &mut StdRng) -> osr_dataset::Dataset {
    osr_dataset::synthetic::letter_config().scaled(0.1).generate(rng)
}

fn bench_cdosr(dataset: &str, split: &OpenSetSplit, batch: &[Vec<f64>]) {
    let config = HdpOsrConfig::default();
    eprintln!(
        "serving bench [cdosr]: {} train points, {} known classes, batch {}, {} sweeps",
        split.train.total_points(),
        split.train.n_classes(),
        BATCH,
        config.iterations
    );

    let (cold, cold_sum) = run_mode(ServingMode::ColdStart, &split.train, batch, 5);
    eprintln!("cold : median {:>10.2?}/batch", cold_sum.median);
    let (warm, warm_sum) = run_mode(ServingMode::WarmStart, &split.train, batch, 30);
    eprintln!("warm : median {:>10.2?}/batch", warm_sum.median);

    // The production stack itself, at the trait seam the server sees.
    let warm_config = HdpOsrConfig { serving: ServingMode::WarmStart, ..Default::default() };
    let model = HdpOsr::fit(&warm_config, &split.train).expect("fit LETTER replica");
    let serve = run_serve(&model, batch, 30);
    eprintln!("serve: median {:>10.2}ms/batch through BatchServer", serve.serve_median_ms);

    let report = Report {
        schema: SCHEMA,
        method: "cdosr".to_string(),
        dataset: dataset.to_string(),
        train_points: split.train.total_points(),
        known_classes: split.train.n_classes(),
        batch_size: BATCH,
        iterations: config.iterations,
        decision_sweeps: config.decision_sweeps,
        seed: SEED,
        speedup_median: cold.classify_median_ms / warm.classify_median_ms,
        predictive_call_ratio: cold.predictive_calls_per_batch as f64
            / warm.predictive_calls_per_batch.max(1) as f64,
        cold,
        warm,
        serve,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    println!("{json}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, json + "\n").expect("write BENCH_serving.json");
    eprintln!(
        "speedup: {:.1}x wall-clock, {:.1}x predictive calls -> {path}",
        report.speedup_median, report.predictive_call_ratio
    );
}

fn bench_baseline(method: &str, dataset: &str, split: &OpenSetSplit, batch: &[Vec<f64>]) {
    let spec = baseline_spec(method).expect("validated by parse_method");
    eprintln!(
        "serving bench [{method}]: {} train points, {} known classes, batch {}",
        split.train.total_points(),
        split.train.n_classes(),
        BATCH
    );

    let t0 = Instant::now();
    let served = ServedBaseline::train(spec, &split.train).expect("train baseline");
    let train_ms = ms(t0.elapsed());
    let serve = run_serve(&served, batch, 30);
    eprintln!("serve: median {:>10.2}ms/batch through BatchServer", serve.serve_median_ms);

    let report = BaselineReport {
        schema: SCHEMA,
        method: method.to_string(),
        dataset: dataset.to_string(),
        train_points: split.train.total_points(),
        known_classes: split.train.n_classes(),
        batch_size: BATCH,
        seed: SEED,
        train_ms,
        serve,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    println!("{json}");

    let path = format!(
        "{}/../../BENCH_serving_{method}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::write(&path, json + "\n").expect("write baseline serving report");
    eprintln!("-> {path}");
}
