//! Cold vs warm serving on the LETTER replica — the tentpole measurement.
//!
//! Reproduces the fit-once/serve-many claim: classifying a 100-point batch
//! against 10 known LETTER classes costs a full transductive burn-in under
//! `ServingMode::ColdStart` but only `decision_sweeps` batch-local sweeps
//! under the default `ServingMode::WarmStart`. Wall-clock medians, the
//! machine-independent predictive-logpdf call counts, and the resulting
//! speedup are written to `BENCH_serving.json` at the repository root.
//!
//! ```text
//! cargo bench -p osr-bench --bench serving
//! ```

use std::time::Instant;

use criterion::{measure, Summary};
use hdp_osr_core::{HdpOsr, HdpOsrConfig, ServingMode};
use osr_dataset::protocol::{OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::letter_config;
use osr_stats::counters::{
    predictive_batch_vs_one_calls, predictive_logpdf_calls, predictive_one_vs_all_calls,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const BATCH: usize = 100;
const SEED: u64 = 42;

#[derive(Serialize)]
struct ModeStats {
    fit_ms: f64,
    classify_median_ms: f64,
    classify_min_ms: f64,
    classify_mean_ms: f64,
    samples: usize,
    predictive_calls_per_batch: u64,
    one_vs_all_kernels_per_batch: u64,
    batch_vs_one_kernels_per_batch: u64,
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    train_points: usize,
    known_classes: usize,
    batch_size: usize,
    iterations: usize,
    decision_sweeps: usize,
    seed: u64,
    cold: ModeStats,
    warm: ModeStats,
    speedup_median: f64,
    predictive_call_ratio: f64,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_mode(
    serving: ServingMode,
    train: &osr_dataset::protocol::TrainSet,
    batch: &[Vec<f64>],
    sample_size: usize,
) -> (ModeStats, Summary) {
    let config = HdpOsrConfig { serving, ..Default::default() };
    let t0 = Instant::now();
    let model = HdpOsr::fit(&config, train).expect("fit LETTER replica");
    let fit_ms = ms(t0.elapsed());

    // Machine-independent units of work: predictive evaluations per batch,
    // plus the fused-kernel invocation counts (one-vs-all scoring passes and
    // batch-vs-one block predictives) that replaced the per-dish loop.
    let before = predictive_logpdf_calls();
    let before_one = predictive_one_vs_all_calls();
    let before_block = predictive_batch_vs_one_calls();
    model
        .classify(batch, &mut StdRng::seed_from_u64(SEED))
        .expect("classify LETTER batch");
    let calls = predictive_logpdf_calls() - before;
    let one_vs_all = predictive_one_vs_all_calls() - before_one;
    let batch_vs_one = predictive_batch_vs_one_calls() - before_block;

    let summary = measure(sample_size, |b| {
        b.iter(|| {
            model
                .classify(batch, &mut StdRng::seed_from_u64(SEED))
                .expect("classify LETTER batch")
        })
    });
    let stats = ModeStats {
        fit_ms,
        classify_median_ms: ms(summary.median),
        classify_min_ms: ms(summary.min),
        classify_mean_ms: ms(summary.mean),
        samples: summary.samples,
        predictive_calls_per_batch: calls,
        one_vs_all_kernels_per_batch: one_vs_all,
        batch_vs_one_kernels_per_batch: batch_vs_one,
    };
    (stats, summary)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = letter_config().scaled(0.1).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(10, 5), &mut rng)
        .expect("LETTER replica supports a 10+5 split");
    let batch: Vec<Vec<f64>> = split.test.points.iter().take(BATCH).cloned().collect();
    assert_eq!(batch.len(), BATCH, "test split holds at least one full batch");
    let config = HdpOsrConfig::default();

    eprintln!(
        "serving bench: {} train points, {} known classes, batch {}, {} sweeps",
        split.train.total_points(),
        split.train.n_classes(),
        BATCH,
        config.iterations
    );

    let (cold, cold_sum) = run_mode(ServingMode::ColdStart, &split.train, &batch, 5);
    eprintln!("cold : median {:>10.2?}/batch", cold_sum.median);
    let (warm, warm_sum) = run_mode(ServingMode::WarmStart, &split.train, &batch, 30);
    eprintln!("warm : median {:>10.2?}/batch", warm_sum.median);

    let report = Report {
        dataset: data.name.clone(),
        train_points: split.train.total_points(),
        known_classes: split.train.n_classes(),
        batch_size: BATCH,
        iterations: config.iterations,
        decision_sweeps: config.decision_sweeps,
        seed: SEED,
        speedup_median: cold.classify_median_ms / warm.classify_median_ms,
        predictive_call_ratio: cold.predictive_calls_per_batch as f64
            / warm.predictive_calls_per_batch.max(1) as f64,
        cold,
        warm,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    println!("{json}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, json + "\n").expect("write BENCH_serving.json");
    eprintln!(
        "speedup: {:.1}x wall-clock, {:.1}x predictive calls -> {path}",
        report.speedup_median, report.predictive_call_ratio
    );
}
