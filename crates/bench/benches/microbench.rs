//! Criterion microbenchmarks for the computational kernels behind the
//! paper's experiments: the NIW predictive (the sampler's inner loop), a
//! full Gibbs sweep, SMO training, EVT calibration, and each method's
//! end-to-end train+predict cost on a small open-set problem.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hdp_osr_core::{HdpOsr, HdpOsrConfig};
use osr_baselines::{OpenSetClassifier, Osnn, OsnnParams, PiSvm, PiSvmParams, WSvm, WSvmParams};
use osr_dataset::protocol::{OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::pendigits_config;
use osr_hdp::{Hdp, HdpConfig};
use osr_linalg::{Cholesky, Matrix};
use osr_stats::weibull::Weibull;
use osr_stats::{sampling, NiwParams, NiwPosterior};
use osr_svm::{BinarySvm, Kernel, SvmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spd(dim: usize) -> Matrix {
    let mut m = Matrix::scaled_identity(dim, 2.0);
    for i in 1..dim {
        m[(i, i - 1)] = 0.3;
        m[(i - 1, i)] = 0.3;
    }
    m
}

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    for dim in [16usize, 39] {
        let a = spd(dim);
        g.bench_function(format!("cholesky_factor_d{dim}"), |b| {
            b.iter(|| Cholesky::factor(black_box(&a)).unwrap())
        });
        let ch = Cholesky::factor(&a).unwrap();
        let x = vec![0.7; dim];
        g.bench_function(format!("rank1_update_d{dim}"), |b| {
            b.iter_batched(
                || ch.clone(),
                |mut ch| {
                    ch.update(black_box(&x));
                    ch
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_niw_predictive(c: &mut Criterion) {
    let mut g = c.benchmark_group("niw");
    for dim in [16usize, 39] {
        let params =
            NiwParams::new(vec![0.0; dim], 1.0, dim as f64 + 3.0, spd(dim)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut post = NiwPosterior::from_prior(&params);
        for _ in 0..40 {
            let x: Vec<f64> =
                (0..dim).map(|_| sampling::standard_normal(&mut rng)).collect();
            post.add(&x);
        }
        let probe = vec![0.3; dim];
        // The single hottest call of the whole reproduction.
        g.bench_function(format!("predictive_logpdf_d{dim}"), |b| {
            b.iter(|| post.predictive_logpdf(black_box(&probe)))
        });
        g.bench_function(format!("add_remove_d{dim}"), |b| {
            b.iter(|| {
                post.add(black_box(&probe));
                post.remove(black_box(&probe));
            })
        });
    }
    g.finish();
}

fn bench_hdp_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("hdp");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let dim = 16;
    let groups: Vec<Vec<Vec<f64>>> = (0..3)
        .map(|gidx| {
            (0..60)
                .map(|_| {
                    (0..dim)
                        .map(|_| gidx as f64 * 4.0 + sampling::standard_normal(&mut rng))
                        .collect()
                })
                .collect()
        })
        .collect();
    let params = NiwParams::new(vec![0.0; dim], 1.0, dim as f64, spd(dim)).unwrap();
    g.bench_function("gibbs_sweep_180pts_d16", |b| {
        b.iter_batched(
            || {
                let mut hdp =
                    Hdp::new(params.clone(), HdpConfig::default(), groups.clone()).unwrap();
                let mut r = StdRng::seed_from_u64(3);
                hdp.sweep(&mut r); // initialize
                (hdp, r)
            },
            |(mut hdp, mut r)| {
                hdp.sweep(&mut r);
                hdp
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_svm(c: &mut Criterion) {
    let mut g = c.benchmark_group("svm");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    let n = 200;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let cx = if i % 2 == 0 { 2.0 } else { -2.0 };
            (0..16).map(|_| cx + sampling::standard_normal(&mut rng)).collect()
        })
        .collect();
    let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let params = SvmParams::new(1.0, Kernel::Rbf { gamma: 0.05 });
    g.bench_function("smo_train_200pts_d16", |b| {
        b.iter(|| BinarySvm::train(black_box(&refs), black_box(&labels), &params).unwrap())
    });
    let svm = BinarySvm::train(&refs, &labels, &params).unwrap();
    let probe = vec![0.5; 16];
    g.bench_function("decision_value", |b| b.iter(|| svm.decision_value(black_box(&probe))));
    g.finish();
}

fn bench_evt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let truth = Weibull::new(2.0, 1.5).unwrap();
    let data: Vec<f64> = (0..500)
        .map(|_| truth.quantile(rand::Rng::gen_range(&mut rng, 1e-9..1.0)))
        .collect();
    c.bench_function("weibull_mle_fit_500", |b| {
        b.iter(|| Weibull::fit_mle(black_box(&data)).unwrap())
    });
}

/// End-to-end method costs on one small open-set problem — the per-trial
/// unit of every figure reproduction.
fn bench_methods_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("methods");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    let data = pendigits_config().scaled(0.05).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(4, 2), &mut rng).unwrap();

    g.bench_function("hdp_osr_train_predict", |b| {
        b.iter(|| {
            let cfg = HdpOsrConfig { iterations: 10, ..Default::default() };
            let model = HdpOsr::fit(&cfg, &split.train).unwrap();
            let mut r = StdRng::seed_from_u64(7);
            model.classify(black_box(&split.test.points), &mut r).unwrap()
        })
    });
    g.bench_function("wsvm_train_predict", |b| {
        b.iter(|| {
            let m = WSvm::train(&split.train, &WSvmParams::default()).unwrap();
            m.predict_batch(black_box(&split.test.points))
        })
    });
    g.bench_function("pisvm_train_predict", |b| {
        b.iter(|| {
            let m = PiSvm::train(&split.train, &PiSvmParams::default()).unwrap();
            m.predict_batch(black_box(&split.test.points))
        })
    });
    g.bench_function("osnn_train_predict", |b| {
        b.iter(|| {
            let (pts, labels) = split.train.flattened();
            let m = Osnn::train(&pts, &labels, 4, &OsnnParams::default()).unwrap();
            m.predict_batch(black_box(&split.test.points))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_linalg,
    bench_niw_predictive,
    bench_hdp_sweep,
    bench_svm,
    bench_evt,
    bench_methods_end_to_end
);
criterion_main!(benches);
