//! Snapshot persistence cost — encode/save/decode/load vs. posterior size.
//!
//! Fits warm models with a growing class menu (each class adds dishes and
//! sufficient statistics to the checkpoint), then measures the four legs of
//! the durability path:
//!
//! * **encode** — [`encode_model`]: canonical bytes in memory (pure CPU);
//! * **save** — [`SnapshotStore::save`]: temp write + fsync + atomic rename
//!   (dominated by the disk barrier, so it gets fewer samples);
//! * **decode** — [`decode_model`]: parse + checksum + posterior rebuild;
//! * **load** — [`SnapshotStore::load`]: read-back + decode.
//!
//! Medians plus bytes-on-disk per scene are written to
//! `BENCH_snapshot.json` at the repository root.
//!
//! ```text
//! cargo bench -p osr-bench --bench snapshot
//! ```

use criterion::measure;
use hdp_osr_core::snapshot::{decode_model, encode_model};
use hdp_osr_core::{HdpOsr, HdpOsrConfig, ServingMode, SnapshotStore};
use osr_dataset::protocol::TrainSet;
use osr_stats::sampling;
use osr_stats::snapshot::SNAPSHOT_FORMAT_VERSION;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;

/// Pure in-memory legs (encode / decode) — cheap, so sample generously.
const CPU_SAMPLES: usize = 200;
/// Durable legs (save / load) pay an fsync each iteration; keep it short.
const DISK_SAMPLES: usize = 30;
const SEED: u64 = 2026;

#[derive(Serialize)]
struct SceneReport {
    classes: usize,
    dim: usize,
    n_dishes: usize,
    bytes_on_disk: usize,
    encode_median_us: f64,
    save_median_us: f64,
    decode_median_us: f64,
    load_median_us: f64,
    cpu_samples: usize,
    disk_samples: usize,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    /// Container format the measured save/load path speaks; a report from
    /// an older format is not comparable byte-for-byte.
    snapshot_format_version: u32,
    seed: u64,
    scenes: Vec<SceneReport>,
}

fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// `n` well-separated classes of 2-D blobs on a circle of radius 8.
fn scene(rng: &mut StdRng, classes: usize) -> TrainSet {
    let blobs = (0..classes)
        .map(|c| {
            let theta = std::f64::consts::TAU * c as f64 / classes as f64;
            let (cx, cy) = (8.0 * theta.cos(), 8.0 * theta.sin());
            (0..40)
                .map(|_| {
                    vec![
                        cx + 0.5 * sampling::standard_normal(rng),
                        cy + 0.5 * sampling::standard_normal(rng),
                    ]
                })
                .collect()
        })
        .collect();
    TrainSet { class_ids: (1..=classes).collect(), classes: blobs }
}

fn bench_scene(classes: usize) -> SceneReport {
    let mut rng = StdRng::seed_from_u64(SEED ^ classes as u64);
    let train = scene(&mut rng, classes);
    let config = HdpOsrConfig {
        iterations: 12,
        decision_sweeps: 3,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &train).expect("warm fit for bench scene");
    let n_dishes = model.snapshot().expect("warm model has a snapshot").n_dishes();

    let path = std::env::temp_dir().join(format!("osr_bench_snap_{}_{classes}.bin", std::process::id()));
    let store = SnapshotStore::new(&path);
    let info = store.save(&model).expect("initial save");
    let bytes = store.load_bytes().expect("read-back bytes");
    assert_eq!(bytes.len(), info.bytes);
    // One full round trip up front so the timed loops exercise warm paths.
    let reloaded = store.load().expect("initial load");
    assert_eq!(encode_model(&reloaded).expect("re-encode"), bytes);

    let encode = measure(CPU_SAMPLES, |b| b.iter(|| encode_model(black_box(&model)).unwrap()));
    let decode = measure(CPU_SAMPLES, |b| b.iter(|| decode_model(black_box(&bytes)).unwrap()));
    let save = measure(DISK_SAMPLES, |b| b.iter(|| store.save(black_box(&model)).unwrap()));
    let load = measure(DISK_SAMPLES, |b| b.iter(|| store.load().unwrap()));
    let _ = std::fs::remove_file(&path);

    SceneReport {
        classes,
        dim: model.dim(),
        n_dishes,
        bytes_on_disk: info.bytes,
        encode_median_us: us(encode.median),
        save_median_us: us(save.median),
        decode_median_us: us(decode.median),
        load_median_us: us(load.median),
        cpu_samples: encode.samples.min(decode.samples),
        disk_samples: save.samples.min(load.samples),
    }
}

fn main() {
    let report = Report {
        schema: "snapshot-bench-v1",
        snapshot_format_version: SNAPSHOT_FORMAT_VERSION,
        seed: SEED,
        scenes: [2, 4, 8].into_iter().map(bench_scene).collect(),
    };
    for s in &report.scenes {
        eprintln!(
            "classes={:>2} dishes={:>3} {:>7} B: encode {:>8.1} us, save {:>8.1} us, \
             decode {:>8.1} us, load {:>8.1} us",
            s.classes,
            s.n_dishes,
            s.bytes_on_disk,
            s.encode_median_us,
            s.save_median_us,
            s.decode_median_us,
            s.load_median_us,
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    println!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(path, json + "\n").expect("write BENCH_snapshot.json");
    eprintln!("-> {path}");
}
