//! Open-loop Poisson load through the multi-tenant coalescing front-end.
//!
//! Singleton requests for two tenants arrive on an open-loop Poisson clock
//! (precomputed exponential inter-arrival gaps, so a slow server cannot
//! throttle the offered load). Each request is enqueued into the
//! [`Frontend`], coalesced into collective-decision micro-batches under the
//! size/deadline policy, and dispatched onto warm CD-OSR models from the
//! [`ModelRegistry`]. End-to-end latency is measured per request from its
//! arrival instant to the completion of the dispatch round that answered
//! it; the sustained rate, p50/p99 latency, and the front-end's own flush
//! counters land in `BENCH_frontend.json` at the repository root.
//!
//! ```text
//! cargo bench -p osr-bench --bench frontend
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use hdp_osr_core::{
    Frontend, FrontendConfig, HdpOsr, HdpOsrConfig, ModelRegistry, ServePolicy, ServingMode,
};
use osr_dataset::protocol::TrainSet;
use osr_stats::counters::{
    frontend_enqueued, frontend_flushes_deadline, frontend_flushes_size, frontend_shed,
};
use osr_stats::sampling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const SCHEMA: u32 = 1;
const SEED: u64 = 2_026;
const TENANTS: [&str; 2] = ["acme", "beta"];
const REQUESTS: usize = 1_500;
/// Offered load, requests per second across all tenants — high enough that
/// size flushes and deadline flushes both occur at the chosen SLO.
const OFFERED_RPS: f64 = 1_500.0;
const WORKERS: usize = 2;
const MAX_BATCH: usize = 4;
/// Coalescing SLO: a queued request waits at most this long for siblings.
const MAX_DELAY_NS: u64 = 5_000_000;

#[derive(Serialize)]
struct Report {
    schema: u32,
    seed: u64,
    tenants: usize,
    workers: usize,
    max_batch: usize,
    max_delay_ms: f64,
    requests: usize,
    enqueued: u64,
    answered: usize,
    shed: u64,
    offered_rps: f64,
    sustained_rps: f64,
    duration_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    flushes_size: u64,
    flushes_deadline: u64,
    mean_batch_fill: f64,
}

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

fn tenant_model(seed: u64) -> HdpOsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 30), blob(&mut rng, 6.0, 0.0, 30)],
    };
    let config = HdpOsrConfig {
        iterations: 10,
        decision_sweeps: 2,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    HdpOsr::fit(&config, &train).expect("clean fit")
}

/// One scripted arrival of the open-loop load: when, who, what.
struct Arrival {
    at_ns: u64,
    tenant: &'static str,
    point: Vec<f64>,
}

/// Precompute the whole Poisson arrival script so the load is truly
/// open-loop: arrival times never depend on how fast the server answers.
fn arrival_script(rng: &mut StdRng) -> Vec<Arrival> {
    let mut at_ns = 0u64;
    (0..REQUESTS)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap_s = -u.ln() / OFFERED_RPS;
            at_ns += (gap_s * 1e9) as u64;
            let tenant = TENANTS[rng.gen_range(0..TENANTS.len())];
            let (cx, cy) = if rng.gen_range(0.0..1.0) < 0.8 {
                (if rng.gen_range(0.0..1.0) < 0.5 { -6.0 } else { 6.0 }, 0.0)
            } else {
                (0.0, 9.0) // an unknown-category point: the open-set case
            };
            Arrival { at_ns, tenant, point: vec![cx + 0.3 * sampling::standard_normal(rng), cy] }
        })
        .collect()
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e6
}

fn main() {
    let registry = ModelRegistry::new(TENANTS.len());
    registry.insert("acme", Arc::new(tenant_model(11)));
    registry.insert("beta", Arc::new(tenant_model(23)));
    let mut frontend = Frontend::new(FrontendConfig {
        dim: 2,
        max_batch: MAX_BATCH,
        max_delay_ns: MAX_DELAY_NS,
        max_queue_depth: 4 * MAX_BATCH,
        base_seed: SEED,
    })
    .expect("valid config");
    let policy = ServePolicy::default();

    let mut rng = StdRng::seed_from_u64(SEED);
    let script = arrival_script(&mut rng);
    eprintln!(
        "frontend bench: {} requests over {} tenants at {OFFERED_RPS} req/s, \
         max_batch {MAX_BATCH}, SLO {} ms, {WORKERS} workers",
        script.len(),
        TENANTS.len(),
        MAX_DELAY_NS as f64 / 1e6
    );

    let enqueued_before = frontend_enqueued();
    let shed_before = frontend_shed();
    let size_before = frontend_flushes_size();
    let deadline_before = frontend_flushes_deadline();

    let start = Instant::now();
    let mut submit_ns: HashMap<u64, u64> = HashMap::with_capacity(script.len());
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(script.len());
    let mut batch_fills: Vec<usize> = Vec::new();
    let mut next = 0usize;
    loop {
        let now = start.elapsed().as_nanos() as u64;
        // Admit every arrival whose clock has come (open loop: no waiting
        // on the server), oldest first.
        while next < script.len() && script[next].at_ns <= now {
            let arrival = &script[next];
            // An Err here is a shed under overload; the counter records it.
            if let Ok(id) = frontend.enqueue(arrival.tenant, arrival.point.clone(), arrival.at_ns)
            {
                submit_ns.insert(id, arrival.at_ns);
            }
            next += 1;
        }
        let drained = next >= script.len();
        if drained {
            frontend.flush_all(now);
        } else {
            frontend.poll(now);
        }
        if frontend.ready_batches() > 0 {
            let outcomes = frontend.dispatch(&registry, WORKERS, &policy, None);
            let done = start.elapsed().as_nanos() as u64;
            for flush in &outcomes {
                batch_fills.push(flush.responses.len());
                for response in &flush.responses {
                    let submitted =
                        submit_ns.get(&response.request_id).copied().unwrap_or(done);
                    latencies_ns.push(done.saturating_sub(submitted));
                }
            }
        }
        if drained && frontend.queue_depth() == 0 {
            break;
        }
        std::hint::spin_loop();
    }
    let duration_s = start.elapsed().as_secs_f64();

    latencies_ns.sort_unstable();
    let answered = latencies_ns.len();
    let report = Report {
        schema: SCHEMA,
        seed: SEED,
        tenants: TENANTS.len(),
        workers: WORKERS,
        max_batch: MAX_BATCH,
        max_delay_ms: MAX_DELAY_NS as f64 / 1e6,
        requests: script.len(),
        enqueued: frontend_enqueued() - enqueued_before,
        answered,
        shed: frontend_shed() - shed_before,
        offered_rps: OFFERED_RPS,
        sustained_rps: answered as f64 / duration_s,
        duration_s,
        p50_ms: percentile_ms(&latencies_ns, 0.50),
        p99_ms: percentile_ms(&latencies_ns, 0.99),
        max_ms: percentile_ms(&latencies_ns, 1.0),
        flushes_size: frontend_flushes_size() - size_before,
        flushes_deadline: frontend_flushes_deadline() - deadline_before,
        mean_batch_fill: batch_fills.iter().sum::<usize>() as f64
            / batch_fills.len().max(1) as f64,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    println!("{json}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontend.json");
    std::fs::write(path, json + "\n").expect("write BENCH_frontend.json");
    eprintln!(
        "sustained {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms ({} size / {} deadline flushes) -> {path}",
        report.sustained_rps, report.p50_ms, report.p99_ms, report.flushes_size,
        report.flushes_deadline
    );
}
