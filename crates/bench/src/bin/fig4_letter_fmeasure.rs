//! Figure 4: F-measure vs openness on the LETTER replica, all six methods.
//!
//! Paper shape: HDP-OSR comparable to W-SVM / P_I-SVM below ~12 % openness,
//! significantly above every method past ~12 %, with a notably flat curve.

use osr_bench::harness::{run_figure, Metric, Options};
use osr_dataset::synthetic::letter_config;

fn main() {
    let opts = Options::from_args();
    let data = opts.dataset(letter_config());
    run_figure(
        "fig4",
        "HDP-OSR ≈ W-SVM/PI-SVM at low openness, clearly highest and most \
         stable beyond ~12 % openness; OSNN relatively poor on LETTER",
        &data,
        10,
        &[0, 2, 4, 8, 12, 16],
        Metric::FMeasure,
        &opts,
    );
}
