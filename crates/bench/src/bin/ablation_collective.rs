//! Ablation: the *collective* decision (paper contribution 3).
//!
//! HDP-OSR co-clusters the **whole test batch** as one group, so test
//! samples support each other: thirty samples of an unknown category form a
//! heavy new subclass together, where each one alone would be a feeble
//! outlier. This ablation quantifies that: the same model classifies the
//! same test points (a) collectively in one batch, and (b) independently in
//! batches of one — the transductive signal removed.
//!
//! ```text
//! cargo run --release -p osr-bench --bin ablation_collective [--seed N] [--scale F]
//! ```

use hdp_osr_core::{HdpOsr, HdpOsrConfig};
use osr_bench::harness::Options;
use osr_dataset::protocol::{OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::pendigits_config;
use osr_eval::metrics::OpenSetConfusion;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_args();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let data = pendigits_config().scaled(opts.scale.min(0.3)).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 4), &mut rng)
        .expect("dataset supports a 5+4 split");

    let config = HdpOsrConfig { iterations: opts.iterations.min(25), ..Default::default() };
    let model = HdpOsr::fit(&config, &split.train).expect("fit");

    // (a) Collective: the whole batch as one HDP group.
    let collective = model.classify(&split.test.points, &mut rng).expect("collective pass");
    let c = OpenSetConfusion::from_slices(&collective, &split.test.truth);

    // (b) Independent: each point alone (subsampled — every point costs a
    // full sampler run).
    let step = (split.test.len() / 120).max(1);
    let mut solo_preds = Vec::new();
    let mut solo_truth = Vec::new();
    for i in (0..split.test.len()).step_by(step) {
        let lone = vec![split.test.points[i].clone()];
        let pred = model.classify(&lone, &mut rng).expect("solo pass");
        solo_preds.push(pred[0]);
        solo_truth.push(split.test.truth[i]);
    }
    let s = OpenSetConfusion::from_slices(&solo_preds, &solo_truth);

    println!("# ablation: collective vs independent decision (PENDIGITS, 5 known + 4 unknown)");
    println!("mode\tn\tf_measure\taccuracy\tunknowns_rejected");
    println!(
        "collective\t{}\t{:.4}\t{:.4}\t{}/{}",
        c.total,
        c.f_measure(),
        c.accuracy(),
        c.tn_rejected,
        split.test.n_unknown()
    );
    let solo_unknowns = solo_truth
        .iter()
        .filter(|t| **t == osr_dataset::protocol::GroundTruth::Unknown)
        .count();
    println!(
        "independent\t{}\t{:.4}\t{:.4}\t{}/{}",
        s.total,
        s.f_measure(),
        s.accuracy(),
        s.tn_rejected,
        solo_unknowns
    );
    println!("# paper claim: treating the testing set as a whole exploits correlations");
    println!("# among test samples; expect the collective pass to reject unknowns better.");
}
