//! Minimal reproduction: one known 16-d cluster; test batch = half same
//! cluster, half a sibling cluster at a controlled Mahalanobis offset.
//! Watches dish structure over sweeps to diagnose absorption.

use osr_hdp::{Hdp, HdpConfig};
use osr_linalg::Matrix;
use osr_stats::{sampling, NiwParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cluster<R: rand::Rng>(rng: &mut R, center: &[f64], n: usize, std: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| center.iter().map(|&c| c + std * sampling::standard_normal(rng)).collect())
        .collect()
}

fn main() {
    let d = 16;
    let offset_sigma: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4.0);
    let mut rng = StdRng::seed_from_u64(1);

    // Known cluster at a "class center" away from the global mean, like the
    // real replica geometry (grand mean is the average of several classes).
    let known_center: Vec<f64> = (0..d).map(|i| if i % 2 == 0 { 3.0 } else { -3.0 }).collect();
    // Sibling center displaced by offset_sigma * sqrt(2) * width along a
    // random direction.
    let mut dir: Vec<f64> = (0..d).map(|_| sampling::standard_normal(&mut rng)).collect();
    let norm = osr_linalg::vector::norm(&dir);
    let shift = offset_sigma * (2.0f64).sqrt();
    for v in &mut dir {
        *v *= shift / norm;
    }
    let sibling_center: Vec<f64> = known_center.iter().zip(&dir).map(|(a, b)| a + b).collect();

    let train = cluster(&mut rng, &known_center, 120, 1.0);
    let mut test = cluster(&mut rng, &known_center, 60, 1.0);
    test.extend(cluster(&mut rng, &sibling_center, 60, 1.0));

    // Base measure like HdpOsr::fit would derive: mu0 = train mean, psi0 =
    // rho * within covariance.
    let refs: Vec<&[f64]> = train.iter().map(Vec::as_slice).collect();
    let mu0 = osr_linalg::vector::mean(&refs).unwrap();
    let mut psi0 = Matrix::covariance(&refs, d);
    psi0.scale_in_place(0.5);
    let params = NiwParams::new(mu0, 1.0, d as f64 + 3.0, psi0).unwrap();

    let config = HdpConfig::default();
    let mut hdp = Hdp::new(params, config, vec![train, test.clone()]).unwrap();
    for sweep in 0..15 {
        hdp.sweep(&mut rng);
        if sweep % 3 == 2 {
            let g0 = hdp.group_summary(0);
            let g1 = hdp.group_summary(1);
            // How many sibling points (indices 60..120 of group 1) share a
            // dish with group 0?
            let known_dishes: std::collections::HashSet<_> =
                g0.dish_counts.iter().map(|&(id, _)| id).collect();
            let absorbed = (60..120).filter(|&i| known_dishes.contains(&hdp.dish_of(1, i))).count();
            println!(
                "sweep {:2}: dishes {} tables {} | train dishes {:?} | test dishes {:?} | absorbed sibling pts {}",
                sweep + 1,
                hdp.n_dishes(),
                hdp.total_tables(),
                g0.dish_counts,
                g1.dish_counts,
                absorbed
            );
        }
    }
}
