//! Figure 9: open-set recognition accuracy vs openness on PENDIGITS.
//!
//! Paper shape: HDP-OSR much higher accuracy than the five baselines as
//! openness increases, with an especially stable trend on this dataset.

use osr_bench::harness::{run_figure, Metric, Options};
use osr_dataset::synthetic::pendigits_config;

fn main() {
    let opts = Options::from_args();
    let data = opts.dataset(pendigits_config());
    run_figure(
        "fig9",
        "HDP-OSR much higher accuracy than all baselines as openness grows; \
         very stable on PENDIGITS",
        &data,
        5,
        &[0, 1, 2, 3, 4, 5],
        Metric::Accuracy,
        &opts,
    );
}
