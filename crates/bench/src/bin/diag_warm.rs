//! Diagnostic: where does a warm-start classify spend its time?
//!
//! Replays the warm serving path (snapshot clone → session build → decision
//! sweeps → votes) on the serving bench's LETTER replica and times each
//! phase separately, so a regression in per-batch latency can be pinned to
//! cloning, seating, or scoring without a profiler.
use std::time::Instant;

use hdp_osr_core::{HdpOsr, HdpOsrConfig};
use osr_dataset::protocol::{OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::letter_config;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 100;
const REPS: usize = 50;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let data = letter_config().scaled(0.1).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(10, 5), &mut rng).unwrap();
    let batch: Vec<Vec<f64>> = split.test.points.iter().take(BATCH).cloned().collect();
    let config = HdpOsrConfig::default();
    let model = HdpOsr::fit(&config, &split.train).unwrap();
    let snap = model.snapshot().expect("warm model has a snapshot");

    let mut t_session = 0.0;
    let mut t_sweep = 0.0;
    let mut t_votes = 0.0;
    let baseline = osr_stats::metrics::global().snapshot();
    for rep in 0..REPS {
        let mut r = StdRng::seed_from_u64(42 + rep as u64);
        let t0 = Instant::now();
        let mut sess = snap.session(batch.clone()).unwrap();
        let t1 = Instant::now();
        sess.sweep(&mut r);
        let t2 = Instant::now();
        let dishes: Vec<_> = (0..batch.len()).map(|i| sess.dish_of(i)).collect();
        std::hint::black_box(dishes);
        let t3 = Instant::now();
        t_session += (t1 - t0).as_secs_f64();
        t_sweep += (t2 - t1).as_secs_f64();
        t_votes += (t3 - t2).as_secs_f64();
    }
    let per = 1e3 / REPS as f64;
    println!("session clone+build: {:.3} ms", t_session * per);
    println!("decision sweep:      {:.3} ms", t_sweep * per);
    println!("dish-of readout:     {:.3} ms", t_votes * per);
    println!("total:               {:.3} ms", (t_session + t_sweep + t_votes) * per);

    let delta = osr_stats::metrics::global().snapshot().delta_since(&baseline);
    let one = delta.counter(osr_stats::counters::PREDICTIVE_ONE_VS_ALL);
    let blk = delta.counter(osr_stats::counters::PREDICTIVE_BATCH_VS_ONE);
    let evals = delta.counter(osr_stats::counters::PREDICTIVE_LOGPDF_CALLS);
    let hist = delta.histogram(osr_stats::counters::PREDICTIVE_NS);
    println!(
        "kernels/batch: {:.0} one-vs-all, {:.0} batch-vs-one, {:.0} point evals, \
         ~{:.3} ms in kernels",
        one as f64 / REPS as f64,
        blk as f64 / REPS as f64,
        evals as f64 / REPS as f64,
        hist.count as f64 * hist.mean() / REPS as f64 / 1e6,
    );
}
