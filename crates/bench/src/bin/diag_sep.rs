//! Diagnostic: 1-NN leave-one-out accuracy per replica (separability check).
use osr_dataset::synthetic::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nn_acc(d: &osr_dataset::Dataset) -> f64 {
    let mut correct = 0;
    for i in 0..d.len() {
        let mut best = (f64::INFINITY, 0usize);
        for j in 0..d.len() {
            if i == j { continue; }
            let dist = osr_linalg::vector::dist_sq(&d.points[i], &d.points[j]);
            if dist < best.0 { best = (dist, j); }
        }
        if d.labels[best.1] == d.labels[i] { correct += 1; }
    }
    correct as f64 / d.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let l = letter_config().scaled(0.1).generate(&mut rng);
    println!("LETTER 1-NN acc: {:.4}", nn_acc(&l));
    let p = pendigits_config().scaled(0.2).generate(&mut rng);
    println!("PENDIGITS 1-NN acc: {:.4}", nn_acc(&p));
    let u = project_with_pca(usps_raw_scaled(&mut rng, 0.2), USPS_PCA_DIMS);
    println!("USPS(39d) 1-NN acc: {:.4}", nn_acc(&u));
}
