//! Diagnostic: sweep (separation, family_spread, mode_spread) for the
//! PENDIGITS-style geometry and report, per setting:
//! 1-NN accuracy, HDP-OSR known/unknown breakdown, and open-set F of
//! W-SVM + OSNN on one 5+5 split. Used to pin the replica knobs so the
//! paper's method ordering emerges.

use hdp_osr_core::{HdpOsr, HdpOsrConfig, Prediction};
use osr_baselines::{OpenSetClassifier, Osnn, OsnnParams, WSvm, WSvmParams};
use osr_dataset::gmm::ClassSpecConfig;
use osr_dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::SyntheticConfig;
use osr_eval::metrics::micro_f_measure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nn_acc(d: &osr_dataset::Dataset) -> f64 {
    let mut correct = 0;
    for i in 0..d.len() {
        let mut best = (f64::INFINITY, 0usize);
        for j in 0..d.len() {
            if i == j {
                continue;
            }
            let dist = osr_linalg::vector::dist_sq(&d.points[i], &d.points[j]);
            if dist < best.0 {
                best = (dist, j);
            }
        }
        if d.labels[best.1] == d.labels[i] {
            correct += 1;
        }
    }
    correct as f64 / d.len() as f64
}

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .take(3)
        .map(|a| a.parse().expect("numeric args"))
        .collect();
    let (sep, fs, m) = (args[0], args[1], args[2]);
    let cfg = SyntheticConfig {
        name: "PEND-KNOB",
        n_classes: 10,
        dim: 16,
        total_samples: 10_992,
        separation: sep,
        family_size: 2,
        family_spread: fs,
        class_cfg: ClassSpecConfig {
            dim: 16,
            subclusters: (3, 7),
            mode_spread: m,
            width: 1.0,
            n_factors: 2,
            factor_strength: 0.9,
        },
    };
    let mut rng = StdRng::seed_from_u64(5);
    let data = cfg.scaled(0.2).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 5), &mut rng).unwrap();

    let nn = nn_acc(&data);

    let beta: f64 = std::env::args().nth(4).and_then(|a| a.parse().ok()).unwrap_or(1.0);
    let rho: f64 = std::env::args().nth(5).and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let nu_off: f64 = std::env::args().nth(6).and_then(|a| a.parse().ok()).unwrap_or(3.0);
    let config = HdpOsrConfig {
        iterations: 25,
        beta,
        rho,
        nu_offset: nu_off,
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &split.train).unwrap();
    let preds = model.classify(&split.test.points, &mut rng).unwrap();
    let mut k_ok = 0;
    let mut k_bad = 0;
    let mut u_rej = 0;
    let mut u_acc = 0;
    for (p, t) in preds.iter().zip(&split.test.truth) {
        match (p, t) {
            (Prediction::Known(a), GroundTruth::Known(b)) if a == b => k_ok += 1,
            (Prediction::Unknown, GroundTruth::Unknown) => u_rej += 1,
            (Prediction::Known(_), GroundTruth::Unknown) => u_acc += 1,
            _ => k_bad += 1,
        }
    }
    let f_hdp = micro_f_measure(&preds, &split.test.truth);

    let wsvm = WSvm::train(&split.train, &WSvmParams::default()).unwrap();
    let f_wsvm = micro_f_measure(&wsvm.predict_batch(&split.test.points), &split.test.truth);
    let (pts, labels) = split.train.flattened();
    let osnn = Osnn::train(&pts, &labels, 5, &OsnnParams { sigma: 0.8 }).unwrap();
    let f_osnn = micro_f_measure(&osnn.predict_batch(&split.test.points), &split.test.truth);

    println!(
        "sep {sep} fs {fs} m {m} b {beta} r {rho} nu {nu_off} | 1nn {nn:.3} | HDP: ok {k_ok} bad {k_bad} \
         u_rej {u_rej} u_acc {u_acc} F {f_hdp:.3} | W-SVM F {f_wsvm:.3} | OSNN F {f_osnn:.3}"
    );
}
