//! Figure 7: open-set recognition accuracy vs openness on LETTER.
//!
//! Paper shape: HDP-OSR's accuracy is the highest and degrades the least as
//! openness grows.

use osr_bench::harness::{run_figure, Metric, Options};
use osr_dataset::synthetic::letter_config;

fn main() {
    let opts = Options::from_args();
    let data = opts.dataset(letter_config());
    run_figure(
        "fig7",
        "HDP-OSR clearly highest accuracy as openness increases; stable trend",
        &data,
        10,
        &[0, 2, 4, 8, 12, 16],
        Metric::Accuracy,
        &opts,
    );
}
