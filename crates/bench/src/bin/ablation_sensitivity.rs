//! Ablation: HDP-OSR's headline robustness claim — "does not overly depend
//! on … thresholds". The baselines live or die by δ/σ; HDP-OSR's only
//! knobs are the base-measure scale ρ and the sweep budget. This binary
//! sweeps both and prints how flat the F-measure stays, alongside the same
//! sweep for P_I-SVM's δ (which is anything but flat).
//!
//! ```text
//! cargo run --release -p osr-bench --bin ablation_sensitivity [--seed N] [--scale F]
//! ```

use hdp_osr_core::{HdpOsr, HdpOsrConfig};
use osr_baselines::{OpenSetClassifier, PiSvm, PiSvmParams};
use osr_bench::harness::Options;
use osr_dataset::protocol::{OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::pendigits_config;
use osr_eval::metrics::micro_f_measure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_args();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let data = pendigits_config().scaled(opts.scale.min(0.3)).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 4), &mut rng)
        .expect("dataset supports a 5+4 split");

    println!("# HDP-OSR sensitivity to its base-measure scale rho (iterations = 20)");
    println!("rho\tf_measure");
    for rho in [2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0] {
        let cfg = HdpOsrConfig { rho, iterations: 20, ..Default::default() };
        let model = HdpOsr::fit(&cfg, &split.train).expect("fit");
        let mut crng = StdRng::seed_from_u64(1);
        let preds = model.classify(&split.test.points, &mut crng).expect("classify");
        println!("{rho}\t{:.4}", micro_f_measure(&preds, &split.test.truth));
    }

    println!("\n# HDP-OSR sensitivity to the Gibbs sweep budget (rho = 4)");
    println!("iterations\tf_measure");
    for iters in [3usize, 5, 10, 20, 30] {
        let cfg = HdpOsrConfig { iterations: iters, ..Default::default() };
        let model = HdpOsr::fit(&cfg, &split.train).expect("fit");
        let mut crng = StdRng::seed_from_u64(1);
        let preds = model.classify(&split.test.points, &mut crng).expect("classify");
        println!("{iters}\t{:.4}", micro_f_measure(&preds, &split.test.truth));
    }

    println!("\n# For contrast: PI-SVM's threshold delta on the same split");
    println!("delta\tf_measure");
    for delta in [1e-7, 1e-5, 1e-3, 1e-2, 1e-1, 0.5] {
        let m = PiSvm::train(&split.train, &PiSvmParams { delta, ..Default::default() })
            .expect("train PI-SVM");
        let preds = m.predict_batch(&split.test.points);
        println!("{delta:.0e}\t{:.4}", micro_f_measure(&preds, &split.test.truth));
    }
    println!("\n# paper claim: threshold selection is 'difficult and risky' for the");
    println!("# discriminative methods, while HDP-OSR adapts as the data changes.");
}
