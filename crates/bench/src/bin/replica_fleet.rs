//! Replica-fleet simulation: one snapshot file, several servers, one truth.
//!
//! Fits the golden-trace scene warm, persists the checkpoint through a
//! [`SnapshotStore`], proves `save → load → re-save` byte identity, then
//! boots N replica [`BatchServer`]s — each from a *fresh load of the same
//! snapshot file*, each with a different worker count — and serves the full
//! batch list on every replica. Each replica writes its trace stream to
//! `results/replica_<r>.jsonl`; `scripts/verify.sh` byte-compares the
//! streams pairwise and against the committed golden
//! (`tests/goldens/replica_stream.jsonl`). The re-encoded container is also
//! written next to the snapshot (`<snapshot>.resaved`) for an external
//! `cmp`.
//!
//! ```text
//! replica_fleet [--seed N] [--replicas N] [--snapshot PATH] [--out-dir DIR]
//! ```

use std::sync::Arc;

use hdp_osr_core::snapshot::encode_model;
use hdp_osr_core::{
    BatchServer, HdpOsr, HdpOsrConfig, JsonlSink, ServingMode, SnapshotStore,
};
use osr_dataset::protocol::TrainSet;
use osr_stats::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("replica_fleet: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut seed: u64 = 2026;
    let mut replicas: usize = 3;
    let mut snapshot = String::from("results/replica_snapshot.bin");
    let mut out_dir = String::from("results");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| usage_exit());
            }
            "--replicas" => {
                i += 1;
                replicas =
                    args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| usage_exit());
            }
            "--snapshot" => {
                i += 1;
                snapshot = args.get(i).cloned().unwrap_or_else(|| usage_exit());
            }
            "--out-dir" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| usage_exit());
            }
            _ => usage_exit(),
        }
        i += 1;
    }

    // The golden-trace scene: two separated classes, four batches covering
    // known / unknown / mixed (identical to trace_dump and the golden
    // suites, so the replica streams answer to the same committed truth).
    let mut rng = StdRng::seed_from_u64(314);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 12),
        blob(&mut rng, 6.0, 0.0, 12),
        blob(&mut rng, 0.0, 9.0, 12),
        {
            let mut mixed = blob(&mut rng, -6.0, 0.0, 6);
            mixed.extend(blob(&mut rng, 0.0, 9.0, 6));
            mixed
        },
    ];
    let config = HdpOsrConfig {
        iterations: 12,
        decision_sweeps: 3,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    let model =
        HdpOsr::fit(&config, &train).unwrap_or_else(|e| fail(&format!("fit failed: {e}")));

    // Persist the checkpoint and prove the round trip is byte-stable.
    let store = SnapshotStore::new(&snapshot);
    let info = store.save(&model).unwrap_or_else(|e| fail(&format!("save failed: {e}")));
    let on_disk = store.load_bytes().unwrap_or_else(|e| fail(&format!("read-back: {e}")));
    let reloaded = store.load().unwrap_or_else(|e| fail(&format!("load failed: {e}")));
    let resaved =
        encode_model(&reloaded).unwrap_or_else(|e| fail(&format!("re-encode failed: {e}")));
    if resaved != on_disk {
        fail("save -> load -> re-save is NOT byte-identical");
    }
    let resaved_path = format!("{snapshot}.resaved");
    std::fs::write(&resaved_path, &resaved)
        .unwrap_or_else(|e| fail(&format!("writing {resaved_path}: {e}")));

    // Boot the fleet: every replica loads the same file fresh and serves
    // the full batch list under a different worker count.
    for r in 0..replicas {
        let replica = store.load().unwrap_or_else(|e| fail(&format!("replica {r} load: {e}")));
        let out = format!("{out_dir}/replica_{r}.jsonl");
        let sink = Arc::new(
            JsonlSink::create(&out).unwrap_or_else(|e| fail(&format!("creating {out}: {e}"))),
        );
        let workers = 1 << r; // 1, 2, 4, ... — identity must not depend on it
        let results = BatchServer::with_workers(&replica, workers)
            .with_trace_sink(sink)
            .classify_batches(&batches, seed);
        let served = results.iter().filter(|x| x.is_ok()).count();
        if served != batches.len() {
            fail(&format!("replica {r} served only {served}/{} batches", batches.len()));
        }
        eprintln!("replica_fleet: replica {r} ({workers} workers) -> {out}");
    }
    eprintln!(
        "replica_fleet: {replicas} replicas served from {snapshot} \
         ({} bytes, {} sections, format v{}), round-trip byte-identical",
        info.bytes, info.n_sections, info.format_version
    );
}

fn usage_exit() -> ! {
    eprintln!("usage: replica_fleet [--seed N] [--replicas N] [--snapshot PATH] [--out-dir DIR]");
    std::process::exit(2)
}
