//! Diagnostic: OSNN distance-ratio distribution on the PENDIGITS replica.
use osr_baselines::{OpenSetClassifier, Osnn, OsnnParams};
use osr_dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::pendigits_config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = pendigits_config().scaled(0.2).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 0), &mut rng).unwrap();
    let (pts, labels) = split.train.flattened();
    for sigma in [0.5, 0.7, 0.8, 0.9, 0.95] {
        let m = Osnn::train(&pts, &labels, 5, &OsnnParams { sigma }).unwrap();
        let preds = m.predict_batch(&split.test.points);
        let mut correct = 0; let mut rejected = 0; let mut wrong = 0;
        for (p, t) in preds.iter().zip(&split.test.truth) {
            match (p, t) {
                (osr_dataset::protocol::Prediction::Known(a), GroundTruth::Known(b)) if a == b => correct += 1,
                (osr_dataset::protocol::Prediction::Unknown, _) => rejected += 1,
                _ => wrong += 1,
            }
        }
        println!("sigma {sigma}: correct {correct} rejected {rejected} wrong {wrong} / {}", preds.len());
    }
}
