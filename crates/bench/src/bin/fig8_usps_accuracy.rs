//! Figure 8: open-set recognition accuracy vs openness on USPS.
//!
//! Paper shape: OSNN best past ~6 % openness, HDP-OSR second and ahead of
//! all SVM-based methods; OSNN below HDP-OSR at openness 0; W-OSVM omitted.

use osr_bench::harness::{run_figure, usps_dataset, Metric, Options};

fn main() {
    let opts = Options::from_args();
    let data = usps_dataset(&opts);
    run_figure(
        "fig8",
        "OSNN best beyond ~6 % openness, HDP-OSR next; HDP-OSR better at \
         openness 0; W-OSVM very poor",
        &data,
        5,
        &[0, 1, 2, 3, 4, 5],
        Metric::Accuracy,
        &opts,
    );
}
