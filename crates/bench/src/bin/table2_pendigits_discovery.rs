//! Table 2: new-class discovery on the PENDIGITS replica.
//!
//! Same experiment as Table 1 on the pen-trajectory digits: 5 known + 5
//! unknown classes; the paper reports richer subclass structure here (5–15
//! subclasses per known class, 75 subclasses in the test set) because the
//! classes are strongly multi-modal, and again Δ ≈ 4 against a truth of 5.

use osr_bench::harness::{run_discovery, Options};
use osr_dataset::synthetic::pendigits_config;

fn main() {
    let opts = Options::from_args();
    let data = opts.dataset(pendigits_config());
    run_discovery("table2", &data, &opts);
}
