//! Figure 6: F-measure vs openness on the PENDIGITS replica.
//!
//! Paper shape: HDP-OSR much higher than every other method as openness
//! increases, and almost unchanged across the whole sweep.

use osr_bench::harness::{run_figure, Metric, Options};
use osr_dataset::synthetic::pendigits_config;

fn main() {
    let opts = Options::from_args();
    let data = opts.dataset(pendigits_config());
    run_figure(
        "fig6",
        "HDP-OSR much higher than all baselines with increasing openness; \
         HDP-OSR curve almost flat",
        &data,
        5,
        &[0, 1, 2, 3, 4, 5],
        Metric::FMeasure,
        &opts,
    );
}
