//! Diagnostic: HDP-OSR error breakdown on a PENDIGITS 5+5 split.
use hdp_osr_core::{HdpOsr, HdpOsrConfig, Prediction};
use osr_dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig};
use osr_dataset::synthetic::pendigits_config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = pendigits_config().scaled(0.2).generate(&mut rng);
    let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 5), &mut rng).unwrap();
    let rho: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let nu_off: f64 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(3.0);
    let config = HdpOsrConfig { iterations: 30, rho, nu_offset: nu_off, ..Default::default() };
    let model = HdpOsr::fit(&config, &split.train).unwrap();
    let out = model.classify_detailed(&split.test.points, &mut rng).unwrap();
    println!("rho {rho} nu_offset {nu_off}");
    let mut k_correct = 0; let mut k_wrong = 0; let mut k_rej = 0;
    let mut u_rej = 0; let mut u_acc = 0;
    for (p, t) in out.predictions.iter().zip(&split.test.truth) {
        match (p, t) {
            (Prediction::Known(a), GroundTruth::Known(b)) if a == b => k_correct += 1,
            (Prediction::Known(_), GroundTruth::Known(_)) => k_wrong += 1,
            (Prediction::Unknown, GroundTruth::Known(_)) => k_rej += 1,
            (Prediction::Unknown, GroundTruth::Unknown) => u_rej += 1,
            (Prediction::Known(_), GroundTruth::Unknown) => u_acc += 1,
        }
    }
    println!("known: correct {k_correct} wrong {k_wrong} rejected {k_rej}");
    println!("unknown: rejected {u_rej} accepted {u_acc}");
    println!("gamma {:.1} alpha {:.2} dishes: known_sub {} new_sub {} delta {}",
        out.gamma, out.alpha,
        out.report.n_known_subclasses(), out.report.n_new_subclasses(), out.report.delta_estimate);
    for g in &out.report.known {
        println!("{}: {:?}", g.name, g.subclasses.iter().map(|&(d,c,_)| (d,c)).collect::<Vec<_>>());
    }
    // Which dishes hold accepted unknowns?
    use std::collections::BTreeMap;
    let mut absorbed: BTreeMap<usize, usize> = BTreeMap::new();
    for ((p, t), &dish) in out.predictions.iter().zip(&split.test.truth).zip(&out.test_dishes) {
        if matches!(t, GroundTruth::Unknown) && matches!(p, Prediction::Known(_)) {
            *absorbed.entry(dish).or_insert(0) += 1;
        }
    }
    println!("absorbing dishes (dish -> count of accepted unknowns): {absorbed:?}");
    // How many KNOWN test points sit on each absorbing dish?
    let mut known_on: BTreeMap<usize, usize> = BTreeMap::new();
    for (t, &dish) in split.test.truth.iter().zip(&out.test_dishes) {
        if matches!(t, GroundTruth::Known(_)) && absorbed.contains_key(&dish) {
            *known_on.entry(dish).or_insert(0) += 1;
        }
    }
    println!("known test points on absorbing dishes: {known_on:?}");
}

// (extended diagnostics appended below main in a helper module would be
// cleaner; quick instrumentation lives in main above)
