//! Table 1: new-class discovery on the USPS replica.
//!
//! 5 randomly chosen known classes train the model; the test set carries all
//! 10 classes (5 known + 5 unknown). The binary prints each known class's
//! subclass decomposition with mixture proportions, the test set's split
//! into known-associated and new subclasses, and the Eq. 11 estimate Δ of
//! the number of unknown categories (the paper's worked example, Eq. 12,
//! obtains Δ = 4 against a truth of 5).

use osr_bench::harness::{run_discovery, usps_dataset, Options};

fn main() {
    let opts = Options::from_args();
    let data = usps_dataset(&opts);
    run_discovery("table1", &data, &opts);
}
