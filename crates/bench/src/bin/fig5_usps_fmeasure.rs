//! Figure 5: F-measure vs openness on the USPS replica (PCA → 39 dims).
//!
//! Paper shape: HDP-OSR well above 1-vs-Set / W-SVM / P_I-SVM as openness
//! grows; OSNN overtakes HDP-OSR past ~12 % openness but is clearly worse
//! at openness 0; W-OSVM is so poor it is omitted from the paper's plot.

use osr_bench::harness::{run_figure, usps_dataset, Metric, Options};

fn main() {
    let opts = Options::from_args();
    let data = usps_dataset(&opts);
    run_figure(
        "fig5",
        "HDP-OSR ≫ 1-vs-Set/W-SVM/PI-SVM at high openness; OSNN most stable \
         and ahead past ~12 %, but weakest at openness 0; W-OSVM very poor",
        &data,
        5,
        &[0, 1, 2, 3, 4, 5],
        Metric::FMeasure,
        &opts,
    );
}
