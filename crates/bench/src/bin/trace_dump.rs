//! Dump a seeded end-to-end trace stream to JSONL.
//!
//! Fits a small two-class scene warm, then serves four batches through a
//! [`BatchServer`] with a [`JsonlSink`] attached, writing one `Fit` record
//! followed by one `Batch` record per batch. The stream is a pure function
//! of `--seed`, so two runs with the same seed must produce byte-identical
//! files — `scripts/verify.sh` runs this twice and diffs the outputs.
//!
//! ```text
//! trace_dump [--seed N] [--out PATH]
//! ```

use std::sync::Arc;

use hdp_osr_core::{
    BatchServer, HdpOsr, HdpOsrConfig, JsonlSink, ServingMode, TraceRecord, TraceSink,
};
use osr_dataset::protocol::TrainSet;
use osr_stats::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            vec![
                cx + 0.5 * sampling::standard_normal(rng),
                cy + 0.5 * sampling::standard_normal(rng),
            ]
        })
        .collect()
}

fn main() {
    let mut seed: u64 = 2026;
    let mut out = String::from("results/trace_dump.jsonl");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| usage_exit());
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| usage_exit());
            }
            _ => usage_exit(),
        }
        i += 1;
    }

    // Fixed scene (data seed independent of --seed, which drives serving):
    // two separated classes, four batches covering known / unknown / mixed.
    let mut rng = StdRng::seed_from_u64(314);
    let train = TrainSet {
        class_ids: vec![1, 2],
        classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
    };
    let batches = vec![
        blob(&mut rng, -6.0, 0.0, 12),
        blob(&mut rng, 6.0, 0.0, 12),
        blob(&mut rng, 0.0, 9.0, 12),
        {
            let mut mixed = blob(&mut rng, -6.0, 0.0, 6);
            mixed.extend(blob(&mut rng, 0.0, 9.0, 6));
            mixed
        },
    ];

    let config = HdpOsrConfig {
        iterations: 12,
        decision_sweeps: 3,
        serving: ServingMode::WarmStart,
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &train).unwrap_or_else(|e| {
        eprintln!("trace_dump: fit on the fixed scene failed: {e:?}");
        std::process::exit(1)
    });

    let sink = Arc::new(JsonlSink::create(&out).unwrap_or_else(|e| {
        eprintln!("trace_dump: cannot create {out}: {e}");
        std::process::exit(1)
    }));
    let Some(report) = model.fit_report().cloned() else {
        eprintln!("trace_dump: warm fit carries no fit report");
        std::process::exit(1)
    };
    sink.record(&TraceRecord::Fit(report));

    let results =
        BatchServer::new(&model).with_trace_sink(sink.clone()).classify_batches(&batches, seed);
    let served = results.iter().filter(|r| r.is_ok()).count();
    eprintln!("trace_dump: seed {seed}, {served}/{} batches served, stream at {out}", results.len());
}

fn usage_exit() -> ! {
    eprintln!("usage: trace_dump [--seed N] [--out PATH]");
    std::process::exit(2)
}
