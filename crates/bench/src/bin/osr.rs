//! `osr` — run any of the six open-set methods on your own CSV data.
//!
//! ```text
//! osr --data samples.csv [--method hdp-osr] [--known 5] [--unknown 2]
//!     [--trials 5] [--seed 42] [--iters 30] [--list]
//! ```
//!
//! The CSV carries one sample per line, features first, class label (string
//! or number) in the last column. The tool carves an open-set problem out of
//! the file with the paper's protocol (60 % of each chosen known class to
//! training; held-out knowns plus every sample of the chosen unknown classes
//! to testing), runs the requested method over `--trials` randomized splits,
//! and reports micro-F-measure and open-set accuracy.

use hdp_osr_core::HdpOsrConfig;
use osr_baselines::{OneVsSetParams, OsnnParams, PiSvmParams, WOsvmParams, WSvmParams};
use osr_dataset::csv::read_csv_file;
use osr_dataset::protocol::SplitConfig;
use osr_eval::experiment::{run_trials, ExperimentConfig};
use osr_eval::methods::MethodSpec;
use osr_stats::descriptive::MeanStd;

struct Args {
    data: Option<std::path::PathBuf>,
    method: String,
    known: usize,
    unknown: usize,
    trials: usize,
    seed: u64,
    iters: usize,
    list: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        data: None,
        method: "hdp-osr".into(),
        known: 0,
        unknown: 0,
        trials: 5,
        seed: 42,
        iters: 30,
        list: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--data" => args.data = Some(value(&argv, &mut i).into()),
            "--method" => args.method = value(&argv, &mut i),
            "--known" => args.known = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--unknown" => args.unknown = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--trials" => args.trials = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: osr --data FILE.csv [--method NAME] [--known N] [--unknown N]\n\
         \x20          [--trials N] [--seed N] [--iters N] [--list]\n\
         methods: hdp-osr | 1-vs-set | w-osvm | w-svm | pi-svm | osnn | all"
    );
    std::process::exit(2)
}

fn spec_for(name: &str, iters: usize) -> Option<MethodSpec> {
    Some(match name {
        "hdp-osr" => {
            MethodSpec::HdpOsr(HdpOsrConfig { iterations: iters, ..Default::default() })
        }
        "1-vs-set" => MethodSpec::OneVsSet(OneVsSetParams::default()),
        "w-osvm" => MethodSpec::WOsvm(WOsvmParams::default()),
        "w-svm" => MethodSpec::WSvm(WSvmParams::default()),
        "pi-svm" => MethodSpec::PiSvm(PiSvmParams::default()),
        "osnn" => MethodSpec::Osnn(OsnnParams::default()),
        _ => return None,
    })
}

fn main() {
    let args = parse_args();
    if args.list {
        println!("hdp-osr   the paper's collective-decision model (default)");
        println!("1-vs-set  linear slab machine (Scheirer et al. 2013)");
        println!("w-osvm    one-class SVM + Weibull calibration");
        println!("w-svm     Weibull-calibrated SVM (Scheirer et al. 2014)");
        println!("pi-svm    probability-of-inclusion SVM (Jain et al. 2014)");
        println!("osnn      nearest-neighbour distance ratio (Júnior et al. 2017)");
        println!("all       run every method");
        return;
    }
    let Some(path) = args.data else { usage() };
    let csv = match read_csv_file(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to read {}: {e}", path.display());
            std::process::exit(1)
        }
    };
    let data = csv.dataset;
    eprintln!(
        "{}: {} samples, {} classes ({:?}…), {} features",
        path.display(),
        data.len(),
        data.n_classes,
        &csv.label_names[..csv.label_names.len().min(5)],
        data.dim()
    );

    // Default split: roughly half the classes known, half of the remainder
    // unknown.
    let known = if args.known > 0 { args.known } else { (data.n_classes / 2).max(2) };
    let unknown =
        if args.unknown > 0 { args.unknown } else { (data.n_classes - known).min(known) };
    if known + unknown > data.n_classes || known < 2 {
        eprintln!(
            "bad class budget: {known} known + {unknown} unknown of {} classes",
            data.n_classes
        );
        std::process::exit(1)
    }
    let config = ExperimentConfig {
        split: SplitConfig::new(known, unknown),
        trials: args.trials,
        seed: args.seed,
        tune: false,
        parallel: true,
    };
    eprintln!(
        "{known} known + {unknown} unknown classes (openness {:.1}%), {} trials, seed {}",
        config.split.openness() * 100.0,
        args.trials,
        args.seed
    );

    let methods: Vec<MethodSpec> = if args.method == "all" {
        ["1-vs-set", "w-osvm", "w-svm", "pi-svm", "osnn", "hdp-osr"]
            .iter()
            .filter_map(|m| spec_for(m, args.iters))
            .collect()
    } else {
        match spec_for(&args.method, args.iters) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown method {:?}; try --list", args.method);
                std::process::exit(2)
            }
        }
    };

    println!("method\tf_measure\tf_std\taccuracy\tacc_std\ttrials");
    for spec in methods {
        match run_trials(&data, &config, &spec) {
            Ok(scores) => {
                let f = MeanStd::from_values(&scores.f_measures);
                let a = MeanStd::from_values(&scores.accuracies);
                println!(
                    "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{}",
                    spec.name(),
                    f.mean,
                    f.std,
                    a.mean,
                    a.std,
                    f.n
                );
            }
            Err(e) => eprintln!("{}: failed: {e}", spec.name()),
        }
    }
}
