//! Diagnostic: HDP-OSR hyperparameter behaviour on the 39-d USPS replica.

use hdp_osr_core::{HdpOsr, HdpOsrConfig, Prediction};
use osr_dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig};
use osr_eval::metrics::micro_f_measure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let raw = osr_dataset::synthetic::usps_raw_scaled(&mut rng, 0.2);
    let data = osr_dataset::synthetic::project_with_pca(raw, 39);
    for n_unknown in [2usize, 5] {
        let mut srng = StdRng::seed_from_u64(7);
        let split =
            OpenSetSplit::sample(&data, &SplitConfig::new(5, n_unknown), &mut srng).unwrap();
        for (rho, nu) in [(2.0, 0.0), (4.0, 0.0), (8.0, 0.0), (16.0, 0.0), (4.0, 3.0)] {
            let cfg = HdpOsrConfig { rho, nu_offset: nu, iterations: 20, ..Default::default() };
            let model = HdpOsr::fit(&cfg, &split.train).unwrap();
            let mut crng = StdRng::seed_from_u64(1);
            let preds = model.classify(&split.test.points, &mut crng).unwrap();
            let f = micro_f_measure(&preds, &split.test.truth);
            let mut k_ok = 0;
            let mut u_rej = 0;
            let mut u_tot = 0;
            for (p, t) in preds.iter().zip(&split.test.truth) {
                match (p, t) {
                    (Prediction::Known(a), GroundTruth::Known(b)) if a == b => k_ok += 1,
                    (Prediction::Unknown, GroundTruth::Unknown) => {
                        u_rej += 1;
                        u_tot += 1;
                    }
                    (_, GroundTruth::Unknown) => u_tot += 1,
                    _ => {}
                }
            }
            println!(
                "unknown {n_unknown} rho {rho:>4} nu {nu} | F {f:.3} k_ok {k_ok} u_rej {u_rej}/{u_tot}"
            );
        }
    }
}
