//! Terminal line charts for the figure binaries: renders the openness sweep
//! as an ASCII plot so a reproduction run *looks like* the paper's figure
//! without leaving the terminal.

/// One series to plot: a label and its `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, any order; x is openness, y the metric.
    pub points: Vec<(f64, f64)>,
}

/// Render series into a `width × height` ASCII grid with axes and legend.
///
/// Each series draws with its own marker character; overlapping cells show
/// the later series. Y spans `[y_min, y_max]` (clamped values land on the
/// border); x spans the data range.
pub fn render(series: &[Series], width: usize, height: usize, y_min: f64, y_max: f64) -> String {
    assert!(width >= 16 && height >= 4, "chart: grid too small");
    assert!(y_max > y_min, "chart: empty y range");
    const MARKERS: [char; 8] = ['o', '*', '+', 'x', '#', '@', '%', '&'];

    let xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    if xs.is_empty() {
        return String::from("(no data)\n");
    }
    let x_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        let mut pts: Vec<(f64, f64)> = s.points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Plot points and connect consecutive ones with linear interpolation.
        let cell = |x: f64, y: f64| -> (usize, usize) {
            let cx = ((x - x_min) / x_span * (width - 1) as f64).round() as usize;
            let cy = ((y.clamp(y_min, y_max) - y_min) / (y_max - y_min)
                * (height - 1) as f64)
                .round() as usize;
            (cx.min(width - 1), height - 1 - cy.min(height - 1))
        };
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let steps = width.max(2);
            for t in 0..=steps {
                let f = t as f64 / steps as f64;
                let (cx, cy) = cell(x0 + f * (x1 - x0), y0 + f * (y1 - y0));
                grid[cy][cx] = marker;
            }
        }
        for &(x, y) in &pts {
            let (cx, cy) = cell(x, y);
            grid[cy][cx] = marker;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_here:6.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:6} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:6}  {:<10}{:>width$}\n",
        "",
        format!("{:.1}%", x_min * 100.0),
        format!("openness {:.1}%", x_max * 100.0),
        width = width.saturating_sub(10)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKERS[si % MARKERS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> Vec<Series> {
        vec![
            Series {
                label: "flat".into(),
                points: vec![(0.0, 0.95), (0.1, 0.95), (0.2, 0.94)],
            },
            Series {
                label: "falling".into(),
                points: vec![(0.0, 0.95), (0.1, 0.7), (0.2, 0.5)],
            },
        ]
    }

    #[test]
    fn renders_axes_legend_and_markers() {
        let chart = render(&two_series(), 40, 12, 0.4, 1.0);
        assert!(chart.contains("o flat"));
        assert!(chart.contains("* falling"));
        assert!(chart.contains("openness 20.0%"));
        assert!(chart.contains('|'));
        assert!(chart.contains('+'));
        // Both markers appear in the plotting area.
        assert!(chart.matches('o').count() > 3);
        assert!(chart.matches('*').count() > 3);
    }

    #[test]
    fn flat_series_stays_on_one_row() {
        let s = vec![Series { label: "flat".into(), points: vec![(0.0, 0.8), (1.0, 0.8)] }];
        let chart = render(&s, 30, 10, 0.0, 1.0);
        let rows_with_marker =
            chart.lines().filter(|l| l.contains('o') && l.contains('|')).count();
        assert_eq!(rows_with_marker, 1, "flat line spilled over rows:\n{chart}");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let s = vec![Series { label: "wild".into(), points: vec![(0.0, -5.0), (1.0, 5.0)] }];
        let chart = render(&s, 30, 8, 0.0, 1.0);
        // Must not panic, and markers land on the borders.
        assert!(chart.contains('o'));
    }

    #[test]
    fn empty_series_render_placeholder() {
        let s = vec![Series { label: "none".into(), points: vec![] }];
        assert_eq!(render(&s, 30, 8, 0.0, 1.0), "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_is_rejected() {
        let _ = render(&two_series(), 4, 2, 0.0, 1.0);
    }
}
