//! Reproduction harness for the paper's evaluation section.
//!
//! One binary per figure/table lives in `src/bin/`; shared sweep plumbing is
//! in [`harness`]. Criterion microbenches live in `benches/`.

pub mod chart;
pub mod harness;
