//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --trials N    randomized evaluation splits per point (default 10, paper's value)
//! --seed N      master seed (default 42)
//! --scale F     dataset size multiplier (default 0.3; use --full for 1.0)
//! --full        full-size dataset replica (paper scale; slow)
//! --quick       smoke-test mode: scale 0.1, 3 trials, 10 sweeps, no tuning
//! --no-tune     skip the validation grid search (use default parameters)
//! --iters N     HDP-OSR Gibbs sweeps (default 30, the paper's setting)
//! --cold        serve HDP-OSR cold (full per-batch burn-in) instead of the
//!               default warm-start snapshot serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use hdp_osr_core::{HdpOsrConfig, ServingMode};
use osr_dataset::synthetic::SyntheticConfig;
use osr_dataset::Dataset;
use osr_eval::experiment::{openness_sweep, MethodResult};
use osr_eval::methods::MethodSpec;
use osr_eval::tuning::Grids;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Trials per sweep point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Run the validation grid search.
    pub tune: bool,
    /// HDP-OSR Gibbs sweeps.
    pub iterations: usize,
    /// Serve HDP-OSR cold (per-batch burn-in) instead of warm-start.
    pub cold: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self { trials: 10, seed: 42, scale: 0.3, tune: true, iterations: 30, cold: false }
    }
}

impl Options {
    /// Parse `std::env::args`, exiting with usage on errors.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i).unwrap_or_else(|| usage_exit()).clone()
            };
            match args[i].as_str() {
                "--trials" => opts.trials = take_value(&mut i).parse().unwrap_or_else(|_| usage_exit()),
                "--seed" => opts.seed = take_value(&mut i).parse().unwrap_or_else(|_| usage_exit()),
                "--scale" => opts.scale = take_value(&mut i).parse().unwrap_or_else(|_| usage_exit()),
                "--iters" => {
                    opts.iterations = take_value(&mut i).parse().unwrap_or_else(|_| usage_exit())
                }
                "--full" => opts.scale = 1.0,
                "--no-tune" => opts.tune = false,
                "--cold" => opts.cold = true,
                "--quick" => {
                    opts.scale = 0.1;
                    opts.trials = 3;
                    opts.iterations = 10;
                    opts.tune = false;
                }
                "--help" | "-h" => usage_exit(),
                other => {
                    eprintln!("unknown flag: {other}");
                    usage_exit()
                }
            }
            i += 1;
        }
        opts
    }

    /// Generate a dataset replica at the configured scale.
    pub fn dataset(&self, config: SyntheticConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        if (self.scale - 1.0).abs() < 1e-12 {
            config.generate(&mut rng)
        } else {
            config.scaled(self.scale).generate(&mut rng)
        }
    }

    /// The serving mode selected by `--cold` (warm-start by default).
    pub fn serving_mode(&self) -> ServingMode {
        if self.cold {
            ServingMode::ColdStart
        } else {
            ServingMode::WarmStart
        }
    }

    /// Method families for the sweep: the coarse tuning grids, with
    /// HDP-OSR's sweep count overridden by `--iters` and its serving mode
    /// by `--cold`.
    pub fn families(&self) -> Vec<Vec<MethodSpec>> {
        Grids::coarse()
            .candidates
            .into_iter()
            .map(|family| {
                family
                    .into_iter()
                    .map(|spec| match spec {
                        MethodSpec::HdpOsr(cfg) => MethodSpec::HdpOsr(HdpOsrConfig {
                            iterations: self.iterations,
                            serving: self.serving_mode(),
                            ..cfg
                        }),
                        other => other,
                    })
                    .collect()
            })
            .collect()
    }
}

/// Wall-clock + metrics-registry instrumentation for a serving region.
///
/// The predictive log-pdf is the sampler's unit of work (one evaluation per
/// live dish per seating decision), so its count compares serving schedules
/// machine-independently. All readings are process-global and monotone; this
/// snapshots the registry at `start()` and diffs at `report()`, so concurrent
/// regions stay additive rather than clobbering each other.
pub struct ServingStats {
    started: std::time::Instant,
    baseline: osr_stats::metrics::MetricsSnapshot,
}

impl ServingStats {
    /// Begin measuring: stamp the clock and snapshot the global metrics
    /// registry (predictive calls, retries, degraded batches, sweep
    /// counters and the sweep-latency histogram all live there).
    pub fn start() -> Self {
        Self {
            started: std::time::Instant::now(),
            baseline: osr_stats::metrics::global().snapshot(),
        }
    }

    /// Print the serving summary for the region:
    ///
    /// ```text
    /// [label] served N batch(es) in S s (B batches/sec), C predictive-logpdf calls, R retries, D degraded
    /// [label] sampler: W sweeps, M seat-moves, sweep time p50≈X µs p99≈Y µs (mean Z µs)
    /// [label] kernels: A one-vs-all, B batch-vs-one, kernel time p50≈X µs p99≈Y µs (mean Z µs)
    /// ```
    ///
    /// The fault-tolerance deltas make a run that silently fell back to
    /// frozen inference visible in the benchmark log; the sampler line makes
    /// regressions in per-sweep cost visible without a profiler. Quantiles
    /// come from the registry's log2-bucket histogram, so they are
    /// factor-of-two upper bounds, not exact order statistics.
    pub fn report(&self, label: &str, n_batches: usize) {
        let secs = self.started.elapsed().as_secs_f64();
        let delta = osr_stats::metrics::global().snapshot().delta_since(&self.baseline);
        let calls = delta.counter(osr_stats::counters::PREDICTIVE_LOGPDF_CALLS);
        let retries = delta.counter(osr_stats::counters::SERVE_RETRIES);
        let degraded = delta.counter(osr_stats::counters::DEGRADED_BATCHES);
        let rate = n_batches as f64 / secs.max(1e-9);
        eprintln!(
            "[{label}] served {n_batches} batch(es) in {secs:.2}s \
             ({rate:.2} batches/sec), {calls} predictive-logpdf calls, \
             {retries} retries, {degraded} degraded"
        );
        let sweeps = delta.counter(osr_hdp::SWEEPS_METRIC);
        let moves = delta.counter(osr_hdp::SEAT_MOVES_METRIC);
        let times = delta.histogram(osr_hdp::SWEEP_TIME_METRIC);
        eprintln!(
            "[{label}] sampler: {sweeps} sweeps, {moves} seat-moves, \
             sweep time p50≈{:.0} µs p99≈{:.0} µs (mean {:.0} µs)",
            times.quantile(0.5) as f64 / 1e3,
            times.quantile(0.99) as f64 / 1e3,
            times.mean() / 1e3,
        );
        let one_vs_all = delta.counter(osr_stats::counters::PREDICTIVE_ONE_VS_ALL);
        let batch_vs_one = delta.counter(osr_stats::counters::PREDICTIVE_BATCH_VS_ONE);
        let kernel_times = delta.histogram(osr_stats::counters::PREDICTIVE_NS);
        eprintln!(
            "[{label}] kernels: {one_vs_all} one-vs-all, {batch_vs_one} batch-vs-one, \
             kernel time p50≈{:.1} µs p99≈{:.1} µs (mean {:.1} µs)",
            kernel_times.quantile(0.5) as f64 / 1e3,
            kernel_times.quantile(0.99) as f64 / 1e3,
            kernel_times.mean() / 1e3,
        );
    }
}

/// Run a Tables 1–2 new-class-discovery experiment: 5 known + 5 unknown
/// classes, HDP-OSR only, printing the subclass decomposition and the Eq. 11
/// estimate Δ.
pub fn run_discovery(table: &str, data: &Dataset, opts: &Options) {
    use hdp_osr_core::{HdpOsr, HdpOsrConfig};
    use osr_dataset::protocol::{OpenSetSplit, SplitConfig};

    eprintln!(
        "[{table}] {}: 5 known + 5 unknown classes, seed {}, scale {}, {} sweeps",
        data.name, opts.seed, opts.scale, opts.iterations
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let split = OpenSetSplit::sample(data, &SplitConfig::new(5, 5), &mut rng)
        .unwrap_or_else(|e| die(format!("5+5 split of {} failed: {e:?}", data.name)));

    // The broad-prior scale that lets new subclasses nucleate grows with the
    // feature dimension (the prior predictive's normalization cost is
    // O(d·ln ρ)); ρ = 4 suits d ≈ 16, USPS's 39 dims want about twice that.
    // The figure binaries find this via validation tuning; the discovery
    // tables run untuned, so apply the scaling directly.
    let rho = 4.0 * (data.dim() as f64 / 16.0).max(1.0);
    let config = HdpOsrConfig {
        iterations: opts.iterations,
        rho,
        serving: opts.serving_mode(),
        ..Default::default()
    };
    let model = HdpOsr::fit(&config, &split.train)
        .unwrap_or_else(|e| die(format!("fit on {} failed: {e:?}", data.name)));
    let stats = ServingStats::start();
    let out = model
        .classify_detailed(&split.test.points, &mut rng)
        .unwrap_or_else(|e| die(format!("classification on {} failed: {e:?}", data.name)));
    stats.report(table, 1);

    // Annotate each known group with its original class id, as the paper
    // does ("Class1 ('2')").
    println!("# {} — new class discovery under HDP-OSR", data.name);
    println!(
        "# known classes (original ids): {:?}; unknown classes: {:?}",
        split.train.class_ids, split.unknown_class_ids
    );
    println!("{}", out.report.to_table());
    println!(
        "# |S_known| = {}, |S_unknown| = {}, J-1 = {}, true unknown classes = {}",
        out.report.n_known_subclasses(),
        out.report.n_new_subclasses(),
        split.train.n_classes(),
        split.unknown_class_ids.len()
    );
    println!("# paper: Δ = 4 with 5 true unknown classes (USPS), Δ ≈ 4 (PENDIGITS)");
}

/// Build the USPS replica at the configured scale **after** its PCA
/// projection to 39 dimensions (the paper's preprocessing).
pub fn usps_dataset(opts: &Options) -> Dataset {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let raw = osr_dataset::synthetic::usps_raw_scaled(&mut rng, opts.scale);
    osr_dataset::synthetic::project_with_pca(raw, osr_dataset::synthetic::USPS_PCA_DIMS)
}

fn die(msg: String) -> ! {
    eprintln!("bench: {msg}");
    std::process::exit(1)
}

fn usage_exit() -> ! {
    eprintln!(
        "flags: --trials N  --seed N  --scale F  --full  --quick  --no-tune  --iters N  --cold"
    );
    std::process::exit(2)
}

/// Which metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Micro-F-measure (Figs. 4–6).
    FMeasure,
    /// Open-set recognition accuracy (Figs. 7–9).
    Accuracy,
}

/// Run one figure: an openness sweep of all six methods on `data`,
/// printing a TSV block and a per-openness summary of `metric`.
pub fn run_figure(
    figure: &str,
    paper_expectation: &str,
    data: &Dataset,
    n_known: usize,
    unknown_counts: &[usize],
    metric: Metric,
    opts: &Options,
) {
    eprintln!(
        "[{figure}] {}: {n_known} known classes, unknown sweep {unknown_counts:?}, \
         {} trials, seed {}, scale {}, tune={}, serving={:?}",
        data.name, opts.trials, opts.seed, opts.scale, opts.tune, opts.serving_mode()
    );
    let stats = ServingStats::start();
    let rows = openness_sweep(
        data,
        n_known,
        unknown_counts,
        opts.trials,
        opts.seed,
        opts.tune,
        &opts.families(),
    )
    .unwrap_or_else(|e| {
        eprintln!("[{figure}] failed: {e}");
        std::process::exit(1)
    });
    // One classified batch per (method, openness, trial); the rate also
    // absorbs tuning overhead when --no-tune is not set.
    stats.report(figure, rows.len() * opts.trials);

    println!("{}", osr_eval::experiment::to_tsv(&rows));
    print_series(figure, &rows, metric);
    print_chart(&rows, metric);
    println!("# paper: {paper_expectation}");
}

/// Render the sweep as an ASCII line chart (the figure itself).
pub fn print_chart(rows: &[MethodResult], metric: Metric) {
    let mut methods: Vec<&str> = Vec::new();
    for r in rows {
        if !methods.contains(&r.method.as_str()) {
            methods.push(r.method.as_str());
        }
    }
    let series: Vec<crate::chart::Series> = methods
        .iter()
        .map(|m| crate::chart::Series {
            label: (*m).to_string(),
            points: rows
                .iter()
                .filter(|r| r.method == *m)
                .map(|r| {
                    let v = match metric {
                        Metric::FMeasure => r.f_measure.mean,
                        Metric::Accuracy => r.accuracy.mean,
                    };
                    (r.openness, v)
                })
                .collect(),
        })
        .collect();
    let y_min = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(f64::INFINITY, f64::min)
        .min(0.9)
        - 0.02;
    println!("{}", crate::chart::render(&series, 64, 18, y_min.max(0.0), 1.0));
}

/// Pretty-print the metric as one line per method across the openness sweep.
pub fn print_series(figure: &str, rows: &[MethodResult], metric: Metric) {
    let mut opennesses: Vec<f64> = rows.iter().map(|r| r.openness).collect();
    opennesses.sort_by(|a, b| a.total_cmp(b));
    opennesses.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut methods: Vec<&str> = Vec::new();
    for r in rows {
        if !methods.contains(&r.method.as_str()) {
            methods.push(r.method.as_str());
        }
    }
    let metric_name = match metric {
        Metric::FMeasure => "F-measure",
        Metric::Accuracy => "accuracy",
    };

    println!("# {figure}: {metric_name} by openness (mean over trials)");
    print!("# {:<10}", "method");
    for o in &opennesses {
        print!(" {:>8.1}%", o * 100.0);
    }
    println!();
    for m in &methods {
        print!("# {m:<10}");
        for o in &opennesses {
            // A hole in the sweep grid prints as NaN rather than aborting
            // the whole table.
            let v = rows
                .iter()
                .find(|r| r.method == *m && (r.openness - o).abs() < 1e-12)
                .map_or(f64::NAN, |row| match metric {
                    Metric::FMeasure => row.f_measure.mean,
                    Metric::Accuracy => row.accuracy.mean,
                });
            print!(" {v:>9.4}");
        }
        println!();
    }
}
