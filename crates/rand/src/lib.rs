//! Deterministic random-number generation for the `hdp-osr` workspace.
//!
//! This crate is a self-contained, dependency-free stand-in for the subset of
//! the `rand 0.8` API the workspace uses (`Rng`, `RngCore`, `SeedableRng`,
//! [`rngs::StdRng`]). The build environment has no access to crates.io, so
//! the real `rand` cannot be fetched; shipping a local shim under the same
//! package name keeps every `use rand::…` in the workspace unchanged.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — not
//! bit-compatible with upstream `StdRng` (ChaCha12), but the workspace only
//! relies on *self*-consistency: the same seed must always produce the same
//! stream, which is what makes every experiment binary reproducible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG's "standard" distribution
/// (`rng.gen::<T>()`): `f64` in `[0, 1)`, full-range integers, fair bools.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng); // [0, 1)
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        // 53-bit grid over [0, 1] — the endpoint is reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// Uniform draw from `0..bound` by rejection (no modulo bias).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Largest multiple of `bound` that fits in u64; values at or above it
    // would bias the low residues, so they are redrawn.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution of `T`
    /// (`f64` uniform on `[0, 1)`, integers full-range, `bool` fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draw `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (expanded internally; the only constructor
    /// the workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush, and — unlike upstream's ChaCha12-backed
    /// `StdRng` — implementable in a few lines with no dependencies. Streams
    /// are stable across platforms and releases of this workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0, 0, 0];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_standard_is_in_unit_interval_and_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean drift: {mean}");
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let y = rng.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_usize_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive endpoint is reachable.
        let mut top = false;
        for _ in 0..1000 {
            if rng.gen_range(0..=3usize) == 3 {
                top = true;
            }
        }
        assert!(top);
    }

    #[test]
    fn unsized_rng_works_through_generic_fns() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
