//! Scoped threads for the `hdp-osr` workspace.
//!
//! Self-contained stand-in for the subset of the `crossbeam 0.8` API the
//! workspace uses (`crossbeam::thread::scope` + `Scope::spawn`). The build
//! environment has no access to crates.io, so the real `crossbeam` cannot be
//! fetched; since Rust 1.63 the standard library's [`std::thread::scope`]
//! provides the same structured-concurrency guarantee, so the shim is a thin
//! signature adapter over it.
//!
//! One behavioral difference: when a spawned thread panics, crossbeam's
//! `scope` returns `Err(payload)` while `std::thread::scope` resumes the
//! panic on the host thread. Every call site in this workspace immediately
//! `.expect(…)`s the result, so both designs end in the same panic.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle: threads spawned through it may borrow from the
    /// enclosing stack frame and are all joined before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so it
        /// can spawn further siblings, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner: &'scope std::thread::Scope<'scope, 'env> = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope for spawning borrowing threads; all threads are joined
    /// before this returns.
    ///
    /// # Errors
    /// The real crossbeam returns `Err` with the panic payload of a panicked
    /// child; this shim instead resumes the child's panic directly (see the
    /// crate docs), so an `Err` is never actually produced.
    #[allow(clippy::missing_panics_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let data = [1usize, 2, 3, 4];
            let result = super::scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                    });
                }
                7
            })
            .expect("no panics");
            assert_eq!(result, 7);
            assert_eq!(counter.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let hits = AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            })
            .expect("no panics");
            assert_eq!(hits.load(Ordering::Relaxed), 2);
        }
    }
}
