use serde::{Deserialize, Serialize};

/// Kernel functions for the SVM solvers.
///
/// The grid searches in the paper (§4.1.2) sweep the RBF `gamma`; the
/// 1-vs-Set machine is linear by construction (its slab geometry only makes
/// sense in the primal feature space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x, y) = ⟨x, y⟩`.
    Linear,
    /// `K(x, y) = exp(−γ ‖x − y‖²)`.
    Rbf {
        /// Bandwidth γ (> 0).
        gamma: f64,
    },
    /// `K(x, y) = (γ ⟨x, y⟩ + c₀)^degree`.
    Poly {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
        /// Polynomial degree (≥ 1).
        degree: u32,
    },
}

impl Kernel {
    /// Evaluate the kernel on a pair of points.
    ///
    /// # Panics
    /// Panics on dimension mismatch (debug builds assert inside `dot`).
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => osr_linalg::vector::dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * osr_linalg::vector::dist_sq(a, b)).exp(),
            Kernel::Poly { gamma, coef0, degree } => {
                (gamma * osr_linalg::vector::dot(a, b) + coef0).powi(degree as i32)
            }
        }
    }

    /// A reasonable default RBF bandwidth for `dim`-dimensional data
    /// (LIBSVM's `1 / num_features` heuristic — only sensible when features
    /// are scaled to unit-ish variance; prefer
    /// [`Kernel::rbf_for_data`] when the data is at hand).
    pub fn default_rbf(dim: usize) -> Self {
        Kernel::Rbf { gamma: 1.0 / dim.max(1) as f64 }
    }

    /// Data-driven RBF bandwidth: `γ = 1 / (d · mean per-dimension
    /// variance)`, LIBSVM's `-g 1/(num_features * variance)` "scale"
    /// heuristic. This makes the expected within-cloud squared distance map
    /// to an O(1) kernel exponent regardless of feature scaling.
    pub fn rbf_for_data(points: &[&[f64]]) -> Self {
        let d = points.first().map_or(0, |p| p.len());
        if d == 0 || points.len() < 2 {
            return Self::default_rbf(d);
        }
        let n = points.len() as f64;
        let mut mean = vec![0.0; d];
        for p in points {
            for (m, &x) in mean.iter_mut().zip(*p) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var_sum = 0.0;
        for p in points {
            for (m, &x) in mean.iter().zip(*p) {
                var_sum += (x - m) * (x - m);
            }
        }
        let mean_var = var_sum / (n * d as f64);
        if mean_var <= 0.0 || !mean_var.is_finite() {
            return Self::default_rbf(d);
        }
        Kernel::Rbf { gamma: 1.0 / (d as f64 * mean_var) }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> crate::Result<()> {
        match *self {
            Kernel::Linear => Ok(()),
            Kernel::Rbf { gamma } => {
                if gamma > 0.0 && gamma.is_finite() {
                    Ok(())
                } else {
                    Err(crate::SvmError::InvalidParameter(format!(
                        "RBF gamma must be positive, got {gamma}"
                    )))
                }
            }
            Kernel::Poly { degree, gamma, .. } => {
                if degree == 0 {
                    Err(crate::SvmError::InvalidParameter("poly degree must be ≥ 1".into()))
                } else if !(gamma.is_finite() && gamma > 0.0) {
                    Err(crate::SvmError::InvalidParameter(format!(
                        "poly gamma must be positive, got {gamma}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, -1.0]), 1.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        let near = k.eval(&[0.0, 0.0], &[0.5, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[3.0, 0.0]);
        assert!(near > far && far > 0.0);
        // exp(-0.5 * 0.25)
        assert!((near - (-0.125f64).exp()).abs() < 1e-14);
    }

    #[test]
    fn poly_matches_closed_form() {
        let k = Kernel::Poly { gamma: 2.0, coef0: 1.0, degree: 3 };
        // (2*1 + 1)^3 = 27 with <x,y> = 1
        assert_eq!(k.eval(&[1.0, 0.0], &[1.0, 5.0]), 27.0);
    }

    #[test]
    fn kernels_are_symmetric() {
        let a = [0.3, -1.2, 2.0];
        let b = [1.1, 0.0, -0.7];
        for k in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.7 },
            Kernel::Poly { gamma: 0.5, coef0: 1.0, degree: 2 },
        ] {
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-14);
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Kernel::Rbf { gamma: 0.0 }.validate().is_err());
        assert!(Kernel::Rbf { gamma: f64::NAN }.validate().is_err());
        assert!(Kernel::Poly { gamma: 1.0, coef0: 0.0, degree: 0 }.validate().is_err());
        assert!(Kernel::Linear.validate().is_ok());
        assert!(Kernel::default_rbf(16).validate().is_ok());
    }

    #[test]
    fn default_rbf_uses_dimension_heuristic() {
        match Kernel::default_rbf(25) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.04).abs() < 1e-15),
            _ => unreachable!(),
        }
    }
}
