//! Binary C-SVC trained with Sequential Minimal Optimization.
//!
//! Solves the standard dual
//!
//! ```text
//! min_α  ½ αᵀQα − eᵀα    s.t.  yᵀα = 0,  0 ≤ α_i ≤ C,   Q_ij = y_i y_j K(x_i, x_j)
//! ```
//!
//! with maximal-violating-pair working-set selection (LIBSVM's WSS-1) and
//! the analytic two-variable update. The kernel matrix is cached densely
//! when it fits in a configurable budget and recomputed on the fly
//! otherwise, so training never needs more than O(n²) memory and degrades
//! gracefully on large problems.

use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::{Result, SvmError};

/// Hyperparameters of the C-SVC solver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty C (> 0). The paper grid-searches
    /// `C ∈ {2⁻⁵, …, 2⁵}`.
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT violation tolerance for the stopping rule (LIBSVM default 1e-3).
    pub tol: f64,
    /// Hard cap on SMO iterations (safety net; reaching it still yields a
    /// usable model).
    pub max_iter: usize,
    /// Maximum entries of the dense kernel cache (`n² ≤ cache_limit` uses a
    /// full cache).
    pub cache_limit: usize,
}

impl SvmParams {
    /// Defaults: `C = 1`, RBF with the 1/d heuristic, tol 1e-3.
    pub fn new(c: f64, kernel: Kernel) -> Self {
        Self { c, kernel, tol: 1e-3, max_iter: 0, cache_limit: 40_000_000 }
    }

    fn effective_max_iter(&self, n: usize) -> usize {
        if self.max_iter > 0 {
            self.max_iter
        } else {
            (200 * n).max(20_000)
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c.is_finite()) {
            return Err(SvmError::InvalidParameter(format!("C must be positive, got {}", self.c)));
        }
        if !(self.tol > 0.0) {
            return Err(SvmError::InvalidParameter(format!("tol must be positive, got {}", self.tol)));
        }
        self.kernel.validate()
    }
}

/// Dense or on-the-fly kernel matrix access.
enum KernelCache<'a> {
    Full(Vec<f64>, usize),
    Lazy(&'a [&'a [f64]], Kernel),
}

impl KernelCache<'_> {
    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            KernelCache::Full(m, n) => m[i * n + j],
            KernelCache::Lazy(pts, k) => k.eval(pts[i], pts[j]),
        }
    }
}

/// A trained binary C-SVC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinarySvm {
    kernel: Kernel,
    /// Support vectors (training points with `α_i > 0`).
    support: Vec<Vec<f64>>,
    /// Dual coefficients `α_i y_i`, parallel to `support`.
    coeffs: Vec<f64>,
    /// Bias term.
    b: f64,
}

impl BinarySvm {
    /// Train on labeled points (`labels[i]` is `+1`/`-1` via `bool`:
    /// `true` ⇒ positive class).
    ///
    /// # Errors
    /// Fails when the training set is empty, single-class, or the
    /// parameters are malformed.
    pub fn train(points: &[&[f64]], positive: &[bool], params: &SvmParams) -> Result<Self> {
        params.validate()?;
        let n = points.len();
        if n == 0 {
            return Err(SvmError::DegenerateTrainingSet("no training points".into()));
        }
        if positive.len() != n {
            return Err(SvmError::InvalidParameter(format!(
                "{} labels for {} points",
                positive.len(),
                n
            )));
        }
        let n_pos = positive.iter().filter(|&&p| p).count();
        if n_pos == 0 || n_pos == n {
            return Err(SvmError::DegenerateTrainingSet(format!(
                "need both classes, got {n_pos} positives of {n}"
            )));
        }

        let y: Vec<f64> = positive.iter().map(|&p| if p { 1.0 } else { -1.0 }).collect();
        let cache = if n.saturating_mul(n) <= params.cache_limit {
            let mut m = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..=i {
                    let v = params.kernel.eval(points[i], points[j]);
                    m[i * n + j] = v;
                    m[j * n + i] = v;
                }
            }
            KernelCache::Full(m, n)
        } else {
            KernelCache::Lazy(points, params.kernel)
        };

        let c = params.c;
        let mut alpha = vec![0.0f64; n];
        // With α = 0 the gradient of ½αᵀQα − eᵀα is −e.
        let mut grad = vec![-1.0f64; n];

        let max_iter = params.effective_max_iter(n);
        for _ in 0..max_iter {
            // Maximal violating pair.
            let mut i_best: Option<(usize, f64)> = None; // argmax −y G over I_up
            let mut j_best: Option<(usize, f64)> = None; // argmin −y G over I_low
            for t in 0..n {
                let v = -y[t] * grad[t];
                let in_up = (y[t] > 0.0 && alpha[t] < c) || (y[t] < 0.0 && alpha[t] > 0.0);
                let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c);
                if in_up && i_best.is_none_or(|(_, bv)| v > bv) {
                    i_best = Some((t, v));
                }
                if in_low && j_best.is_none_or(|(_, bv)| v < bv) {
                    j_best = Some((t, v));
                }
            }
            let (Some((i, m_up)), Some((j, m_low))) = (i_best, j_best) else { break };
            if m_up - m_low <= params.tol {
                break;
            }

            // Two-variable analytic step along d: α_i += y_i d, α_j −= y_j d.
            let kii = cache.get(i, i);
            let kjj = cache.get(j, j);
            let kij = cache.get(i, j);
            let eta = (kii + kjj - 2.0 * kij).max(1e-12);
            let mut d = (y[j] * grad[j] - y[i] * grad[i]) / eta;

            // Box constraints on both coordinates.
            let (lo_i, hi_i) = if y[i] > 0.0 { (-alpha[i], c - alpha[i]) } else { (alpha[i] - c, alpha[i]) };
            let (lo_j, hi_j) = if y[j] > 0.0 { (alpha[j] - c, alpha[j]) } else { (-alpha[j], c - alpha[j]) };
            let lo = lo_i.max(lo_j);
            let hi = hi_i.min(hi_j);
            d = d.clamp(lo, hi);
            if d == 0.0 {
                break; // numerically stuck; the violation is round-off level
            }

            let dai = y[i] * d;
            let daj = -y[j] * d;
            alpha[i] += dai;
            alpha[j] += daj;
            // Gradient update: G_t += Q_ti Δα_i + Q_tj Δα_j.
            for t in 0..n {
                grad[t] += y[t] * y[i] * cache.get(t, i) * dai
                    + y[t] * y[j] * cache.get(t, j) * daj;
            }
        }

        // Bias: mean of −y_t G_t over free support vectors, falling back to
        // the midpoint of the bound interval.
        let free: Vec<usize> = (0..n)
            .filter(|&t| alpha[t] > 1e-8 * c && alpha[t] < c * (1.0 - 1e-8))
            .collect();
        let b = if free.is_empty() {
            let mut up = f64::NEG_INFINITY;
            let mut low = f64::INFINITY;
            for t in 0..n {
                let v = -y[t] * grad[t];
                let in_up = (y[t] > 0.0 && alpha[t] < c) || (y[t] < 0.0 && alpha[t] > 0.0);
                let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c);
                if in_up {
                    up = up.max(v);
                }
                if in_low {
                    low = low.min(v);
                }
            }
            (up + low) / 2.0
        } else {
            free.iter().map(|&t| -y[t] * grad[t]).sum::<f64>() / free.len() as f64
        };

        let mut support = Vec::new();
        let mut coeffs = Vec::new();
        for t in 0..n {
            if alpha[t] > 1e-10 {
                support.push(points[t].to_vec());
                coeffs.push(alpha[t] * y[t]);
            }
        }
        Ok(Self { kernel: params.kernel, support, coeffs, b })
    }

    /// Raw decision value `f(x) = Σ α_i y_i K(x_i, x) + b`; positive means
    /// the positive class.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        let mut acc = self.b;
        for (sv, &c) in self.support.iter().zip(&self.coeffs) {
            acc += c * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision_value(x) > 0.0
    }

    /// Number of support vectors.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// Bias term.
    pub fn bias(&self) -> f64 {
        self.b
    }

    /// For linear kernels, the explicit primal weight vector `w = Σ α_i y_i x_i`
    /// (None for non-linear kernels). The 1-vs-Set machine needs this to
    /// reason about its two parallel hyperplanes in score space.
    pub fn linear_weights(&self) -> Option<Vec<f64>> {
        if self.kernel != Kernel::Linear {
            return None;
        }
        let d = self.support.first().map_or(0, Vec::len);
        let mut w = vec![0.0; d];
        for (sv, &c) in self.support.iter().zip(&self.coeffs) {
            osr_linalg::vector::axpy(c, sv, &mut w);
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_params(c: f64) -> SvmParams {
        SvmParams::new(c, Kernel::Linear)
    }

    /// Two well-separated Gaussian blobs in 2-d.
    fn blobs(rng: &mut StdRng, n_per: usize, gap: f64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut pts = Vec::new();
        let mut lab = Vec::new();
        for i in 0..2 * n_per {
            let pos = i % 2 == 0;
            let cx = if pos { gap / 2.0 } else { -gap / 2.0 };
            pts.push(vec![
                cx + 0.5 * sampling::standard_normal(rng),
                0.5 * sampling::standard_normal(rng),
            ]);
            lab.push(pos);
        }
        (pts, lab)
    }

    #[test]
    fn separates_two_points() {
        let pts = [vec![1.0, 0.0], vec![-1.0, 0.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &[true, false], &linear_params(10.0)).unwrap();
        assert!(svm.predict(&[2.0, 0.0]));
        assert!(!svm.predict(&[-2.0, 0.0]));
        // Canonical margins: f(±1, 0) = ±1.
        assert!((svm.decision_value(&[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((svm.decision_value(&[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn classifies_separable_blobs_perfectly() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pts, lab) = blobs(&mut rng, 100, 8.0);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &lab, &linear_params(1.0)).unwrap();
        let correct = refs.iter().zip(&lab).filter(|(p, &l)| svm.predict(p) == l).count();
        assert_eq!(correct, 200);
    }

    #[test]
    fn kkt_conditions_hold_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pts, lab) = blobs(&mut rng, 60, 6.0);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &lab, &linear_params(1.0)).unwrap();
        // Every training point must satisfy y f(x) ≥ 1 − tol-ish slack
        // unless it is a (bounded) support vector.
        for (p, &l) in refs.iter().zip(&lab) {
            let y = if l { 1.0 } else { -1.0 };
            let margin = y * svm.decision_value(p);
            assert!(margin > -0.01, "margin violation: {margin}");
        }
        // Separable blobs need few support vectors.
        assert!(svm.n_support() < 30, "too many SVs: {}", svm.n_support());
    }

    #[test]
    fn rbf_solves_xor() {
        let pts = [
            vec![1.0, 1.0],
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![-1.0, 1.0],
        ];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let lab = [true, true, false, false];
        let params = SvmParams::new(10.0, Kernel::Rbf { gamma: 0.7 });
        let svm = BinarySvm::train(&refs, &lab, &params).unwrap();
        for (p, &l) in refs.iter().zip(&lab) {
            assert_eq!(svm.predict(p), l, "XOR point {p:?} misclassified");
        }
    }

    #[test]
    fn linear_weights_reproduce_decision_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let (pts, lab) = blobs(&mut rng, 40, 4.0);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &lab, &linear_params(1.0)).unwrap();
        let w = svm.linear_weights().unwrap();
        for p in refs.iter().take(20) {
            let via_w = osr_linalg::vector::dot(&w, p) + svm.bias();
            assert!((via_w - svm.decision_value(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn rbf_has_no_linear_weights() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let params = SvmParams::new(1.0, Kernel::Rbf { gamma: 1.0 });
        let svm = BinarySvm::train(&refs, &[true, false], &params).unwrap();
        assert!(svm.linear_weights().is_none());
    }

    #[test]
    fn small_c_allows_margin_violations_on_noisy_data() {
        let mut rng = StdRng::seed_from_u64(4);
        // Overlapping blobs.
        let (pts, lab) = blobs(&mut rng, 100, 1.0);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &lab, &linear_params(0.01)).unwrap();
        // Still does better than chance.
        let correct = refs.iter().zip(&lab).filter(|(p, &l)| svm.predict(p) == l).count();
        assert!(correct > 120, "accuracy too low: {correct}/200");
    }

    #[test]
    fn rejects_single_class_training() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let err = BinarySvm::train(&refs, &[true, true], &linear_params(1.0)).unwrap_err();
        assert!(matches!(err, SvmError::DegenerateTrainingSet(_)));
    }

    #[test]
    fn rejects_empty_and_mismatched_inputs() {
        let err = BinarySvm::train(&[], &[], &linear_params(1.0)).unwrap_err();
        assert!(matches!(err, SvmError::DegenerateTrainingSet(_)));
        let pts = [vec![0.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        assert!(BinarySvm::train(&refs, &[true, false], &linear_params(1.0)).is_err());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let lab = [true, false];
        assert!(BinarySvm::train(&refs, &lab, &linear_params(-1.0)).is_err());
        let bad = SvmParams::new(1.0, Kernel::Rbf { gamma: -2.0 });
        assert!(BinarySvm::train(&refs, &lab, &bad).is_err());
    }

    #[test]
    fn lazy_cache_matches_full_cache() {
        let mut rng = StdRng::seed_from_u64(5);
        let (pts, lab) = blobs(&mut rng, 30, 5.0);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let mut full = linear_params(1.0);
        full.cache_limit = usize::MAX;
        let mut lazy = linear_params(1.0);
        lazy.cache_limit = 0;
        let a = BinarySvm::train(&refs, &lab, &full).unwrap();
        let b = BinarySvm::train(&refs, &lab, &lazy).unwrap();
        for p in refs.iter().take(10) {
            assert!((a.decision_value(p) - b.decision_value(p)).abs() < 1e-9);
        }
    }
}
