//! One-vs-rest multiclass wrapper.
//!
//! W-SVM and P_I-SVM both "adopt the one-vs-rest approach" (§4.1.2): one
//! binary C-SVC per class with that class positive and everything else
//! negative. This wrapper trains the family and exposes the vector of raw
//! decision values, which the baselines feed into their EVT calibrators.

use serde::{Deserialize, Serialize};

use crate::smo::{BinarySvm, SvmParams};
use crate::{Result, SvmError};

/// One-vs-rest ensemble of binary C-SVCs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneVsRest {
    machines: Vec<BinarySvm>,
}

impl OneVsRest {
    /// Train one machine per class label in `0..n_classes`.
    ///
    /// # Errors
    /// Fails when any class is empty (its one-vs-rest problem would be
    /// single-class) or training data is malformed.
    pub fn train(
        points: &[&[f64]],
        labels: &[usize],
        n_classes: usize,
        params: &SvmParams,
    ) -> Result<Self> {
        if points.len() != labels.len() {
            return Err(SvmError::InvalidParameter(format!(
                "{} labels for {} points",
                labels.len(),
                points.len()
            )));
        }
        if n_classes < 2 {
            return Err(SvmError::DegenerateTrainingSet(format!(
                "one-vs-rest needs ≥ 2 classes, got {n_classes}"
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= n_classes) {
            return Err(SvmError::InvalidParameter(format!(
                "label {bad} out of range for {n_classes} classes"
            )));
        }
        let machines = (0..n_classes)
            .map(|class| {
                let positive: Vec<bool> = labels.iter().map(|&l| l == class).collect();
                BinarySvm::train(points, &positive, params)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { machines })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.machines.len()
    }

    /// Raw decision value of the machine for `class`.
    pub fn decision_value(&self, class: usize, x: &[f64]) -> f64 {
        self.machines[class].decision_value(x)
    }

    /// All per-class decision values.
    pub fn decision_values(&self, x: &[f64]) -> Vec<f64> {
        self.machines.iter().map(|m| m.decision_value(x)).collect()
    }

    /// Closed-set prediction: class with the largest decision value.
    pub fn predict_closed(&self, x: &[f64]) -> usize {
        osr_linalg::vector::argmax(&self.decision_values(x)).expect("≥2 classes by construction")
    }

    /// Borrow the underlying binary machine for `class`.
    pub fn machine(&self, class: usize) -> &BinarySvm {
        &self.machines[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs(rng: &mut StdRng, n_per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 6.0], [-5.0, -3.0], [5.0, -3.0]];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per {
                pts.push(vec![
                    center[0] + 0.8 * sampling::standard_normal(rng),
                    center[1] + 0.8 * sampling::standard_normal(rng),
                ]);
                labels.push(c);
            }
        }
        (pts, labels)
    }

    #[test]
    fn classifies_three_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pts, labels) = three_blobs(&mut rng, 60);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let params = SvmParams::new(1.0, Kernel::Rbf { gamma: 0.5 });
        let ovr = OneVsRest::train(&refs, &labels, 3, &params).unwrap();
        assert_eq!(ovr.n_classes(), 3);
        let correct = refs.iter().zip(&labels).filter(|(p, &l)| ovr.predict_closed(p) == l).count();
        assert!(correct as f64 / 180.0 > 0.98, "accuracy {correct}/180");
    }

    #[test]
    fn own_class_machine_scores_highest_at_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pts, labels) = three_blobs(&mut rng, 50);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let params = SvmParams::new(1.0, Kernel::Rbf { gamma: 0.5 });
        let ovr = OneVsRest::train(&refs, &labels, 3, &params).unwrap();
        let dv = ovr.decision_values(&[0.0, 6.0]);
        assert_eq!(osr_linalg::vector::argmax(&dv), Some(0));
        assert!(dv[0] > 0.0, "own machine should be positive at its center");
        assert!(dv[1] < 0.0 && dv[2] < 0.0, "other machines negative: {dv:?}");
    }

    #[test]
    fn rejects_missing_class() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        // Class 2 exists nominally but has no samples.
        let err = OneVsRest::train(&refs, &[0, 1], 3, &SvmParams::new(1.0, Kernel::Linear))
            .unwrap_err();
        assert!(matches!(err, SvmError::DegenerateTrainingSet(_)));
    }

    #[test]
    fn rejects_out_of_range_labels_and_mismatch() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let params = SvmParams::new(1.0, Kernel::Linear);
        assert!(OneVsRest::train(&refs, &[0, 5], 2, &params).is_err());
        assert!(OneVsRest::train(&refs, &[0], 2, &params).is_err());
        assert!(OneVsRest::train(&refs, &[0, 1], 1, &params).is_err());
    }
}
