//! Schölkopf's one-class ν-SVM — the CAP-model conditioner of W-SVM and the
//! whole of W-OSVM.
//!
//! Dual problem:
//!
//! ```text
//! min_α ½ αᵀKα    s.t.  0 ≤ α_i ≤ 1/(νn),  Σ α_i = 1
//! ```
//!
//! solved with the same maximal-violating-pair SMO as the binary machine
//! (the equality constraint here is `Σα = const`, so the two-variable step
//! moves mass between a pair of coordinates). The decision function is
//! `f(x) = Σ α_i K(x_i, x) − ρ`, positive inside the estimated support of
//! the training distribution; `ν` upper-bounds the fraction of training
//! outliers.

use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::{Result, SvmError};

/// Hyperparameters of the one-class ν-SVM.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OneClassParams {
    /// Outlier fraction bound ν ∈ (0, 1).
    pub nu: f64,
    /// Kernel (RBF in all the paper's uses).
    pub kernel: Kernel,
    /// KKT tolerance.
    pub tol: f64,
    /// Iteration cap (0 ⇒ automatic).
    pub max_iter: usize,
}

impl OneClassParams {
    /// Defaults: `tol = 1e-4`, automatic iteration cap.
    pub fn new(nu: f64, kernel: Kernel) -> Self {
        Self { nu, kernel, tol: 1e-4, max_iter: 0 }
    }
}

/// A trained one-class ν-SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneClassSvm {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    rho: f64,
}

impl OneClassSvm {
    /// Train on unlabeled points of a single class.
    ///
    /// # Errors
    /// Fails on an empty training set or `ν ∉ (0, 1)`.
    pub fn train(points: &[&[f64]], params: &OneClassParams) -> Result<Self> {
        let n = points.len();
        if n == 0 {
            return Err(SvmError::DegenerateTrainingSet("no training points".into()));
        }
        if !(params.nu > 0.0 && params.nu < 1.0) {
            return Err(SvmError::InvalidParameter(format!(
                "nu must be in (0,1), got {}",
                params.nu
            )));
        }
        params.kernel.validate()?;

        let c = 1.0 / (params.nu * n as f64);
        // LIBSVM initialization: the first ⌊νn⌋ coordinates at the cap, one
        // fractional coordinate, rest zero ⇒ Σα = 1 from the start.
        let mut alpha = vec![0.0f64; n];
        let full = (params.nu * n as f64).floor() as usize;
        for a in alpha.iter_mut().take(full.min(n)) {
            *a = c;
        }
        if full < n {
            alpha[full] = 1.0 - c * full as f64;
        }

        // Dense kernel cache (one-class problems here are small: a single
        // class's fitting data).
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = params.kernel.eval(points[i], points[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        // Gradient of ½αᵀKα is Kα.
        let mut grad = vec![0.0f64; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += k[i * n + j] * alpha[j];
            }
            grad[i] = acc;
        }

        let max_iter = if params.max_iter > 0 { params.max_iter } else { (200 * n).max(20_000) };
        for _ in 0..max_iter {
            // Move mass from the coordinate with the largest gradient (among
            // α > 0) to the one with the smallest (among α < C).
            let mut i_best: Option<(usize, f64)> = None; // min grad, α < C
            let mut j_best: Option<(usize, f64)> = None; // max grad, α > 0
            for t in 0..n {
                if alpha[t] < c && i_best.is_none_or(|(_, g)| grad[t] < g) {
                    i_best = Some((t, grad[t]));
                }
                if alpha[t] > 0.0 && j_best.is_none_or(|(_, g)| grad[t] > g) {
                    j_best = Some((t, grad[t]));
                }
            }
            let (Some((i, gi)), Some((j, gj))) = (i_best, j_best) else { break };
            if gj - gi <= params.tol || i == j {
                break;
            }
            let eta = (k[i * n + i] + k[j * n + j] - 2.0 * k[i * n + j]).max(1e-12);
            let mut d = (gj - gi) / eta;
            d = d.min(c - alpha[i]).min(alpha[j]);
            if d <= 0.0 {
                break;
            }
            alpha[i] += d;
            alpha[j] -= d;
            for t in 0..n {
                grad[t] += d * (k[t * n + i] - k[t * n + j]);
            }
        }

        // ρ: average of Kα over free support vectors (0 < α < C).
        let free: Vec<usize> =
            (0..n).filter(|&t| alpha[t] > 1e-10 && alpha[t] < c * (1.0 - 1e-8)).collect();
        let rho = if free.is_empty() {
            // Fall back to the midpoint between bound groups.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for t in 0..n {
                if alpha[t] >= c * (1.0 - 1e-8) {
                    hi = hi.max(grad[t]);
                } else {
                    lo = lo.min(grad[t]);
                }
            }
            if hi.is_finite() && lo.is_finite() {
                (hi + lo) / 2.0
            } else {
                grad.iter().sum::<f64>() / n as f64
            }
        } else {
            free.iter().map(|&t| grad[t]).sum::<f64>() / free.len() as f64
        };

        let mut support = Vec::new();
        let mut alphas = Vec::new();
        for t in 0..n {
            if alpha[t] > 1e-10 {
                support.push(points[t].to_vec());
                alphas.push(alpha[t]);
            }
        }
        Ok(Self { kernel: params.kernel, support, alphas, rho })
    }

    /// Decision value `f(x) = Σ α_i K(x_i, x) − ρ`; positive inside the
    /// estimated support region.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        let mut acc = -self.rho;
        for (sv, &a) in self.support.iter().zip(&self.alphas) {
            acc += a * self.kernel.eval(sv, x);
        }
        acc
    }

    /// True when `x` falls inside the estimated support.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.decision_value(x) > 0.0
    }

    /// Number of support vectors.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cloud(rng: &mut StdRng, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    sampling::standard_normal(rng) * 0.7,
                    sampling::standard_normal(rng) * 0.7,
                ]
            })
            .collect()
    }

    fn params(nu: f64) -> OneClassParams {
        OneClassParams::new(nu, Kernel::Rbf { gamma: 0.5 })
    }

    #[test]
    fn accepts_bulk_rejects_far_outliers() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = cloud(&mut rng, 300);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let oc = OneClassSvm::train(&refs, &params(0.1)).unwrap();
        assert!(oc.contains(&[0.0, 0.0]), "center of mass must be inside");
        assert!(!oc.contains(&[10.0, 10.0]), "far outlier must be outside");
        assert!(!oc.contains(&[-8.0, 6.0]));
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = cloud(&mut rng, 400);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        for nu in [0.05, 0.2, 0.5] {
            let oc = OneClassSvm::train(&refs, &params(nu)).unwrap();
            let rejected = refs.iter().filter(|p| !oc.contains(p)).count() as f64 / 400.0;
            // ν is an upper bound on the training rejection fraction (and
            // asymptotically equal); allow generous slack.
            assert!(
                rejected <= nu + 0.08,
                "nu = {nu}: rejected {rejected} of training data"
            );
        }
    }

    #[test]
    fn larger_nu_shrinks_the_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = cloud(&mut rng, 300);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let tight = OneClassSvm::train(&refs, &params(0.5)).unwrap();
        let loose = OneClassSvm::train(&refs, &params(0.05)).unwrap();
        let tight_inside = refs.iter().filter(|p| tight.contains(p)).count();
        let loose_inside = refs.iter().filter(|p| loose.contains(p)).count();
        assert!(
            loose_inside > tight_inside,
            "nu=0.05 keeps {loose_inside}, nu=0.5 keeps {tight_inside}"
        );
    }

    #[test]
    fn decision_decreases_with_distance_from_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = cloud(&mut rng, 200);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let oc = OneClassSvm::train(&refs, &params(0.1)).unwrap();
        let v0 = oc.decision_value(&[0.0, 0.0]);
        let v2 = oc.decision_value(&[2.0, 0.0]);
        let v5 = oc.decision_value(&[5.0, 0.0]);
        assert!(v0 > v2 && v2 > v5, "decision must decay with distance: {v0} {v2} {v5}");
    }

    #[test]
    fn rejects_invalid_inputs() {
        let pts = [vec![0.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        assert!(OneClassSvm::train(&[], &params(0.1)).is_err());
        assert!(OneClassSvm::train(&refs, &params(0.0)).is_err());
        assert!(OneClassSvm::train(&refs, &params(1.0)).is_err());
    }

    #[test]
    fn single_point_support() {
        let pts = [vec![1.0, 2.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let oc = OneClassSvm::train(&refs, &params(0.5)).unwrap();
        // The lone training point is the most inside point there is.
        assert!(oc.decision_value(&[1.0, 2.0]) >= oc.decision_value(&[4.0, 4.0]));
    }
}
