//! Support vector machines for the `hdp-osr` baselines.
//!
//! The paper's comparison methods (1-vs-Set, W-OSVM, W-SVM, P_I-SVM) are all
//! built on LIBSVM; this crate re-implements the two solvers they need from
//! the primal sources:
//!
//! * [`BinarySvm`] — C-SVC trained with Sequential Minimal Optimization
//!   using maximal-violating-pair working-set selection (LIBSVM's WSS-1),
//! * [`OneClassSvm`] — Schölkopf's one-class ν-SVM, same SMO core with the
//!   `Σα = 1` equality constraint,
//! * [`Kernel`] — linear, RBF and polynomial kernels,
//! * [`OneVsRest`] — the one-vs-rest multiclass wrapper W-SVM and P_I-SVM
//!   use, exposing raw per-class decision values for EVT calibration.
//!
//! Decision values are exact dual evaluations (no probability squashing);
//! the open-set baselines apply their own Weibull calibration downstream.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod kernel;
mod multiclass;
mod oneclass;
mod smo;

pub use kernel::Kernel;
pub use multiclass::OneVsRest;
pub use oneclass::{OneClassParams, OneClassSvm};
pub use smo::{BinarySvm, SvmParams};

/// Errors produced while training SVMs.
#[derive(Debug, Clone, PartialEq)]
pub enum SvmError {
    /// Training data was empty or single-class where two classes are needed.
    DegenerateTrainingSet(String),
    /// A parameter was out of range (message explains).
    InvalidParameter(String),
}

impl std::fmt::Display for SvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DegenerateTrainingSet(msg) => write!(f, "degenerate training set: {msg}"),
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SvmError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SvmError>;
