//! Property-based tests for the SMO solvers: KKT-style optimality
//! conditions, geometric invariances, and decision-function structure on
//! randomly generated separable problems.

use osr_svm::{BinarySvm, Kernel, OneClassParams, OneClassSvm, SvmParams};
use proptest::prelude::*;

/// Deterministic pseudo-random blob pair: two Gaussian-ish clusters with a
/// controlled gap, derived from a seed (no RNG dependency in this test).
fn blob_pair(seed: u64, n_per: usize, gap: f64, dim: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut pts = Vec::new();
    let mut labels = Vec::new();
    for i in 0..2 * n_per {
        let pos = i % 2 == 0;
        let mut p: Vec<f64> = (0..dim).map(|_| next() * 1.6).collect();
        p[0] += if pos { gap / 2.0 } else { -gap / 2.0 };
        pts.push(p);
        labels.push(pos);
    }
    (pts, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn separable_problems_are_solved_exactly(
        seed in 0u64..500,
        n_per in 5usize..40,
        dim in 2usize..6,
    ) {
        let (pts, labels) = blob_pair(seed, n_per, 6.0, dim);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &labels, &SvmParams::new(10.0, Kernel::Linear)).unwrap();
        for (p, &l) in refs.iter().zip(&labels) {
            prop_assert_eq!(svm.predict(p), l, "misclassified training point");
        }
    }

    #[test]
    fn margins_respect_kkt_bounds(
        seed in 0u64..500,
        n_per in 8usize..30,
    ) {
        let (pts, labels) = blob_pair(seed, n_per, 5.0, 3);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let svm = BinarySvm::train(&refs, &labels, &SvmParams::new(1.0, Kernel::Linear)).unwrap();
        // On separable data with moderate C the functional margin of every
        // training point is ≥ 1 − tolerance slack.
        for (p, &l) in refs.iter().zip(&labels) {
            let y = if l { 1.0 } else { -1.0 };
            prop_assert!(y * svm.decision_value(p) > 0.9, "margin violated");
        }
        // Support vectors exist but don't cover everything on a separable
        // problem with a wide gap.
        prop_assert!(svm.n_support() >= 2);
        prop_assert!(svm.n_support() < 2 * n_per, "every point became a support vector");
    }

    #[test]
    fn decision_function_is_translation_invariant_for_rbf(
        seed in 0u64..200,
        shift in -5.0..5.0f64,
    ) {
        let (pts, labels) = blob_pair(seed, 12, 4.0, 2);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let params = SvmParams::new(2.0, Kernel::Rbf { gamma: 0.4 });
        let svm = BinarySvm::train(&refs, &labels, &params).unwrap();

        let shifted: Vec<Vec<f64>> =
            pts.iter().map(|p| p.iter().map(|x| x + shift).collect()).collect();
        let srefs: Vec<&[f64]> = shifted.iter().map(Vec::as_slice).collect();
        let svm2 = BinarySvm::train(&srefs, &labels, &params).unwrap();

        // RBF kernels only see pairwise distances, so the decision value at
        // corresponding points must match up to the SMO stopping tolerance
        // (1e-3 on the KKT violation).
        for (p, q) in refs.iter().zip(&srefs).take(10) {
            let a = svm.decision_value(p);
            let b = svm2.decision_value(q);
            prop_assert!((a - b).abs() < 5e-3, "translation changed decision: {a} vs {b}");
        }
    }

    #[test]
    fn label_flip_negates_linear_decision(
        seed in 0u64..200,
    ) {
        let (pts, labels) = blob_pair(seed, 15, 5.0, 3);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let params = SvmParams::new(1.0, Kernel::Linear);
        let svm = BinarySvm::train(&refs, &labels, &params).unwrap();
        let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let svm2 = BinarySvm::train(&refs, &flipped, &params).unwrap();
        for p in refs.iter().take(10) {
            let a = svm.decision_value(p);
            let b = svm2.decision_value(p);
            prop_assert!((a + b).abs() < 1e-6, "flip should negate: {a} vs {b}");
        }
    }

    #[test]
    fn one_class_respects_nu_bound(
        seed in 0u64..200,
        nu in 0.05f64..0.5,
    ) {
        let (pts, _) = blob_pair(seed, 60, 0.0, 3);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let oc = OneClassSvm::train(&refs, &OneClassParams::new(nu, Kernel::Rbf { gamma: 0.5 }))
            .unwrap();
        let rejected = refs.iter().filter(|p| !oc.contains(p)).count();
        // ν upper-bounds the fraction of training outliers (+ slack for the
        // finite-sample effect).
        prop_assert!(
            (rejected as f64) <= nu * refs.len() as f64 + 6.0,
            "nu = {nu} but rejected {rejected} of {}",
            refs.len()
        );
    }

    #[test]
    fn one_class_decision_decays_outward(
        seed in 0u64..200,
    ) {
        let (pts, _) = blob_pair(seed, 60, 0.0, 2);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let oc = OneClassSvm::train(&refs, &OneClassParams::new(0.1, Kernel::Rbf { gamma: 0.5 }))
            .unwrap();
        let center = oc.decision_value(&[0.0, 0.0]);
        let far = oc.decision_value(&[30.0, -20.0]);
        prop_assert!(center > far, "decision should decay outward: {center} vs {far}");
    }
}
