//! Class-conditional Gaussian-mixture generators.
//!
//! Each synthetic class is a mixture of a few Gaussian *subclusters* — the
//! structure the paper's HDP-OSR explicitly models ("subclasses", Tables
//! 1–2: e.g. USPS digit '3' spreads over 7 subclasses while '2' is almost
//! unimodal). Components use a diagonal-plus-low-rank covariance
//! `Σ = D + Σ_r u_r u_rᵀ`, which keeps sampling O(d) per point even for the
//! 256-dimensional USPS replica while still producing correlated,
//! non-axis-aligned clusters.

use rand::Rng;
use serde::{Deserialize, Serialize};

use osr_stats::sampling;

/// One Gaussian subcluster with diagonal-plus-low-rank covariance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Component mean.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviations (the diagonal part `D^{1/2}`).
    pub diag_std: Vec<f64>,
    /// Low-rank correlation factors: each `u_r` adds `u_r u_rᵀ` to the
    /// covariance (a shared scalar normal is injected along `u_r`).
    pub factors: Vec<Vec<f64>>,
}

impl ComponentSpec {
    /// Draw one sample: `mean + D^{1/2} z + Σ_r u_r g_r`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut x = self.mean.clone();
        for (xi, sd) in x.iter_mut().zip(&self.diag_std) {
            *xi += sd * sampling::standard_normal(rng);
        }
        for u in &self.factors {
            let g = sampling::standard_normal(rng);
            for (xi, ui) in x.iter_mut().zip(u) {
                *xi += g * ui;
            }
        }
        x
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

/// A full class: weighted mixture of subclusters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GmmClassSpec {
    /// Mixture weights (positive, summing to 1).
    pub weights: Vec<f64>,
    /// Subcluster specifications, parallel to `weights`.
    pub components: Vec<ComponentSpec>,
}

impl GmmClassSpec {
    /// Number of subclusters.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Draw one sample from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let c = sampling::categorical(rng, &self.weights);
        self.components[c].sample(rng)
    }

    /// Draw `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Parameters controlling how a random class spec is drawn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassSpecConfig {
    /// Feature dimension.
    pub dim: usize,
    /// Inclusive range for the number of subclusters.
    pub subclusters: (usize, usize),
    /// Standard deviation of subcluster centers around the class center
    /// (controls how multi-modal the class looks).
    pub mode_spread: f64,
    /// Base within-subcluster standard deviation.
    pub width: f64,
    /// Number of low-rank correlation factors per subcluster.
    pub n_factors: usize,
    /// Strength of each correlation factor relative to `width`.
    pub factor_strength: f64,
}

/// Draw a random class spec centered at `center`.
///
/// Subcluster count is uniform over the configured range, weights come from
/// a symmetric Dirichlet(1.5) so one or two subclusters usually dominate
/// (matching the proportions in the paper's Tables 1–2), per-dimension
/// widths vary ±50 % around `width`, and `n_factors` random directions add
/// correlated spread.
pub fn sample_class_spec<R: Rng + ?Sized>(
    rng: &mut R,
    center: &[f64],
    cfg: &ClassSpecConfig,
) -> GmmClassSpec {
    assert_eq!(center.len(), cfg.dim, "sample_class_spec: center dimension mismatch");
    let (lo, hi) = cfg.subclusters;
    assert!(lo >= 1 && hi >= lo, "sample_class_spec: bad subcluster range");
    let k = rng.gen_range(lo..=hi);
    let weights = sampling::dirichlet(rng, &vec![1.5; k]);
    let components = (0..k)
        .map(|_| {
            let mean: Vec<f64> = center
                .iter()
                .map(|&c| c + cfg.mode_spread * sampling::standard_normal(rng))
                .collect();
            let diag_std: Vec<f64> =
                (0..cfg.dim).map(|_| cfg.width * rng.gen_range(0.5..1.5)).collect();
            let factors: Vec<Vec<f64>> = (0..cfg.n_factors)
                .map(|_| {
                    // Random direction scaled to the requested strength.
                    let mut u: Vec<f64> =
                        (0..cfg.dim).map(|_| sampling::standard_normal(rng)).collect();
                    let norm = osr_linalg::vector::norm(&u).max(1e-12);
                    let s = cfg.factor_strength * cfg.width / norm;
                    for ui in &mut u {
                        *ui *= s;
                    }
                    u
                })
                .collect();
            ComponentSpec { mean, diag_std, factors }
        })
        .collect();
    GmmClassSpec { weights, components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(dim: usize) -> ClassSpecConfig {
        ClassSpecConfig {
            dim,
            subclusters: (2, 4),
            mode_spread: 3.0,
            width: 1.0,
            n_factors: 2,
            factor_strength: 0.8,
        }
    }

    #[test]
    fn component_sampling_tracks_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let comp = ComponentSpec {
            mean: vec![5.0, -3.0],
            diag_std: vec![0.5, 0.5],
            factors: vec![],
        };
        let xs = (0..5000).map(|_| comp.sample(&mut rng)).collect::<Vec<_>>();
        let m0 = xs.iter().map(|x| x[0]).sum::<f64>() / 5000.0;
        let m1 = xs.iter().map(|x| x[1]).sum::<f64>() / 5000.0;
        assert!((m0 - 5.0).abs() < 0.05 && (m1 + 3.0).abs() < 0.05);
    }

    #[test]
    fn low_rank_factor_induces_correlation() {
        let mut rng = StdRng::seed_from_u64(2);
        let comp = ComponentSpec {
            mean: vec![0.0, 0.0],
            diag_std: vec![0.3, 0.3],
            factors: vec![vec![1.0, 1.0]],
        };
        let xs: Vec<Vec<f64>> = (0..5000).map(|_| comp.sample(&mut rng)).collect();
        let cov01 = xs.iter().map(|x| x[0] * x[1]).sum::<f64>() / 5000.0;
        // Σ_01 = u_0 u_1 = 1.
        assert!((cov01 - 1.0).abs() < 0.1, "induced covariance {cov01}");
    }

    #[test]
    fn class_spec_respects_configuration() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let center = vec![0.0; 4];
            let spec = sample_class_spec(&mut rng, &center, &cfg(4));
            assert!((2..=4).contains(&spec.n_components()));
            assert!((spec.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for c in &spec.components {
                assert_eq!(c.dim(), 4);
                assert_eq!(c.factors.len(), 2);
                assert!(c.diag_std.iter().all(|&s| s > 0.0));
            }
        }
    }

    #[test]
    fn mixture_uses_all_components_eventually() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = GmmClassSpec {
            weights: vec![0.5, 0.5],
            components: vec![
                ComponentSpec { mean: vec![-10.0], diag_std: vec![0.1], factors: vec![] },
                ComponentSpec { mean: vec![10.0], diag_std: vec![0.1], factors: vec![] },
            ],
        };
        let xs = spec.sample_n(&mut rng, 200);
        let neg = xs.iter().filter(|x| x[0] < 0.0).count();
        assert!(neg > 50 && neg < 150, "both modes should be visited, got {neg}/200 negative");
    }

    #[test]
    fn spec_generation_is_deterministic_under_seed() {
        let center = vec![1.0; 3];
        let a = sample_class_spec(&mut StdRng::seed_from_u64(9), &center, &cfg(3));
        let b = sample_class_spec(&mut StdRng::seed_from_u64(9), &center, &cfg(3));
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.components[0].mean, b.components[0].mean);
    }
}
