//! CSV ingestion: run the open-set methods on *your* data, not just the
//! synthetic replicas.
//!
//! Format: one sample per line, comma-separated feature values with the
//! class label in the **last** column. Labels may be arbitrary strings;
//! they are densified to `0..n_classes` in first-appearance order. Lines
//! that are empty or start with `#` are skipped. A header line is detected
//! (first line whose first field does not parse as a number) and skipped.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;

use crate::{Dataset, DatasetError, Result};

/// Outcome of a CSV parse: the dataset plus the original label strings in
/// dense-id order.
#[derive(Debug, Clone)]
pub struct CsvDataset {
    /// The parsed dataset (labels densified).
    pub dataset: Dataset,
    /// Original label text per dense class id.
    pub label_names: Vec<String>,
}

/// Parse a CSV reader into a dataset.
///
/// # Errors
/// Fails on ragged rows, non-numeric features, or an empty input.
pub fn read_csv<R: BufRead>(reader: R, name: &str) -> Result<CsvDataset> {
    let mut points: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut label_ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut label_names: Vec<String> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut first_data_line = true;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| DatasetError::InvalidConfig(format!("read error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(DatasetError::InvalidConfig(format!(
                "line {}: need at least one feature and a label",
                lineno + 1
            )));
        }
        // Header detection: first data-ish line whose first field is not a
        // number.
        if first_data_line && fields[0].parse::<f64>().is_err() {
            first_data_line = false;
            continue;
        }
        first_data_line = false;

        let feature_fields = &fields[..fields.len() - 1];
        match dim {
            None => dim = Some(feature_fields.len()),
            Some(d) if d != feature_fields.len() => {
                return Err(DatasetError::InvalidConfig(format!(
                    "line {}: {} features but previous rows had {}",
                    lineno + 1,
                    feature_fields.len(),
                    d
                )));
            }
            _ => {}
        }
        let mut row = Vec::with_capacity(feature_fields.len());
        for f in feature_fields {
            let v: f64 = f.parse().map_err(|_| {
                DatasetError::InvalidConfig(format!(
                    "line {}: non-numeric feature value {f:?}",
                    lineno + 1
                ))
            })?;
            if !v.is_finite() {
                return Err(DatasetError::InvalidConfig(format!(
                    "line {}: non-finite feature value",
                    lineno + 1
                )));
            }
            row.push(v);
        }
        let label_text = fields[fields.len() - 1].to_string();
        let next_id = label_ids.len();
        let id = *label_ids.entry(label_text.clone()).or_insert(next_id);
        if id == label_names.len() {
            label_names.push(label_text);
        }
        points.push(row);
        labels.push(id);
    }

    if points.is_empty() {
        return Err(DatasetError::InvalidConfig("no data rows".into()));
    }
    let n_classes = label_names.len();
    Ok(CsvDataset { dataset: Dataset::new(name, points, labels, n_classes), label_names })
}

/// Parse a CSV file from disk.
///
/// # Errors
/// Propagates I/O and parse failures.
pub fn read_csv_file(path: &Path) -> Result<CsvDataset> {
    let file = std::fs::File::open(path)
        .map_err(|e| DatasetError::InvalidConfig(format!("open {}: {e}", path.display())))?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("csv").to_string();
    read_csv(std::io::BufReader::new(file), &name)
}

/// Write a dataset back out as CSV (features then the dense label), the
/// inverse of [`read_csv`] up to label renaming.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_csv<W: std::io::Write>(data: &Dataset, mut w: W) -> Result<()> {
    for (p, l) in data.points.iter().zip(&data.labels) {
        let mut line = String::new();
        for v in p {
            line.push_str(&format!("{v},"));
        }
        line.push_str(&l.to_string());
        writeln!(w, "{line}")
            .map_err(|e| DatasetError::InvalidConfig(format!("write error: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_csv_with_string_labels() {
        let csv = "1.0,2.0,cat\n3.0,4.0,dog\n5.0,6.0,cat\n";
        let out = read_csv(Cursor::new(csv), "pets").unwrap();
        assert_eq!(out.dataset.len(), 3);
        assert_eq!(out.dataset.dim(), 2);
        assert_eq!(out.dataset.n_classes, 2);
        assert_eq!(out.label_names, vec!["cat", "dog"]);
        assert_eq!(out.dataset.labels, vec![0, 1, 0]);
        assert_eq!(out.dataset.points[1], vec![3.0, 4.0]);
    }

    #[test]
    fn skips_header_comments_and_blank_lines() {
        let csv = "# a comment\nf1,f2,label\n\n1.0,2.0,a\n3.0,4.0,b\n";
        let out = read_csv(Cursor::new(csv), "t").unwrap();
        assert_eq!(out.dataset.len(), 2);
        assert_eq!(out.label_names, vec!["a", "b"]);
    }

    #[test]
    fn numeric_labels_work_too() {
        let csv = "1.0,7\n2.0,7\n3.0,9\n";
        let out = read_csv(Cursor::new(csv), "t").unwrap();
        assert_eq!(out.dataset.n_classes, 2);
        assert_eq!(out.label_names, vec!["7", "9"]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "1.0,2.0,a\n1.0,b\n";
        let err = read_csv(Cursor::new(csv), "t").unwrap_err();
        assert!(matches!(err, DatasetError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_non_numeric_features_and_nan() {
        assert!(read_csv(Cursor::new("1.0,oops,a\n"), "t").is_err());
        assert!(read_csv(Cursor::new("1.0,NaN,a\n"), "t").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_csv(Cursor::new("# only comments\n"), "t").is_err());
        assert!(read_csv(Cursor::new(""), "t").is_err());
    }

    #[test]
    fn roundtrip_through_write_csv() {
        let csv = "1.5,2.5,x\n3.5,4.5,y\n";
        let parsed = read_csv(Cursor::new(csv), "t").unwrap();
        let mut buf = Vec::new();
        write_csv(&parsed.dataset, &mut buf).unwrap();
        let back = read_csv(Cursor::new(String::from_utf8(buf).unwrap()), "t").unwrap();
        assert_eq!(back.dataset.points, parsed.dataset.points);
        assert_eq!(back.dataset.labels, parsed.dataset.labels);
    }
}
