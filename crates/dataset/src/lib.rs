//! Benchmark datasets and the open-set experimental protocol.
//!
//! The paper evaluates on LETTER, USPS and PENDIGITS from the LIBSVM
//! repository. Those files are not available in this offline environment, so
//! [`synthetic`] provides *seeded replicas*: class-conditional Gaussian
//! mixture generators matching each dataset's published shape (class count,
//! feature dimension, sample count) with multi-modal classes — the structural
//! properties every experiment in the paper actually depends on. See
//! `DESIGN.md` ("Substitutions") for the full justification.
//!
//! [`protocol`] implements the paper's experimental machinery verbatim:
//! the openness measure of Scheirer et al., the training/testing split
//! (steps 1–3 of §4.1.1), and the fitting/validation partition with
//! Closed-Set and Open-Set simulations (steps 4–6, Fig. 3) used for
//! threshold selection.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod gmm;
pub mod protocol;
pub mod synthetic;

use serde::{Deserialize, Serialize};

/// Errors produced while building datasets or splits.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// Requested more classes than the dataset has.
    NotEnoughClasses {
        /// Classes requested (known + unknown).
        requested: usize,
        /// Classes available.
        available: usize,
    },
    /// A class ended up with too few samples for the requested split.
    NotEnoughSamples {
        /// Class (original id) lacking samples.
        class: usize,
        /// Samples required.
        needed: usize,
        /// Samples present.
        got: usize,
    },
    /// Invalid configuration value (message explains).
    InvalidConfig(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotEnoughClasses { requested, available } => {
                write!(f, "requested {requested} classes but only {available} available")
            }
            Self::NotEnoughSamples { class, needed, got } => {
                write!(f, "class {class} has {got} samples, needs {needed}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatasetError>;

/// A fully labeled multi-class dataset (the "universe" an open-set problem is
/// carved out of).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name ("LETTER", "USPS", …).
    pub name: String,
    /// Feature vectors, one per sample.
    pub points: Vec<Vec<f64>>,
    /// Class id (0-based, dense) per sample; parallel to `points`.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Build with validation.
    ///
    /// # Panics
    /// Panics when `points` and `labels` disagree in length, a label is out
    /// of range, or the points are ragged.
    pub fn new(name: impl Into<String>, points: Vec<Vec<f64>>, labels: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(points.len(), labels.len(), "Dataset: points/labels length mismatch");
        assert!(labels.iter().all(|&l| l < n_classes), "Dataset: label out of range");
        if let Some(first) = points.first() {
            let d = first.len();
            assert!(points.iter().all(|p| p.len() == d), "Dataset: ragged points");
        }
        Self { name: name.into(), points, labels, n_classes }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature dimension (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.points.first().map_or(0, Vec::len)
    }

    /// Indices of all samples belonging to `class`.
    pub fn class_indices(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == class).then_some(i))
            .collect()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 1);
        assert_eq!(d.class_indices(0), vec![0, 2]);
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_label() {
        let _ = Dataset::new("bad", vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        let _ = Dataset::new("bad", vec![vec![0.0]], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_points() {
        let _ = Dataset::new("bad", vec![vec![0.0], vec![0.0, 1.0]], vec![0, 0], 1);
    }
}
