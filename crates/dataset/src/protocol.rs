//! The paper's experimental protocol (§4.1.1, Fig. 3).
//!
//! * [`openness`] — Scheirer et al.'s openness measure,
//! * [`OpenSetSplit`] — steps 1–3: choose `N` known classes, put 60 % of
//!   their samples in the training set, and build a testing set from the
//!   remaining 40 % plus every sample of the chosen unknown classes,
//! * [`ValidationSplit`] — steps 4–6: inside the training set, designate
//!   ⌊N/2 + 0.5⌋ simulation-"known" classes, split them 60/40 into a fitting
//!   set `F` and a validation set `V` containing a *Closed-Set* simulation
//!   (only sim-known samples) and an *Open-Set* simulation (sim-known 40 %
//!   plus all training samples of the sim-unknown classes). All parameter /
//!   threshold searches are trained on `F` and scored on `V`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use osr_stats::sampling;

use crate::{Dataset, DatasetError, Result};

/// Openness of an open-set problem (Scheirer et al. 2013):
/// `1 − sqrt(2·|training| / (|testing| + |target|))`, clamped at 0.
///
/// `n_train` = classes seen in training, `n_target` = classes to be
/// recognized, `n_test` = classes appearing at test time. The problem is
/// closed when every test class was trained on (openness 0).
pub fn openness(n_train: usize, n_target: usize, n_test: usize) -> f64 {
    assert!(n_train > 0 && n_target > 0 && n_test > 0, "openness: class counts must be positive");
    let v = 1.0 - (2.0 * n_train as f64 / (n_test + n_target) as f64).sqrt();
    v.max(0.0)
}

/// Ground truth of a test sample in an open-set evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Sample of a known class: the index **into the training class list**
    /// (not the original dataset id).
    Known(usize),
    /// Sample of a class never seen in training.
    Unknown,
}

/// Open-set prediction for one test sample — the shared output type of
/// HDP-OSR and every baseline, scored against [`GroundTruth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Prediction {
    /// Index into the training class list (`TrainSet::class_ids` order).
    Known(usize),
    /// The sample was rejected as belonging to no known class.
    Unknown,
}

impl Prediction {
    /// True when the prediction scores as correct against `truth`
    /// (matching known label, or rejection of an unknown sample).
    pub fn is_correct(&self, truth: &GroundTruth) -> bool {
        match (self, truth) {
            (Prediction::Known(p), GroundTruth::Known(t)) => p == t,
            (Prediction::Unknown, GroundTruth::Unknown) => true,
            _ => false,
        }
    }
}

/// Training data: the known classes, kept per-class because HDP-OSR models
/// each class as its own HDP group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainSet {
    /// Original dataset ids of the known classes (parallel to `classes`).
    pub class_ids: Vec<usize>,
    /// Per-class training points (parallel to `class_ids`).
    pub classes: Vec<Vec<Vec<f64>>>,
}

impl TrainSet {
    /// Number of known classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.classes.iter().find_map(|c| c.first()).map_or(0, Vec::len)
    }

    /// Total number of training points.
    pub fn total_points(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Flatten into `(point, class_index)` pairs — the representation the
    /// SVM/NN baselines consume. Class indices are positions in
    /// [`TrainSet::class_ids`], matching [`GroundTruth::Known`].
    pub fn flattened(&self) -> (Vec<&[f64]>, Vec<usize>) {
        let mut points = Vec::with_capacity(self.total_points());
        let mut labels = Vec::with_capacity(self.total_points());
        for (idx, class) in self.classes.iter().enumerate() {
            for p in class {
                points.push(p.as_slice());
                labels.push(idx);
            }
        }
        (points, labels)
    }
}

/// Test data with ground truth for scoring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestSet {
    /// Test feature vectors.
    pub points: Vec<Vec<f64>>,
    /// Ground truth per point (parallel to `points`).
    pub truth: Vec<GroundTruth>,
}

impl TestSet {
    /// Number of test points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no test points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Count of samples whose ground truth is `Unknown`.
    pub fn n_unknown(&self) -> usize {
        self.truth.iter().filter(|t| **t == GroundTruth::Unknown).count()
    }
}

/// Configuration of an open-set train/test split (protocol steps 1–3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Number of known classes `N` selected for training.
    pub n_known: usize,
    /// Number of additional classes whose samples appear in the test set as
    /// unknowns (`0` makes the problem closed).
    pub n_unknown: usize,
    /// Fraction of each known class used for training (the paper uses 0.6).
    pub train_fraction: f64,
}

impl SplitConfig {
    /// Paper-default split: 60 % of each known class to training.
    pub fn new(n_known: usize, n_unknown: usize) -> Self {
        Self { n_known, n_unknown, train_fraction: 0.6 }
    }

    /// Openness this configuration produces (target = known classes).
    pub fn openness(&self) -> f64 {
        openness(self.n_known, self.n_known, self.n_known + self.n_unknown)
    }
}

/// One sampled open-set recognition problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenSetSplit {
    /// Training data over the known classes.
    pub train: TrainSet,
    /// Test set mixing held-out known samples with unknown-class samples.
    pub test: TestSet,
    /// Original dataset ids of the unknown classes present in the test set.
    pub unknown_class_ids: Vec<usize>,
    /// Openness of the resulting problem.
    pub openness: f64,
}

impl OpenSetSplit {
    /// Sample a split per protocol steps 1–3: randomly select
    /// `config.n_known` classes, 60 % of each to training; the remaining
    /// 40 % plus **all** samples of `config.n_unknown` randomly chosen other
    /// classes form the test set.
    ///
    /// # Errors
    /// Fails when the dataset has fewer than `n_known + n_unknown` classes,
    /// a selected class has fewer than 2 samples, or the configuration is
    /// malformed.
    pub fn sample<R: Rng + ?Sized>(
        data: &Dataset,
        config: &SplitConfig,
        rng: &mut R,
    ) -> Result<Self> {
        if config.n_known == 0 {
            return Err(DatasetError::InvalidConfig("n_known must be positive".into()));
        }
        if !(0.0 < config.train_fraction && config.train_fraction < 1.0) {
            return Err(DatasetError::InvalidConfig(format!(
                "train_fraction must be in (0,1), got {}",
                config.train_fraction
            )));
        }
        let wanted = config.n_known + config.n_unknown;
        if wanted > data.n_classes {
            return Err(DatasetError::NotEnoughClasses {
                requested: wanted,
                available: data.n_classes,
            });
        }

        let chosen = sampling::sample_indices(rng, data.n_classes, wanted);
        let known = &chosen[..config.n_known];
        let unknown = &chosen[config.n_known..];

        let mut classes = Vec::with_capacity(config.n_known);
        let mut test_points = Vec::new();
        let mut test_truth = Vec::new();

        for (known_idx, &class) in known.iter().enumerate() {
            let mut idx = data.class_indices(class);
            if idx.len() < 2 {
                return Err(DatasetError::NotEnoughSamples { class, needed: 2, got: idx.len() });
            }
            sampling::shuffle(rng, &mut idx);
            let n_train = ((idx.len() as f64 * config.train_fraction).round() as usize)
                .clamp(1, idx.len() - 1);
            let (train_idx, test_idx) = idx.split_at(n_train);
            classes.push(train_idx.iter().map(|&i| data.points[i].clone()).collect());
            for &i in test_idx {
                test_points.push(data.points[i].clone());
                test_truth.push(GroundTruth::Known(known_idx));
            }
        }
        for &class in unknown {
            for i in data.class_indices(class) {
                test_points.push(data.points[i].clone());
                test_truth.push(GroundTruth::Unknown);
            }
        }

        Ok(Self {
            train: TrainSet { class_ids: known.to_vec(), classes },
            test: TestSet { points: test_points, truth: test_truth },
            unknown_class_ids: unknown.to_vec(),
            openness: config.openness(),
        })
    }
}

/// The fitting/validation partition used for threshold selection
/// (protocol steps 4–6, Fig. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationSplit {
    /// Fitting set `F`: 60 % of each simulation-"known" class.
    pub fitting: TrainSet,
    /// Closed-Set simulation: held-out 40 % of the sim-known classes only.
    pub closed: TestSet,
    /// Open-Set simulation: the Closed-Set points plus every training sample
    /// of the simulation-"unknown" classes (labeled [`GroundTruth::Unknown`]).
    pub open: TestSet,
}

impl ValidationSplit {
    /// Build a validation split from a training set: ⌊N/2 + 0.5⌋ of its `N`
    /// classes act as sim-known, the rest as sim-unknown; each sim-known
    /// class is split 60/40 into fitting and validation samples.
    ///
    /// # Errors
    /// Fails when the training set has fewer than 2 classes or a class has
    /// fewer than 2 points.
    pub fn sample<R: Rng + ?Sized>(train: &TrainSet, rng: &mut R) -> Result<Self> {
        let n = train.n_classes();
        if n < 2 {
            return Err(DatasetError::InvalidConfig(format!(
                "validation split needs at least 2 training classes, got {n}"
            )));
        }
        // ⌊N/2 + 0.5⌋ simulation-known classes.
        let n_sim_known = ((n as f64 / 2.0 + 0.5).floor() as usize).clamp(1, n - 1);
        let order = sampling::sample_indices(rng, n, n);
        let sim_known = &order[..n_sim_known];
        let sim_unknown = &order[n_sim_known..];

        let mut fit_classes = Vec::with_capacity(n_sim_known);
        let mut fit_ids = Vec::with_capacity(n_sim_known);
        let mut closed_points = Vec::new();
        let mut closed_truth = Vec::new();

        for (fit_idx, &class_pos) in sim_known.iter().enumerate() {
            let points = &train.classes[class_pos];
            if points.len() < 2 {
                return Err(DatasetError::NotEnoughSamples {
                    class: train.class_ids[class_pos],
                    needed: 2,
                    got: points.len(),
                });
            }
            let mut idx: Vec<usize> = (0..points.len()).collect();
            sampling::shuffle(rng, &mut idx);
            let n_fit = ((points.len() as f64 * 0.6).round() as usize).clamp(1, points.len() - 1);
            let (fit, held) = idx.split_at(n_fit);
            fit_classes.push(fit.iter().map(|&i| points[i].clone()).collect());
            fit_ids.push(train.class_ids[class_pos]);
            for &i in held {
                closed_points.push(points[i].clone());
                closed_truth.push(GroundTruth::Known(fit_idx));
            }
        }

        let mut open_points = closed_points.clone();
        let mut open_truth = closed_truth.clone();
        for &class_pos in sim_unknown {
            for p in &train.classes[class_pos] {
                open_points.push(p.clone());
                open_truth.push(GroundTruth::Unknown);
            }
        }

        Ok(Self {
            fitting: TrainSet { class_ids: fit_ids, classes: fit_classes },
            closed: TestSet { points: closed_points, truth: closed_truth },
            open: TestSet { points: open_points, truth: open_truth },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(42);
        synthetic::pendigits_config().scaled(0.02).generate(&mut rng)
    }

    #[test]
    fn openness_matches_paper_formula() {
        // Completely closed problem.
        assert_eq!(openness(10, 10, 10), 0.0);
        // LETTER with all 16 extra classes: 1 − sqrt(20/36).
        let o = openness(10, 10, 26);
        assert!((o - (1.0 - (20.0f64 / 36.0).sqrt())).abs() < 1e-12);
        // USPS/PENDIGITS maximum: 1 − sqrt(10/15) ≈ 18.4 %.
        let o = openness(5, 5, 10);
        assert!((o - (1.0 - (10.0f64 / 15.0).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn split_respects_fractions_and_counts() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SplitConfig::new(5, 3);
        let split = OpenSetSplit::sample(&data, &cfg, &mut rng).unwrap();

        assert_eq!(split.train.n_classes(), 5);
        assert_eq!(split.unknown_class_ids.len(), 3);
        assert!((split.openness - openness(5, 5, 8)).abs() < 1e-12);

        // Each known class contributes ~60 % to training.
        for (i, &cid) in split.train.class_ids.iter().enumerate() {
            let total = data.class_indices(cid).len();
            let train_n = split.train.classes[i].len();
            let expect = (total as f64 * 0.6).round() as usize;
            assert_eq!(train_n, expect, "class {cid}: {train_n} vs {expect} of {total}");
        }

        // Unknown samples = all samples of the unknown classes.
        let unknown_total: usize =
            split.unknown_class_ids.iter().map(|&c| data.class_indices(c).len()).sum();
        assert_eq!(split.test.n_unknown(), unknown_total);

        // Known test samples = the held-out 40 %.
        let known_test = split.test.len() - split.test.n_unknown();
        let expect_known: usize = split
            .train
            .class_ids
            .iter()
            .enumerate()
            .map(|(i, &cid)| data.class_indices(cid).len() - split.train.classes[i].len())
            .sum();
        assert_eq!(known_test, expect_known);
    }

    #[test]
    fn closed_split_has_no_unknowns() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 0), &mut rng).unwrap();
        assert_eq!(split.test.n_unknown(), 0);
        assert_eq!(split.openness, 0.0);
    }

    #[test]
    fn train_and_test_points_are_disjoint() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(4, 2), &mut rng).unwrap();
        // Points are continuous draws, so coordinate equality identifies the
        // original sample reliably.
        use std::collections::HashSet;
        let train_set: HashSet<Vec<u64>> = split
            .train
            .classes
            .iter()
            .flatten()
            .map(|p| p.iter().map(|x| x.to_bits()).collect())
            .collect();
        for p in &split.test.points {
            let key: Vec<u64> = p.iter().map(|x| x.to_bits()).collect();
            assert!(!train_set.contains(&key), "test point leaked from training set");
        }
    }

    #[test]
    fn split_rejects_too_many_classes() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let err = OpenSetSplit::sample(&data, &SplitConfig::new(9, 5), &mut rng).unwrap_err();
        assert!(matches!(err, DatasetError::NotEnoughClasses { requested: 14, available: 10 }));
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SplitConfig { n_known: 3, n_unknown: 0, train_fraction: 1.0 };
        assert!(OpenSetSplit::sample(&data, &cfg, &mut rng).is_err());
    }

    #[test]
    fn validation_split_follows_fig3() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 0), &mut rng).unwrap();
        let val = ValidationSplit::sample(&split.train, &mut rng).unwrap();

        // ⌊5/2 + 0.5⌋ = 3 sim-known classes.
        assert_eq!(val.fitting.n_classes(), 3);
        // Closed sim contains no unknowns; open sim adds the 2 sim-unknown
        // classes' full training data.
        assert_eq!(val.closed.n_unknown(), 0);
        let sim_unknown_total: usize = split
            .train
            .classes
            .iter()
            .enumerate()
            .filter(|(i, _)| !val.fitting.class_ids.contains(&split.train.class_ids[*i]))
            .map(|(_, c)| c.len())
            .sum();
        assert_eq!(val.open.n_unknown(), sim_unknown_total);
        assert_eq!(val.open.len(), val.closed.len() + sim_unknown_total);

        // Fitting + closed exactly partition each sim-known class.
        for (i, &cid) in val.fitting.class_ids.iter().enumerate() {
            let pos = split.train.class_ids.iter().position(|&c| c == cid).unwrap();
            let total = split.train.classes[pos].len();
            let n_fit = val.fitting.classes[i].len();
            let n_closed = val
                .closed
                .truth
                .iter()
                .filter(|t| **t == GroundTruth::Known(i))
                .count();
            assert_eq!(n_fit + n_closed, total);
        }
    }

    #[test]
    fn validation_split_needs_two_classes() {
        let train = TrainSet { class_ids: vec![0], classes: vec![vec![vec![0.0]; 5]] };
        let mut rng = StdRng::seed_from_u64(6);
        assert!(ValidationSplit::sample(&train, &mut rng).is_err());
    }

    #[test]
    fn flattened_labels_match_classes() {
        let data = small_dataset();
        let mut rng = StdRng::seed_from_u64(7);
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(3, 0), &mut rng).unwrap();
        let (pts, labels) = split.train.flattened();
        assert_eq!(pts.len(), split.train.total_points());
        assert_eq!(labels.len(), pts.len());
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), split.train.classes[0].len());
        assert!(labels.iter().all(|&l| l < 3));
    }
}
