//! Seeded synthetic replicas of the paper's three benchmark datasets.
//!
//! | Replica   | Classes | Dim           | Samples | Source shape              |
//! |-----------|---------|---------------|---------|---------------------------|
//! | LETTER    | 26      | 16            | 20 000  | Frey & Slate 1991         |
//! | USPS      | 10      | 256 → 39 (PCA)| 7 291   | Hull 1994                 |
//! | PENDIGITS | 10      | 16            | 10 992  | Bilenko et al. 2004       |
//!
//! The generators draw each class as a Gaussian mixture with 1–7 subclusters
//! (see [`crate::gmm`]); class centers are spread so classes are largely but
//! not perfectly separable, which is what gives the baselines their paper-like
//! closed-set F-measures (≈0.85–0.95) and their open-set degradation.
//!
//! The *world* (class centers, mixture shapes) is derived from the `Rng`
//! handed in, so a fixed seed reproduces the exact dataset; experiment
//! binaries default to fixed seeds.

use rand::Rng;

use osr_linalg::Pca;
use osr_stats::sampling;

use crate::gmm::{sample_class_spec, ClassSpecConfig, GmmClassSpec};
use crate::Dataset;

/// Configuration for a synthetic dataset replica.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Dataset name carried into [`Dataset::name`].
    pub name: &'static str,
    /// Number of classes.
    pub n_classes: usize,
    /// Raw feature dimension (before any PCA).
    pub dim: usize,
    /// Total sample count across all classes.
    pub total_samples: usize,
    /// Standard deviation of *family* centers around the origin, in units
    /// of the within-subcluster width (the between-family separability
    /// knob).
    pub separation: f64,
    /// Classes per confusable family. Real benchmark classes are not
    /// uniformly spread: digits 4/9 or letters O/Q sit close together. With
    /// `family_size = 2` classes come in near pairs, so a random
    /// known/unknown split regularly leaves an *unknown sibling* of a known
    /// class — the situation that makes threshold-based methods degrade with
    /// openness (the mechanism behind the paper's curves). `1` disables the
    /// structure.
    pub family_size: usize,
    /// Distance scale of each class center from its family center, in units
    /// of the within-subcluster width.
    pub family_spread: f64,
    /// Per-class subcluster configuration.
    pub class_cfg: ClassSpecConfig,
}

impl SyntheticConfig {
    /// Scale the sample count by `fraction` (for fast tests and doctests);
    /// keeps at least 10 samples per class.
    #[must_use]
    pub fn scaled(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "scaled: fraction must be positive");
        self.total_samples =
            ((self.total_samples as f64 * fraction) as usize).max(10 * self.n_classes);
        self
    }

    /// Draw the dataset: class specs first, then samples.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let specs = self.class_specs(rng);
        let counts = per_class_counts(self.total_samples, self.n_classes);
        let mut points = Vec::with_capacity(self.total_samples);
        let mut labels = Vec::with_capacity(self.total_samples);
        for (class, (spec, &n)) in specs.iter().zip(&counts).enumerate() {
            points.extend(spec.sample_n(rng, n));
            labels.extend(std::iter::repeat_n(class, n));
        }
        Dataset::new(self.name, points, labels, self.n_classes)
    }

    /// Draw only the class specifications (exposed for tests that need to
    /// inspect the ground-truth mixture structure).
    pub fn class_specs<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<GmmClassSpec> {
        assert!(self.family_size >= 1, "family_size must be ≥ 1");
        let sep = self.separation * self.class_cfg.width;
        let fam = self.family_spread * self.class_cfg.width;
        let n_families = self.n_classes.div_ceil(self.family_size);
        let family_centers: Vec<Vec<f64>> = (0..n_families)
            .map(|_| (0..self.dim).map(|_| sep * sampling::standard_normal(rng)).collect())
            .collect();
        (0..self.n_classes)
            .map(|class| {
                let base = &family_centers[class / self.family_size];
                let center: Vec<f64> = base
                    .iter()
                    .map(|&b| b + fam * sampling::standard_normal(rng))
                    .collect();
                sample_class_spec(rng, &center, &self.class_cfg)
            })
            .collect()
    }
}

fn per_class_counts(total: usize, n_classes: usize) -> Vec<usize> {
    let base = total / n_classes;
    let extra = total % n_classes;
    (0..n_classes).map(|c| base + usize::from(c < extra)).collect()
}

/// Configuration of the LETTER replica (26 classes × 16 features, 20 000
/// samples). Letters are fairly well separated but share stroke structure,
/// so classes get 2–5 subclusters.
pub fn letter_config() -> SyntheticConfig {
    SyntheticConfig {
        name: "LETTER",
        n_classes: 26,
        dim: 16,
        total_samples: 20_000,
        separation: 2.0,
        family_size: 2,
        family_spread: 1.0,
        class_cfg: ClassSpecConfig {
            dim: 16,
            subclusters: (2, 5),
            mode_spread: 1.1,
            width: 1.0,
            n_factors: 2,
            factor_strength: 0.8,
        },
    }
}

/// Generate the LETTER replica.
pub fn letter<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    letter_config().generate(rng)
}

/// Latent-space configuration of the USPS replica (10 classes, 7 291
/// samples, raw dimension 256). Real 256-pixel digit images have an
/// *effective* dimensionality of a few dozen (pixels are strongly
/// correlated), which is exactly why the paper's PCA keeps 95 % of the
/// variance in just 39 components. The replica reproduces that structure
/// explicitly: the class/subcluster geometry lives in a
/// [`USPS_LATENT_DIMS`]-dimensional latent space (handwriting "style"
/// coordinates), which [`usps_raw`] embeds into 256 raw dimensions through a
/// random linear map plus small isotropic pixel noise.
pub fn usps_latent_config() -> SyntheticConfig {
    SyntheticConfig {
        name: "USPS",
        n_classes: 10,
        dim: USPS_LATENT_DIMS,
        total_samples: 7_291,
        separation: 2.0,
        family_size: 2,
        family_spread: 1.0,
        class_cfg: ClassSpecConfig {
            dim: USPS_LATENT_DIMS,
            subclusters: (1, 7),
            mode_spread: 1.2,
            width: 1.0,
            n_factors: 2,
            factor_strength: 0.8,
        },
    }
}

/// Dimension of the latent handwriting-style space of the USPS replica.
pub const USPS_LATENT_DIMS: usize = 40;

/// Raw (pixel) dimension of USPS.
pub const USPS_RAW_DIMS: usize = 256;

/// Standard deviation of the isotropic pixel noise added on top of the
/// embedded latent signal. Chosen so the latent subspace carries ≈95 % of
/// the total variance — matching the paper's "PCA … retaining 95 % of the
/// samples' components" with 39 kept dimensions.
pub const USPS_PIXEL_NOISE: f64 = 0.55;

/// Generate the raw 256-dimensional USPS replica: latent GMM samples mapped
/// through a random (near-orthogonal) `256 × 40` embedding plus pixel noise.
pub fn usps_raw<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    usps_raw_scaled(rng, 1.0)
}

/// [`usps_raw`] with a sample-count multiplier (for fast tests).
pub fn usps_raw_scaled<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> Dataset {
    let cfg = if (scale - 1.0).abs() < 1e-12 {
        usps_latent_config()
    } else {
        usps_latent_config().scaled(scale)
    };
    let latent = cfg.generate(rng);

    // Random embedding: columns are nearly orthonormal for d ≫ k, so latent
    // geometry (distances, cluster structure) is preserved in pixel space.
    let embed: Vec<Vec<f64>> = (0..USPS_LATENT_DIMS)
        .map(|_| {
            let col: Vec<f64> = (0..USPS_RAW_DIMS)
                .map(|_| sampling::standard_normal(rng) / (USPS_RAW_DIMS as f64).sqrt())
                .collect();
            col
        })
        .collect();

    let points: Vec<Vec<f64>> = latent
        .points
        .iter()
        .map(|z| {
            let mut x: Vec<f64> = (0..USPS_RAW_DIMS)
                .map(|_| USPS_PIXEL_NOISE * sampling::standard_normal(rng))
                .collect();
            for (zk, col) in z.iter().zip(&embed) {
                for (xi, ci) in x.iter_mut().zip(col) {
                    *xi += zk * ci;
                }
            }
            x
        })
        .collect();
    Dataset::new("USPS", points, latent.labels, latent.n_classes)
}

/// Number of principal components the paper keeps for USPS.
pub const USPS_PCA_DIMS: usize = 39;

/// Generate the USPS replica and project it to [`USPS_PCA_DIMS`] dimensions
/// with PCA, exactly as the paper preprocesses USPS ("PCA is used to project
/// sample space into 39 dimensional subspace, retaining 95 % of the samples\'
/// components").
pub fn usps<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    let raw = usps_raw(rng);
    project_with_pca(raw, USPS_PCA_DIMS)
}

/// Project a dataset onto its leading `k` principal components.
///
/// # Panics
/// Panics when the dataset is empty.
pub fn project_with_pca(data: Dataset, k: usize) -> Dataset {
    let refs: Vec<&[f64]> = data.points.iter().map(Vec::as_slice).collect();
    let pca = Pca::fit(&refs, k).expect("PCA fit on non-empty dataset");
    let points = pca.transform_all(&refs);
    Dataset::new(data.name, points, data.labels, data.n_classes)
}

/// Configuration of the PENDIGITS replica (10 classes × 16 features, 10 992
/// samples). Pen trajectories vary a lot per digit, so classes get 3–7
/// subclusters with wide mode spread (Table 2 reports 5–15 subclasses per
/// class).
pub fn pendigits_config() -> SyntheticConfig {
    SyntheticConfig {
        name: "PENDIGITS",
        n_classes: 10,
        dim: 16,
        total_samples: 10_992,
        separation: 2.0,
        family_size: 2,
        family_spread: 1.0,
        class_cfg: ClassSpecConfig {
            dim: 16,
            subclusters: (3, 7),
            mode_spread: 1.3,
            width: 1.0,
            n_factors: 2,
            factor_strength: 0.9,
        },
    }
}

/// Generate the PENDIGITS replica.
pub fn pendigits<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    pendigits_config().generate(rng)
}

/// A small 2-dimensional toy dataset (4 well-separated multi-modal classes),
/// used by the quickstart example, the Fig. 1 illustration, and fast tests.
pub fn toy2d<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    SyntheticConfig {
        name: "TOY2D",
        n_classes: 4,
        dim: 2,
        total_samples: 800,
        separation: 8.0,
        family_size: 1,
        family_spread: 0.0,
        class_cfg: ClassSpecConfig {
            dim: 2,
            subclusters: (1, 3),
            mode_spread: 1.2,
            width: 0.6,
            n_factors: 1,
            factor_strength: 0.6,
        },
    }
    .generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn per_class_counts_partition_total() {
        let c = per_class_counts(20_000, 26);
        assert_eq!(c.iter().sum::<usize>(), 20_000);
        assert!(c.iter().all(|&n| n == 769 || n == 770));
    }

    #[test]
    fn letter_replica_has_published_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = letter_config().scaled(0.05).generate(&mut rng);
        assert_eq!(d.name, "LETTER");
        assert_eq!(d.n_classes, 26);
        assert_eq!(d.dim(), 16);
        assert_eq!(d.len(), 1000);
    }

    #[test]
    fn pendigits_replica_has_published_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = pendigits(&mut rng);
        assert_eq!(d.n_classes, 10);
        assert_eq!(d.dim(), 16);
        assert_eq!(d.len(), 10_992);
    }

    #[test]
    fn usps_raw_replica_has_published_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = usps_raw_scaled(&mut rng, 0.02);
        assert_eq!(d.dim(), 256);
        assert_eq!(d.n_classes, 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = pendigits_config().scaled(0.01).generate(&mut StdRng::seed_from_u64(5));
        let b = pendigits_config().scaled(0.01).generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.points, b.points);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let a = pendigits_config().scaled(0.01).generate(&mut StdRng::seed_from_u64(5));
        let b = pendigits_config().scaled(0.01).generate(&mut StdRng::seed_from_u64(6));
        assert_ne!(a.points, b.points);
    }

    #[test]
    fn classes_are_mostly_separable() {
        // Nearest-class-center classification should beat 80 % on the toy
        // replicas; if this fails, the separability knob drifted and every
        // downstream experiment is meaningless.
        let mut rng = StdRng::seed_from_u64(11);
        let d = pendigits_config().scaled(0.05).generate(&mut rng);
        let mut centers = vec![vec![0.0; d.dim()]; d.n_classes];
        let counts = d.class_counts();
        for (p, &l) in d.points.iter().zip(&d.labels) {
            for (c, x) in centers[l].iter_mut().zip(p) {
                *c += x;
            }
        }
        for (center, &n) in centers.iter_mut().zip(&counts) {
            for c in center.iter_mut() {
                *c /= n as f64;
            }
        }
        let correct = d
            .points
            .iter()
            .zip(&d.labels)
            .filter(|(p, &l)| {
                let best = (0..d.n_classes)
                    .min_by(|&a, &b| {
                        let da = osr_linalg::vector::dist_sq(p, &centers[a]);
                        let db = osr_linalg::vector::dist_sq(p, &centers[b]);
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                best == l
            })
            .count();
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.8, "nearest-center accuracy only {acc:.3}");
    }

    #[test]
    fn classes_are_not_perfectly_separable() {
        // Some confusion must remain or the open-set problem is trivial.
        let mut rng = StdRng::seed_from_u64(11);
        let d = letter_config().scaled(0.1).generate(&mut rng);
        let mut nn_wrong = 0;
        // 1-NN leave-one-out over the full set: the handful of confusable
        // points is sparse enough that a subsample can miss all of them.
        for i in 0..d.len() {
            let mut best = (f64::INFINITY, 0usize);
            for j in 0..d.len() {
                if i == j {
                    continue;
                }
                let dist = osr_linalg::vector::dist_sq(&d.points[i], &d.points[j]);
                if dist < best.0 {
                    best = (dist, j);
                }
            }
            if d.labels[best.1] != d.labels[i] {
                nn_wrong += 1;
            }
        }
        assert!(nn_wrong > 0, "1-NN is perfect — classes are too separated");
    }

    #[test]
    fn pca_projection_reduces_dimension() {
        let mut rng = StdRng::seed_from_u64(3);
        let raw = usps_raw_scaled(&mut rng, 0.03);
        let proj = project_with_pca(raw, 10);
        assert_eq!(proj.dim(), 10);
        assert_eq!(proj.n_classes, 10);
    }

    #[test]
    fn toy2d_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = toy2d(&mut rng);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes, 4);
        assert_eq!(d.len(), 800);
    }
}
