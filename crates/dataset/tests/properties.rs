//! Property-based tests of the dataset substrate: split invariants must hold
//! for arbitrary shapes, sizes and seeds — the protocol machinery is the
//! foundation every experiment stands on.

use osr_dataset::gmm::ClassSpecConfig;
use osr_dataset::protocol::{GroundTruth, OpenSetSplit, SplitConfig, ValidationSplit};
use osr_dataset::synthetic::SyntheticConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dataset(n_classes: usize, per_class: usize, seed: u64) -> osr_dataset::Dataset {
    let cfg = SyntheticConfig {
        name: "PROP",
        n_classes,
        dim: 3,
        total_samples: n_classes * per_class,
        separation: 4.0,
        family_size: 2,
        family_spread: 1.0,
        class_cfg: ClassSpecConfig {
            dim: 3,
            subclusters: (1, 3),
            mode_spread: 1.0,
            width: 1.0,
            n_factors: 1,
            factor_strength: 0.5,
        },
    };
    cfg.generate(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_partitions_known_classes(
        n_classes in 3usize..8,
        per_class in 6usize..25,
        n_known in 2usize..4,
        seed in 0u64..10_000,
    ) {
        prop_assume!(n_known < n_classes);
        let n_unknown = (n_classes - n_known).min(2);
        let data = tiny_dataset(n_classes, per_class, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let split =
            OpenSetSplit::sample(&data, &SplitConfig::new(n_known, n_unknown), &mut rng).unwrap();

        // Training + known-test exactly partition each known class.
        for (i, &cid) in split.train.class_ids.iter().enumerate() {
            let total = data.class_indices(cid).len();
            let known_test = split
                .test
                .truth
                .iter()
                .filter(|t| **t == GroundTruth::Known(i))
                .count();
            prop_assert_eq!(split.train.classes[i].len() + known_test, total);
        }
        // Unknown test samples equal the unknown classes' full populations.
        let unknown_total: usize = split
            .unknown_class_ids
            .iter()
            .map(|&c| data.class_indices(c).len())
            .sum();
        prop_assert_eq!(split.test.n_unknown(), unknown_total);
        // Openness matches the formula for the sampled configuration.
        prop_assert!((split.openness - SplitConfig::new(n_known, n_unknown).openness()).abs() < 1e-12);
        // Known / unknown class id sets are disjoint.
        for cid in &split.unknown_class_ids {
            prop_assert!(!split.train.class_ids.contains(cid));
        }
    }

    #[test]
    fn validation_split_partitions_fitting_classes(
        n_known in 2usize..6,
        per_class in 8usize..20,
        seed in 0u64..10_000,
    ) {
        let data = tiny_dataset(n_known + 1, per_class, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(n_known, 0), &mut rng).unwrap();
        let val = ValidationSplit::sample(&split.train, &mut rng).unwrap();

        // ⌊N/2 + 0.5⌋ fitting classes.
        let expect = ((n_known as f64 / 2.0 + 0.5).floor() as usize).clamp(1, n_known - 1);
        prop_assert_eq!(val.fitting.n_classes(), expect);

        // Open sim = closed sim + the sim-unknown training points.
        prop_assert_eq!(val.open.len(), val.closed.len() + val.open.n_unknown());
        prop_assert_eq!(val.closed.n_unknown(), 0);

        // Every fitting class id is one of the split's training class ids.
        for cid in &val.fitting.class_ids {
            prop_assert!(split.train.class_ids.contains(cid));
        }
    }

    #[test]
    fn splits_are_deterministic_in_the_rng(
        seed in 0u64..10_000,
    ) {
        let data = tiny_dataset(5, 12, seed);
        let run = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            OpenSetSplit::sample(&data, &SplitConfig::new(3, 1), &mut rng).unwrap()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.train.class_ids, b.train.class_ids);
        prop_assert_eq!(a.test.points, b.test.points);
    }

    #[test]
    fn generated_datasets_have_declared_shape(
        n_classes in 2usize..6,
        per_class in 5usize..15,
        seed in 0u64..10_000,
    ) {
        let data = tiny_dataset(n_classes, per_class, seed);
        prop_assert_eq!(data.len(), n_classes * per_class);
        prop_assert_eq!(data.dim(), 3);
        let counts = data.class_counts();
        prop_assert_eq!(counts.len(), n_classes);
        prop_assert!(counts.iter().all(|&c| c == per_class));
        prop_assert!(data.points.iter().all(|p| p.iter().all(|x| x.is_finite())));
    }
}
