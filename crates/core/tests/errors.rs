//! External-view tests of the serving error surface: `OsrError` is
//! `#[non_exhaustive]`, so this file deliberately lives outside the crate —
//! it matches the way downstream code must, and its Display assertions pin
//! the operator-facing wording of the admission errors.

// Test code: the crate-level unwrap/expect ban targets serving paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hdp_osr_core::OsrError;

#[test]
fn admission_errors_display_the_offending_location() {
    let cases: Vec<(OsrError, &[&str])> = vec![
        (OsrError::EmptyBatch, &["empty test batch"]),
        (
            OsrError::DimensionMismatch { point: 4, expected: 2, got: 7 },
            &["point 4", "dimension 7", "expected 2"],
        ),
        (
            OsrError::NonFiniteFeature { point: 3, coord: 1 },
            &["point 3", "non-finite", "coordinate 1"],
        ),
        (
            OsrError::Diverged { attempts: 3, reason: "numerical divergence: x".into() },
            &["3 attempt(s)", "numerical divergence: x"],
        ),
        (OsrError::Internal("slot lost".into()), &["internal serving failure", "slot lost"]),
        (OsrError::InvalidTrainingSet("class 0 is empty".into()), &["invalid training set"]),
        (OsrError::InvalidTestSet("ragged".into()), &["invalid test set"]),
        (OsrError::InvalidConfig("rho must be > 0".into()), &["invalid config"]),
    ];
    for (err, fragments) in cases {
        let text = err.to_string();
        for fragment in fragments {
            assert!(text.contains(fragment), "`{text}` should contain `{fragment}`");
        }
    }
}

#[test]
fn non_exhaustive_matching_requires_a_wildcard_arm() {
    // This is the shape every downstream consumer is forced into: naming
    // the arms it handles and keeping a wildcard for variants future
    // versions add. If `OsrError` ever loses `#[non_exhaustive]`, the
    // wildcard below turns into an unreachable-pattern warning and the
    // workspace's `-D warnings` clippy gate fails — that is the test.
    fn triage(err: &OsrError) -> &'static str {
        match err {
            OsrError::EmptyBatch
            | OsrError::DimensionMismatch { .. }
            | OsrError::NonFiniteFeature { .. } => "reject-input",
            OsrError::Diverged { .. } => "retry-later",
            OsrError::Internal(_) => "page-oncall",
            _ => "unknown-failure",
        }
    }

    assert_eq!(triage(&OsrError::EmptyBatch), "reject-input");
    assert_eq!(
        triage(&OsrError::DimensionMismatch { point: 0, expected: 2, got: 3 }),
        "reject-input"
    );
    assert_eq!(triage(&OsrError::NonFiniteFeature { point: 0, coord: 0 }), "reject-input");
    assert_eq!(triage(&OsrError::Diverged { attempts: 1, reason: "x".into() }), "retry-later");
    assert_eq!(triage(&OsrError::Internal("x".into())), "page-oncall");
    assert_eq!(triage(&OsrError::InvalidConfig("x".into())), "unknown-failure");
}

#[test]
fn errors_are_std_errors_with_stable_equality() {
    let a = OsrError::DimensionMismatch { point: 1, expected: 2, got: 3 };
    let b = OsrError::DimensionMismatch { point: 1, expected: 2, got: 3 };
    assert_eq!(a, b);
    let boxed: Box<dyn std::error::Error> = Box::new(a);
    assert!(boxed.source().is_none(), "admission errors are leaf errors");
}
