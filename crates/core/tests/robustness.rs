//! Property-based robustness: `classify_detailed` must never panic, no
//! matter how hostile the batch — empty, singleton, duplicated points,
//! ragged dimensions, NaN/±∞ coordinates, magnitudes near the f64 edge.
//! Malformed input must come back as a typed error; admissible input must
//! come back as a full outcome with one prediction per point (or a typed
//! divergence), under both serving modes.

// Test code: the crate-level unwrap/expect ban targets serving paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::OnceLock;

use hdp_osr_core::{HdpOsr, HdpOsrConfig, OsrError, ServingMode};
use osr_dataset::protocol::TrainSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small 2-D training set: two tight, well-separated classes.
fn train_set() -> TrainSet {
    let class = |cx: f64, cy: f64| -> Vec<Vec<f64>> {
        (0..12)
            .map(|i| {
                let jx = f64::from(i % 3) * 0.2 - 0.2;
                let jy = f64::from(i % 4) * 0.15 - 0.2;
                vec![cx + jx, cy + jy]
            })
            .collect()
    };
    TrainSet { class_ids: vec![1, 2], classes: vec![class(-5.0, 0.0), class(5.0, 0.0)] }
}

fn models() -> &'static (HdpOsr, HdpOsr) {
    static MODELS: OnceLock<(HdpOsr, HdpOsr)> = OnceLock::new();
    MODELS.get_or_init(|| {
        let train = train_set();
        let fit = |serving| {
            let config =
                HdpOsrConfig { iterations: 3, decision_sweeps: 2, serving, ..Default::default() };
            HdpOsr::fit(&config, &train).expect("clean training set must fit")
        };
        (fit(ServingMode::WarmStart), fit(ServingMode::ColdStart))
    })
}

/// A coordinate drawn from the full hostile spectrum: ordinary values,
/// non-finite values, and finite values of extreme magnitude.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -8.0f64..8.0,
        Just(0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(1e300),
        Just(-1e300),
        Just(1e-300),
    ]
}

prop_compose! {
    /// Batches of 0–6 points with independently drawn dimensions (0–4), so
    /// empty batches, empty points, and ragged dimension mixes all occur,
    /// optionally with the first point duplicated.
    fn hostile_batch()(
        points in prop::collection::vec(prop::collection::vec(coord(), 0..5), 0..7),
        dup in 0usize..3,
    ) -> Vec<Vec<f64>> {
        let mut batch = points;
        if let Some(first) = batch.first().cloned() {
            for _ in 0..dup {
                batch.push(first.clone());
            }
        }
        batch
    }
}

/// The only acceptable behaviours: a full outcome sized to the batch, or a
/// typed error. Reaching the end of this function at all proves no panic.
fn assert_serves_or_rejects(model: &HdpOsr, batch: &[Vec<f64>], seed: u64) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    match model.classify_detailed(batch, &mut rng) {
        Ok(outcome) => {
            prop_assert_eq!(outcome.predictions.len(), batch.len());
            prop_assert_eq!(outcome.test_dishes.len(), batch.len());
            prop_assert_eq!(outcome.attempts, 1);
        }
        Err(
            OsrError::EmptyBatch
            | OsrError::DimensionMismatch { .. }
            | OsrError::NonFiniteFeature { .. }
            | OsrError::Diverged { .. },
        ) => {}
        Err(other) => {
            return Err(TestCaseError::Fail(format!("unexpected error class: {other}")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_serving_never_panics(batch in hostile_batch(), seed in 0u64..1_000_000) {
        assert_serves_or_rejects(&models().0, &batch, seed)?;
    }

    #[test]
    fn cold_serving_never_panics(batch in hostile_batch(), seed in 0u64..1_000_000) {
        assert_serves_or_rejects(&models().1, &batch, seed)?;
    }
}
