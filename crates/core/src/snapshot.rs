//! Durable snapshot persistence for fitted models: atomic last-good-wins
//! writes, corruption-safe loads, and the crash-recovery entry point the
//! serving layer degrades onto.
//!
//! A [`SnapshotStore`] names one on-disk snapshot file and guarantees:
//!
//! * **Atomicity** — [`SnapshotStore::save`] writes a temp file in the same
//!   directory, fsyncs it, renames it over the target, and fsyncs the
//!   directory. A crash at any point leaves either the previous last-good
//!   snapshot or the new one, never a torn file.
//! * **Determinism** — the byte output is a pure function of the model's
//!   canonical posterior state (see [`osr_stats::snapshot`]): saving twice,
//!   or saving a model loaded from the file, produces identical bytes.
//! * **Typed failure** — every corruption mode (truncation, bit-flips,
//!   version skew, dimension/method mismatch) surfaces as
//!   [`OsrError::Snapshot`] wrapping a typed
//!   [`SnapshotError`](osr_stats::snapshot::SnapshotError); loading never
//!   panics.
//!
//! What is persisted: the converged posterior checkpoint (seating, dish
//! bank, concentrations), the training groups, and the full
//! [`HdpOsrConfig`]. What is deliberately **not** persisted: the fit-time
//! sweep trace and convergence diagnostics — they are observability about
//! how the checkpoint was reached, not serving state, so a reloaded model's
//! [`crate::HdpOsr::fit_report`] carries an empty trace while every serve
//! decision stays bit-identical to the original model's.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::Serialize;

use osr_hdp::PosteriorSnapshot;
use osr_stats::snapshot::{
    Dec, Enc, SnapResult, SnapshotError, SnapshotFile, SnapshotWriter,
};
use osr_stats::SNAPSHOT_FORMAT_VERSION;

use crate::collective::CDOSR_METHOD;
use crate::model::{HdpOsr, HdpOsrConfig};
use crate::observability::FitReport;
use crate::serving::{self, ServingMode, WarmState};
use crate::{OsrError, Result};

/// Section id of the serving-layer configuration ([`HdpOsrConfig`]).
/// Core-owned section ids live at 64+; the HDP posterior sections occupy
/// the low ids (see `osr-hdp`'s persist module).
pub const SEC_CORE_CONFIG: u32 = 64;

/// Header-level description of one snapshot file, as reported by
/// [`SnapshotStore::inspect`] and returned from [`SnapshotStore::save`].
/// The `format_version` field always carries [`SNAPSHOT_FORMAT_VERSION`]
/// for files this build wrote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SnapshotInfo {
    /// Container format version ([`SNAPSHOT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Method tag of the writer (e.g. `"cdosr"`).
    pub method: String,
    /// Feature dimension of the persisted model.
    pub dim: usize,
    /// Number of sections in the container.
    pub n_sections: usize,
    /// Total container size in bytes.
    pub bytes: usize,
}

/// Atomic persistence of last-good model snapshots at one path.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    path: PathBuf,
}

impl SnapshotStore {
    /// A store over `path` (nothing is touched until the first save).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The snapshot file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a snapshot file currently exists at the store's path.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Serialize `model` and atomically persist it as the new last-good
    /// snapshot.
    ///
    /// # Errors
    /// [`OsrError::Snapshot`] when the model keeps no checkpoint (cold
    /// start) or on any I/O failure — in which case the previous last-good
    /// file, if any, is still intact.
    pub fn save(&self, model: &HdpOsr) -> Result<SnapshotInfo> {
        let bytes = encode_model(model)?;
        self.save_bytes(&bytes)?;
        osr_stats::counters::record_snapshot_save();
        let file = SnapshotFile::parse(&bytes).map_err(OsrError::Snapshot)?;
        Ok(SnapshotInfo {
            format_version: SNAPSHOT_FORMAT_VERSION,
            method: file.method().to_string(),
            dim: file.dim(),
            n_sections: file.n_sections(),
            bytes: bytes.len(),
        })
    }

    /// Atomically replace the store's file with `bytes`: write a temp file
    /// in the same directory, fsync it, rename it over the target, fsync
    /// the directory. A crash mid-save leaves the previous file untouched.
    ///
    /// # Errors
    /// [`OsrError::Snapshot`] wrapping `Io` on any filesystem failure.
    pub fn save_bytes(&self, bytes: &[u8]) -> Result<()> {
        let io = |stage: &'static str, e: std::io::Error| {
            OsrError::Snapshot(SnapshotError::Io(format!("{stage} {}: {e}", self.path.display())))
        };
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| io("creating parent of", e))?;
        }
        let tmp = self.temp_path();
        let mut file = fs::File::create(&tmp).map_err(|e| io("creating temp for", e))?;
        file.write_all(bytes).map_err(|e| io("writing temp for", e))?;
        file.sync_all().map_err(|e| io("syncing temp for", e))?;
        #[cfg(feature = "fault-inject")]
        if osr_stats::faults::hit(osr_stats::faults::sites::SNAPSHOT_SAVE)
            == Some(osr_stats::faults::Fault::Corrupt)
        {
            // Simulated mid-save crash: the temp file is cut short and the
            // rename never happens — the last-good file stays authoritative,
            // exactly as after a real power loss between write and rename.
            let _ = file.set_len((bytes.len() / 2) as u64);
            let _ = file.sync_all();
            drop(file);
            return Err(OsrError::Snapshot(SnapshotError::Io(
                "injected mid-save crash before rename".to_string(),
            )));
        }
        drop(file);
        fs::rename(&tmp, &self.path).map_err(|e| io("renaming temp over", e))?;
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            // Persist the rename itself; without the directory fsync a
            // crash can forget the new directory entry.
            if let Ok(dir) = fs::File::open(parent) {
                dir.sync_all().map_err(|e| io("syncing parent of", e))?;
            }
        }
        Ok(())
    }

    /// Read and fully decode the last-good snapshot into a servable model.
    ///
    /// # Errors
    /// [`OsrError::Snapshot`] with the typed corruption variant — never a
    /// panic — for truncation, bit-flips, version skew, dimension or method
    /// mismatch, and I/O failure. Failures bump the
    /// `snapshot.load_failures` counter; successes bump `snapshot.loads`.
    pub fn load(&self) -> Result<HdpOsr> {
        let result = self.load_inner();
        match &result {
            Ok(_) => osr_stats::counters::record_snapshot_load(),
            Err(_) => osr_stats::counters::record_snapshot_load_failure(),
        }
        result
    }

    fn load_inner(&self) -> Result<HdpOsr> {
        let bytes = self.load_bytes()?;
        decode_model(&bytes).map_err(OsrError::Snapshot)
    }

    /// Read the raw snapshot bytes without decoding.
    ///
    /// # Errors
    /// [`OsrError::Snapshot`] wrapping `Io` when the file cannot be read.
    pub fn load_bytes(&self) -> Result<Vec<u8>> {
        #[allow(unused_mut)]
        let mut bytes = fs::read(&self.path).map_err(|e| {
            OsrError::Snapshot(SnapshotError::Io(format!(
                "reading {}: {e}",
                self.path.display()
            )))
        })?;
        #[cfg(feature = "fault-inject")]
        if osr_stats::faults::hit(osr_stats::faults::sites::SNAPSHOT_LOAD)
            == Some(osr_stats::faults::Fault::Corrupt)
        {
            // Deterministic in-flight corruption: flip one payload bit past
            // the preamble, as a failing disk or DMA error would.
            let idx = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(idx) {
                *b ^= 0x01;
            }
        }
        Ok(bytes)
    }

    /// Parse and integrity-check the on-disk container without rebuilding
    /// the model — a cheap health probe for fleet supervisors.
    ///
    /// # Errors
    /// Same taxonomy as [`SnapshotStore::load`].
    pub fn inspect(&self) -> Result<SnapshotInfo> {
        let bytes = self.load_bytes()?;
        let file = SnapshotFile::parse(&bytes).map_err(OsrError::Snapshot)?;
        Ok(SnapshotInfo {
            format_version: file.version(),
            method: file.method().to_string(),
            dim: file.dim(),
            n_sections: file.n_sections(),
            bytes: bytes.len(),
        })
    }

    fn temp_path(&self) -> PathBuf {
        let mut name = self.path.file_name().map_or_else(
            || std::ffi::OsString::from("snapshot"),
            std::ffi::OsStr::to_os_string,
        );
        name.push(".tmp");
        self.path.with_file_name(name)
    }
}

/// Serialize a fitted warm-start model into the canonical container bytes.
///
/// # Errors
/// [`OsrError::Snapshot`] when the model was fitted cold and keeps no
/// posterior checkpoint to persist.
pub fn encode_model(model: &HdpOsr) -> Result<Vec<u8>> {
    let Some(snap) = model.snapshot() else {
        return Err(OsrError::Snapshot(SnapshotError::Malformed(
            "cold-start model keeps no posterior checkpoint to persist".to_string(),
        )));
    };
    let mut w = SnapshotWriter::new(CDOSR_METHOD, model.dim());
    let mut enc = Enc::new();
    encode_config(model.config(), &mut enc);
    w.section(SEC_CORE_CONFIG, enc.into_bytes());
    snap.write_sections(&mut w);
    Ok(w.finish())
}

/// Decode container bytes back into a servable warm-start model,
/// revalidating every configuration and posterior invariant.
///
/// # Errors
/// Typed [`SnapshotError`] for every corruption mode; never panics.
pub fn decode_model(bytes: &[u8]) -> SnapResult<HdpOsr> {
    let file = SnapshotFile::parse(bytes)?;
    if file.method() != CDOSR_METHOD {
        return Err(SnapshotError::MethodMismatch {
            expected: CDOSR_METHOD.to_string(),
            got: file.method().to_string(),
        });
    }
    let mut dec = Dec::new(file.section(SEC_CORE_CONFIG)?);
    let config = decode_config(&mut dec)?;
    dec.finish("core config section")?;
    config
        .validate()
        .map_err(|e| SnapshotError::Malformed(format!("HdpOsrConfig: {e}")))?;

    let snap = PosteriorSnapshot::read_sections(&file)?;
    let hdp_config = config.hdp_config();
    let snap_config = snap.config();
    if snap_config.iterations != hdp_config.iterations
        || snap_config.gamma_prior != hdp_config.gamma_prior
        || snap_config.alpha_prior != hdp_config.alpha_prior
        || snap_config.resample_concentrations != hdp_config.resample_concentrations
    {
        return Err(SnapshotError::Malformed(
            "serving config disagrees with the checkpoint's sampler config".to_string(),
        ));
    }

    let classes: Vec<Vec<Vec<f64>>> =
        (0..snap.n_groups()).map(|j| snap.group_points(j).to_vec()).collect();
    if classes.is_empty() {
        return Err(SnapshotError::Malformed(
            "checkpoint holds no training groups".to_string(),
        ));
    }
    let n_classes = classes.len();
    let (assoc, known_reports) =
        serving::associate(config.varrho, n_classes, |c| snap.group_summary(c));
    // The fit-time sweep trace is observability, not serving state; a
    // recovered model reports an empty trace (FitReport::from_trace is
    // defined on empty traces) while serving bit-identically.
    let fit_report = FitReport::from_trace(config.train_seed, Vec::new());
    let warm = WarmState { snapshot: snap, assoc, known_reports, fit_report };
    Ok(HdpOsr::from_snapshot_parts(config, classes, warm))
}

fn encode_config(config: &HdpOsrConfig, enc: &mut Enc) {
    enc.put_f64(config.beta);
    enc.put_f64(config.nu_offset);
    enc.put_f64(config.rho);
    enc.put_f64(config.varrho);
    enc.put_usize(config.iterations);
    enc.put_f64(config.gamma_prior.0);
    enc.put_f64(config.gamma_prior.1);
    enc.put_f64(config.alpha_prior.0);
    enc.put_f64(config.alpha_prior.1);
    enc.put_bool(config.resample_concentrations);
    enc.put_usize(config.decision_sweeps);
    enc.put_u8(match config.serving {
        ServingMode::WarmStart => 0,
        ServingMode::ColdStart => 1,
    });
    enc.put_u64(config.train_seed);
}

fn decode_config(dec: &mut Dec<'_>) -> SnapResult<HdpOsrConfig> {
    Ok(HdpOsrConfig {
        beta: dec.f64("beta")?,
        nu_offset: dec.f64("nu_offset")?,
        rho: dec.f64("rho")?,
        varrho: dec.f64("varrho")?,
        iterations: dec.usize("iterations")?,
        gamma_prior: (dec.f64("gamma_prior shape")?, dec.f64("gamma_prior rate")?),
        alpha_prior: (dec.f64("alpha_prior shape")?, dec.f64("alpha_prior rate")?),
        resample_concentrations: dec.bool("resample_concentrations")?,
        decision_sweeps: dec.usize("decision_sweeps")?,
        serving: match dec.u8("serving mode")? {
            0 => ServingMode::WarmStart,
            1 => ServingMode::ColdStart,
            other => {
                return Err(SnapshotError::Malformed(format!(
                    "serving mode byte {other} is not a known mode"
                )))
            }
        },
        train_seed: dec.u64("train_seed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use osr_dataset::protocol::TrainSet;
    use osr_stats::sampling;

    fn temp_store(name: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("osr_core_snap_{}", std::process::id()));
        SnapshotStore::new(dir.join(format!("{name}.bin")))
    }

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + std * sampling::standard_normal(rng),
                    cy + std * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    fn fitted_model(serving: ServingMode) -> (HdpOsr, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(9);
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(&mut rng, 0.0, 0.0, 24, 0.4), blob(&mut rng, 8.0, 8.0, 24, 0.4)],
        };
        let mut test = blob(&mut rng, 0.0, 0.0, 6, 0.4);
        test.extend(blob(&mut rng, -8.0, 8.0, 6, 0.4));
        let config = HdpOsrConfig {
            iterations: 12,
            serving,
            train_seed: 123,
            ..HdpOsrConfig::default()
        };
        (HdpOsr::fit(&config, &train).unwrap(), test)
    }

    #[test]
    fn config_codec_roundtrip_is_bit_identical() {
        let config = HdpOsrConfig {
            beta: 1.5,
            nu_offset: 3.0,
            rho: 0.3,
            varrho: 0.02,
            iterations: 7,
            gamma_prior: (50.0, 2.0),
            alpha_prior: (5.0, 0.5),
            resample_concentrations: false,
            decision_sweeps: 2,
            serving: ServingMode::ColdStart,
            train_seed: 0xDEAD_BEEF,
        };
        let mut enc = Enc::new();
        encode_config(&config, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = decode_config(&mut dec).unwrap();
        dec.finish("config").unwrap();
        let mut enc2 = Enc::new();
        encode_config(&back, &mut enc2);
        assert_eq!(bytes, enc2.into_bytes(), "config codec must be bit-stable");
    }

    #[test]
    fn config_decode_rejects_unknown_serving_mode() {
        let mut enc = Enc::new();
        encode_config(&HdpOsrConfig::default(), &mut enc);
        let mut bytes = enc.into_bytes();
        // The serving-mode byte sits after 4 f64 + usize + 4 f64 + bool + usize.
        let off = 4 * 8 + 8 + 4 * 8 + 1 + 8;
        bytes[off] = 9;
        let mut dec = Dec::new(&bytes);
        assert!(matches!(decode_config(&mut dec), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn save_load_resave_is_byte_identical_and_serves_bit_equal() {
        let (model, test) = fitted_model(ServingMode::WarmStart);
        let store = temp_store("roundtrip");
        let info = store.save(&model).unwrap();
        assert_eq!(info.format_version, SNAPSHOT_FORMAT_VERSION);
        assert_eq!(info.method, CDOSR_METHOD);
        assert_eq!(info.dim, 2);
        assert_eq!(store.inspect().unwrap(), info);

        let reloaded = store.load().unwrap();
        // Re-saving the reloaded model reproduces the file byte-for-byte.
        let original = store.load_bytes().unwrap();
        assert_eq!(encode_model(&reloaded).unwrap(), original);

        // And the reloaded model serves bit-identically to the original.
        let a = model.classify_detailed(&test, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = reloaded.classify_detailed(&test, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.test_dishes, b.test_dishes);
        assert_eq!(a.log_likelihood.to_bits(), b.log_likelihood.to_bits());
        assert_eq!(a.gamma.to_bits(), b.gamma.to_bits());
        assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
        // The fit-time sweep trace is observability, not serving state: the
        // reloaded report exists but carries no sweeps.
        let report = reloaded.fit_report().unwrap();
        assert!(report.trace.is_empty());
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn cold_model_cannot_be_persisted() {
        let (model, _) = fitted_model(ServingMode::ColdStart);
        let store = temp_store("cold");
        let err = store.save(&model).unwrap_err();
        assert!(matches!(err, OsrError::Snapshot(SnapshotError::Malformed(_))));
        assert!(!store.exists(), "a failed save must not leave a file behind");
    }

    #[test]
    fn corruption_taxonomy_yields_typed_errors_never_panics() {
        let (model, _) = fitted_model(ServingMode::WarmStart);
        let store = temp_store("taxonomy");
        store.save(&model).unwrap();
        let good = store.load_bytes().unwrap();

        // Truncation at every eighth prefix (cheap but representative).
        for len in (0..good.len()).step_by(8) {
            assert!(decode_model(&good[..len]).is_err(), "truncated at {len} must fail");
        }
        // Version skew: patch the version field and fix up the header CRC by
        // reparsing failure (the CRC covers it, so the flip alone is a
        // checksum mismatch — both are typed, neither panics).
        let mut skew = good.clone();
        skew[8] ^= 0x02;
        assert!(matches!(
            decode_model(&skew),
            Err(SnapshotError::ChecksumMismatch { .. } | SnapshotError::VersionSkew { .. })
        ));
        // A flipped payload byte is caught by a section checksum.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(decode_model(&flipped).is_err());
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let store = temp_store("never_written");
        assert!(matches!(store.load(), Err(OsrError::Snapshot(SnapshotError::Io(_)))));
        assert!(matches!(store.inspect(), Err(OsrError::Snapshot(SnapshotError::Io(_)))));
    }
}
