//! New-class discovery (paper §4.3, Tables 1–2).
//!
//! Subclasses that the test group uses but no known class does are *new*
//! subclasses; because unknown categories arrive unlabeled, each discovered
//! category initially lives at subclass granularity. Eq. 11 turns the counts
//! into a rough estimate Δ of how many real unknown categories are present,
//! by assuming unknown classes fragment into about as many subclasses as the
//! known classes do on average:
//!
//! ```text
//! Δ = ⌊ |S_unknown| / (|S_known| / (J − 1)) + 0.5 ⌋
//! ```

use serde::{Deserialize, Serialize};

use osr_hdp::DishId;

/// Subclass composition of one group (a known class or the test set):
/// the dishes it uses after ϱ-pruning, with their within-group proportions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSubclasses {
    /// Display name ("Class1", …, "Testing-Set").
    pub name: String,
    /// `(dish id, item count, proportion within the group)` for every
    /// surviving subclass, sorted by descending proportion.
    pub subclasses: Vec<(DishId, usize, f64)>,
}

impl GroupSubclasses {
    /// Number of surviving subclasses (the `# Subclass` column).
    pub fn n_subclasses(&self) -> usize {
        self.subclasses.len()
    }
}

/// The Tables 1–2 report: per-group subclass structure plus the Δ estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubclassReport {
    /// One entry per known class, in training-class order.
    pub known: Vec<GroupSubclasses>,
    /// The test group's subclasses that are associated with known classes.
    pub test_known: Vec<(DishId, usize, f64)>,
    /// The test group's *new* subclasses (no known-class association).
    pub test_new: Vec<(DishId, usize, f64)>,
    /// Fraction of test items on known-associated subclasses.
    pub test_known_proportion: f64,
    /// Fraction of test items on new subclasses.
    pub test_new_proportion: f64,
    /// Eq. 11 estimate of the number of unknown categories.
    pub delta_estimate: usize,
}

impl SubclassReport {
    /// `|S_known|`: total subclasses associated with known classes.
    pub fn n_known_subclasses(&self) -> usize {
        self.known.iter().map(GroupSubclasses::n_subclasses).sum()
    }

    /// `|S_unknown|`: new subclasses discovered in the test group.
    pub fn n_new_subclasses(&self) -> usize {
        self.test_new.len()
    }

    /// Render in the layout of the paper's Tables 1–2.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{:<14} {:>10}  Subclasses (id: %)", "Group", "# Subclass");
        for g in &self.known {
            let cells: Vec<String> = g
                .subclasses
                .iter()
                .map(|(id, _, p)| format!("S{id}: {:.2}%", p * 100.0))
                .collect();
            let _ = writeln!(out, "{:<14} {:>10}  {}", g.name, g.n_subclasses(), cells.join("  "));
        }
        let _ = writeln!(
            out,
            "{:<14} {:>10}  Known subclasses (#: {}) {:.2}% | New subclasses (#: {}) {:.2}%",
            "Testing-Set",
            self.test_known.len() + self.test_new.len(),
            self.test_known.len(),
            self.test_known_proportion * 100.0,
            self.test_new.len(),
            self.test_new_proportion * 100.0,
        );
        let _ = writeln!(out, "Estimated unknown categories (Eq. 11): Δ = {}", self.delta_estimate);
        out
    }
}

/// Eq. 11: estimate the number of unknown categories.
///
/// Returns 0 when there are no new subclasses or no known subclasses to
/// calibrate against.
pub fn estimate_unknown_classes(
    n_unknown_subclasses: usize,
    n_known_subclasses: usize,
    n_known_classes: usize,
) -> usize {
    if n_unknown_subclasses == 0 || n_known_subclasses == 0 || n_known_classes == 0 {
        return 0;
    }
    let per_class = n_known_subclasses as f64 / n_known_classes as f64;
    (n_unknown_subclasses as f64 / per_class + 0.5).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq12_worked_example_from_the_paper() {
        // USPS: |S_unknown| = 14, |S_known| = 19, J − 1 = 5 ⇒ Δ = 4.
        assert_eq!(estimate_unknown_classes(14, 19, 5), 4);
    }

    #[test]
    fn table2_pendigits_example() {
        // PENDIGITS: |S_unknown| = 32, |S_known| = 43, J − 1 = 5
        // ⇒ 32 / 8.6 + 0.5 = 4.22 ⇒ Δ = 4.
        assert_eq!(estimate_unknown_classes(32, 43, 5), 4);
    }

    #[test]
    fn zero_cases_return_zero() {
        assert_eq!(estimate_unknown_classes(0, 19, 5), 0);
        assert_eq!(estimate_unknown_classes(5, 0, 5), 0);
        assert_eq!(estimate_unknown_classes(5, 19, 0), 0);
    }

    #[test]
    fn uniform_fragmentation_recovers_exact_count() {
        // 3 subclasses per known class, 4 known classes, 12 unknown
        // subclasses ⇒ exactly 4 unknown classes.
        assert_eq!(estimate_unknown_classes(12, 12, 4), 4);
    }

    #[test]
    fn report_table_renders() {
        let report = SubclassReport {
            known: vec![GroupSubclasses {
                name: "Class1".into(),
                subclasses: vec![(13, 98, 0.9867)],
            }],
            test_known: vec![(13, 50, 0.5)],
            test_new: vec![(21, 50, 0.5)],
            test_known_proportion: 0.5,
            test_new_proportion: 0.5,
            delta_estimate: 1,
        };
        let t = report.to_table();
        assert!(t.contains("Class1"));
        assert!(t.contains("S13: 98.67%"));
        assert!(t.contains("Δ = 1"));
        assert_eq!(report.n_known_subclasses(), 1);
        assert_eq!(report.n_new_subclasses(), 1);
    }
}
