//! The multi-tenant micro-batch front-end: coalesce singleton requests
//! into collective-decision batches, deterministically.
//!
//! The paper's decision rule is *collective* — it needs a batch of test
//! points to co-cluster — but production traffic arrives as singleton
//! requests. This module rebuilds the batches: each tenant gets a queue;
//! requests admitted into a queue coalesce until either the queue reaches
//! [`FrontendConfig::max_batch`] (**flush on size**) or the oldest queued
//! request has waited [`FrontendConfig::max_delay_ns`] (**flush on
//! deadline**, the latency SLO). A flushed [`MicroBatch`] is scheduled onto
//! worker threads earliest-deadline-first and served through the full
//! [`BatchServer`] fault-tolerance ladder (admission → watchdogged attempts
//! → retry-with-reseed → degrade), one seeded serve per micro-batch.
//!
//! # Determinism
//!
//! The front-end never reads a wall clock: callers supply virtual time
//! (`now_ns`) on every transition, flush decisions happen on the caller
//! thread in script order, and the batch seed is a pure function of the
//! flush's identity — [`flush_seed`]`(base_seed, tenant, flush_epoch)`
//! routes a per-tenant FNV-1a hash through [`derive_batch_seed`]. Dispatch
//! workers only *execute* already-sealed micro-batches, and flush traces
//! are emitted after the worker scope in flush-sequence order, so the
//! trace stream is byte-identical under any worker count and any arrival
//! interleaving that produces the same per-tenant queues.
//!
//! # Admission and fairness
//!
//! Per-request admission (dimension + finiteness) happens at enqueue with
//! the same typed errors as batch admission. Fairness is per-tenant
//! backpressure: each tenant may hold at most
//! [`FrontendConfig::max_queue_depth`] undispatched requests — the request
//! past that bound is *shed* with a typed [`OsrError::Overloaded`], never
//! blocked, so one tenant's flood cannot grow another tenant's latency
//! unboundedly. Across tenants the run queue is ordered
//! `(deadline, flush_seq)`, so the oldest SLO is always served first.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::admission;
use crate::collective::CollectiveModel;
use crate::decision::{ClassifyOutcome, Prediction};
use crate::observability::{FlushTrace, FlushTrigger, TraceRecord, TraceSink};
use crate::registry::ModelRegistry;
use crate::serving::{derive_batch_seed, panic_message, BatchServer, ServePolicy};
use crate::{OsrError, Result};

/// Static configuration of a [`Frontend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfig {
    /// Feature dimension every request must carry (checked at enqueue).
    pub dim: usize,
    /// Flush a tenant queue as soon as it holds this many requests.
    pub max_batch: usize,
    /// Latency SLO in virtual nanoseconds: a queue whose oldest request
    /// has waited this long is flushed by the next [`Frontend::poll`].
    pub max_delay_ns: u64,
    /// Per-tenant bound on undispatched requests (queued + flushed but not
    /// yet dispatched); the request past it is shed with a typed error.
    pub max_queue_depth: usize,
    /// Base seed every flush seed is derived from (see [`flush_seed`]).
    pub base_seed: u64,
}

impl FrontendConfig {
    fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(OsrError::InvalidConfig("frontend dim must be ≥ 1".to_string()));
        }
        if self.max_batch == 0 {
            return Err(OsrError::InvalidConfig("frontend max_batch must be ≥ 1".to_string()));
        }
        if self.max_queue_depth < self.max_batch {
            return Err(OsrError::InvalidConfig(
                "frontend max_queue_depth must be ≥ max_batch".to_string(),
            ));
        }
        Ok(())
    }
}

/// One admitted singleton request, waiting in its tenant queue.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Globally unique request id, assigned at enqueue.
    pub id: u64,
    /// The feature vector.
    pub point: Vec<f64>,
    /// Virtual time the request was enqueued at.
    pub submitted_ns: u64,
}

/// A sealed batch of coalesced requests, ready for dispatch.
#[derive(Debug, Clone)]
pub struct MicroBatch {
    /// Global flush sequence number (0-based, across all tenants).
    pub flush_seq: u64,
    /// Tenant whose queue produced the batch.
    pub tenant: String,
    /// Per-tenant flush epoch (0-based).
    pub flush_epoch: u64,
    /// The batch's RNG seed, [`flush_seed`]`(base_seed, tenant, epoch)`.
    pub seed: u64,
    /// What fired the flush.
    pub trigger: FlushTrigger,
    /// SLO deadline: the oldest member's `submitted_ns + max_delay_ns`.
    pub deadline_ns: u64,
    /// Virtual time the flush happened at.
    pub flushed_at_ns: u64,
    /// The coalesced requests, in arrival order.
    pub requests: Vec<QueuedRequest>,
}

/// The answer to one coalesced request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request this answers.
    pub request_id: u64,
    /// Per-request trace id: the flush's [`flush_trace_id`] plus the
    /// request's offset within the micro-batch — unique per request.
    pub trace_id: String,
    /// Virtual queue wait (flush time − submit time).
    pub queue_wait_ns: u64,
    /// The prediction, or the typed error that failed the micro-batch.
    pub result: Result<Prediction>,
}

/// Everything one dispatched micro-batch produced.
#[derive(Debug)]
pub struct FlushOutcome {
    /// Global flush sequence number of the micro-batch.
    pub flush_seq: u64,
    /// Tenant the batch belonged to.
    pub tenant: String,
    /// Per-tenant flush epoch.
    pub flush_epoch: u64,
    /// What fired the flush.
    pub trigger: FlushTrigger,
    /// Reproducible flush trace id ([`flush_trace_id`]).
    pub trace_id: String,
    /// The seed the batch was served under.
    pub seed: u64,
    /// The collective decision for the whole micro-batch, or the typed
    /// error every waiter received.
    pub outcome: Result<ClassifyOutcome>,
    /// One response per coalesced request, in arrival order — every waiter
    /// is answered exactly once, success or failure.
    pub responses: Vec<Response>,
}

#[derive(Debug, Default)]
struct TenantQueue {
    pending: Vec<QueuedRequest>,
    flush_epoch: u64,
    /// Requests admitted but not yet dispatched (pending + sealed).
    outstanding: usize,
}

/// The multi-tenant coalescing front-end. See the module docs for the
/// flush semantics, determinism and fairness contracts.
pub struct Frontend {
    config: FrontendConfig,
    queues: BTreeMap<String, TenantQueue>,
    ready: Vec<MicroBatch>,
    next_flush_seq: u64,
    next_request_id: u64,
}

/// Per-tenant seed root: FNV-1a over the tenant name, folded with the
/// front-end base seed.
fn tenant_seed(base_seed: u64, tenant: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in tenant.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ base_seed
}

/// The RNG seed of tenant `tenant`'s flush number `flush_epoch` under
/// `base_seed`: the tenant's FNV-1a seed root pushed through
/// [`derive_batch_seed`] at index `flush_epoch`. A pure function of the
/// flush identity, so a coalesced batch replays bit-identically no matter
/// how arrivals interleaved across tenants or how many workers served it.
pub fn flush_seed(base_seed: u64, tenant: &str, flush_epoch: u64) -> u64 {
    derive_batch_seed(tenant_seed(base_seed, tenant), usize::try_from(flush_epoch).unwrap_or(0))
}

/// The reproducible trace id of a flush — a pure function of the flush
/// identity, mirroring [`crate::observability::batch_trace_id`].
pub fn flush_trace_id(tenant: &str, flush_epoch: u64, seed: u64) -> String {
    format!("flush-{tenant}-{flush_epoch:04}-seed-{seed:016x}")
}

/// Run `f` with the front-end fault context (flush or request sequence,
/// attempt 0) published on this thread (no-op without `fault-inject`).
fn with_frontend_fault_context<T>(_seq: usize, f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "fault-inject")]
    {
        osr_stats::faults::with_context(_seq, 0, f)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        f()
    }
}

impl Frontend {
    /// A front-end with no queued state.
    ///
    /// # Errors
    /// [`OsrError::InvalidConfig`] when the configuration is degenerate
    /// (zero dimension/batch size, or a queue bound below the batch size).
    pub fn new(config: FrontendConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            queues: BTreeMap::new(),
            ready: Vec::new(),
            next_flush_seq: 0,
            next_request_id: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Requests sitting in tenant queues (not yet sealed into a batch).
    pub fn pending_requests(&self) -> usize {
        self.queues.values().map(|q| q.pending.len()).sum()
    }

    /// Sealed micro-batches awaiting dispatch.
    pub fn ready_batches(&self) -> usize {
        self.ready.len()
    }

    /// Requests admitted but not yet dispatched, across all tenants (the
    /// value published to the `frontend.queue_depth` gauge).
    pub fn queue_depth(&self) -> usize {
        self.queues.values().map(|q| q.outstanding).sum()
    }

    /// Admit one singleton request for `tenant` at virtual time `now_ns`,
    /// returning its globally unique request id. May seal the tenant's
    /// queue into a size-triggered [`MicroBatch`] as a side effect.
    ///
    /// # Errors
    /// Typed admission errors for malformed points
    /// ([`OsrError::DimensionMismatch`] / [`OsrError::NonFiniteFeature`]),
    /// and [`OsrError::Overloaded`] when the tenant's undispatched backlog
    /// is at `max_queue_depth` — the request is shed, never blocked.
    pub fn enqueue(&mut self, tenant: &str, point: Vec<f64>, now_ns: u64) -> Result<u64> {
        admission::validate_batch(self.config.dim, std::slice::from_ref(&point))?;
        let request_id = self.next_request_id;
        // Any fault installed at the enqueue site forces the shed path, so
        // the typed-overload contract is testable without a real flood.
        let forced_shed = with_frontend_fault_context(
            usize::try_from(request_id).unwrap_or(0),
            || {
                #[cfg(feature = "fault-inject")]
                {
                    osr_stats::faults::hit(osr_stats::faults::sites::FRONTEND_ENQUEUE).is_some()
                }
                #[cfg(not(feature = "fault-inject"))]
                {
                    false
                }
            },
        );
        let should_flush = {
            let queue = self.queues.entry(tenant.to_string()).or_default();
            if forced_shed || queue.outstanding >= self.config.max_queue_depth {
                osr_stats::counters::record_frontend_shed();
                return Err(OsrError::Overloaded {
                    tenant: tenant.to_string(),
                    depth: queue.outstanding,
                });
            }
            self.next_request_id += 1;
            queue.outstanding += 1;
            queue.pending.push(QueuedRequest { id: request_id, point, submitted_ns: now_ns });
            osr_stats::counters::record_frontend_enqueued();
            queue.pending.len() >= self.config.max_batch
        };
        if should_flush {
            self.flush_tenant(tenant, FlushTrigger::Size, now_ns);
        }
        self.publish_depth();
        Ok(request_id)
    }

    /// Advance virtual time: seal every tenant queue whose oldest request
    /// has hit the SLO deadline (`submitted_ns + max_delay_ns ≤ now_ns`).
    /// Returns the number of deadline flushes fired.
    pub fn poll(&mut self, now_ns: u64) -> usize {
        let due: Vec<String> = self
            .queues
            .iter()
            .filter(|(_, q)| {
                q.pending
                    .first()
                    .is_some_and(|r| r.submitted_ns.saturating_add(self.config.max_delay_ns) <= now_ns)
            })
            .map(|(tenant, _)| tenant.clone())
            .collect();
        let mut flushed = 0;
        for tenant in due {
            if self.flush_tenant(&tenant, FlushTrigger::Deadline, now_ns) {
                flushed += 1;
            }
        }
        if flushed > 0 {
            self.publish_depth();
        }
        flushed
    }

    /// Drain: seal every non-empty tenant queue regardless of size or
    /// deadline (counted as deadline flushes). Returns the number sealed.
    pub fn flush_all(&mut self, now_ns: u64) -> usize {
        let tenants: Vec<String> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.pending.is_empty())
            .map(|(tenant, _)| tenant.clone())
            .collect();
        let mut flushed = 0;
        for tenant in tenants {
            if self.flush_tenant(&tenant, FlushTrigger::Deadline, now_ns) {
                flushed += 1;
            }
        }
        if flushed > 0 {
            self.publish_depth();
        }
        flushed
    }

    /// Seal `tenant`'s pending queue into a ready micro-batch.
    fn flush_tenant(&mut self, tenant: &str, trigger: FlushTrigger, now_ns: u64) -> bool {
        let flush_seq = self.next_flush_seq;
        let Some(queue) = self.queues.get_mut(tenant) else { return false };
        if queue.pending.is_empty() {
            return false;
        }
        let requests = std::mem::take(&mut queue.pending);
        let flush_epoch = queue.flush_epoch;
        queue.flush_epoch += 1;
        self.next_flush_seq += 1;
        let seed = flush_seed(self.config.base_seed, tenant, flush_epoch);
        let deadline_ns = requests
            .first()
            .map_or(now_ns, |r| r.submitted_ns)
            .saturating_add(self.config.max_delay_ns);
        match trigger {
            FlushTrigger::Size => osr_stats::counters::record_frontend_flush_size(),
            FlushTrigger::Deadline => osr_stats::counters::record_frontend_flush_deadline(),
        }
        self.ready.push(MicroBatch {
            flush_seq,
            tenant: tenant.to_string(),
            flush_epoch,
            seed,
            trigger,
            deadline_ns,
            flushed_at_ns: now_ns,
            requests,
        });
        true
    }

    /// Serve every ready micro-batch and answer its waiters.
    ///
    /// Scheduling is earliest-deadline-first with the flush sequence as the
    /// deterministic tie-break; `workers` threads pull from that order via
    /// work stealing. Models are resolved from `registry` *sequentially in
    /// schedule order* before any worker starts, so LRU eviction and cold
    /// loads never depend on thread timing. Each micro-batch is served on
    /// its worker thread through [`BatchServer::serve_seeded`] under the
    /// flush's derived seed — panics, divergence and admission failures
    /// stay confined to that micro-batch, and its waiters all receive the
    /// same typed error while sibling tenants' batches finish untouched.
    ///
    /// Flush traces go to `sink` after the worker scope, ordered by flush
    /// sequence; the returned outcomes are in the same order.
    pub fn dispatch(
        &mut self,
        registry: &ModelRegistry,
        workers: usize,
        policy: &ServePolicy,
        sink: Option<&Arc<dyn TraceSink>>,
    ) -> Vec<FlushOutcome> {
        let mut run = std::mem::take(&mut self.ready);
        if run.is_empty() {
            return Vec::new();
        }
        run.sort_by(|a, b| {
            a.deadline_ns.cmp(&b.deadline_ns).then(a.flush_seq.cmp(&b.flush_seq))
        });
        // Deterministic registry traffic: resolve in schedule order on the
        // caller thread, before any worker can race a cold load.
        let resolved: Vec<Result<Arc<dyn CollectiveModel>>> =
            run.iter().map(|mb| registry.resolve(&mb.tenant)).collect();

        let n = run.len();
        let slots: Mutex<Vec<Option<ServedFlush>>> = Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let scope_result = crossbeam::thread::scope(|s| {
            for _ in 0..workers.max(1).min(n) {
                s.spawn(|_| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(mb) = run.get(idx) else { break };
                    let served = match resolved.get(idx) {
                        Some(Ok(model)) => serve_micro_batch(mb, model.as_ref(), policy),
                        Some(Err(e)) => (failed_flush(mb, e.clone()), None),
                        None => (
                            failed_flush(
                                mb,
                                OsrError::Internal(
                                    "micro-batch had no resolved model slot".to_string(),
                                ),
                            ),
                            None,
                        ),
                    };
                    if let Some(slot) = slots.lock().get_mut(idx) {
                        *slot = Some(served);
                    }
                });
            }
        });
        if scope_result.is_err() {
            // Unreachable with the per-micro-batch catch_unwind below, but
            // never panic over it: unclaimed slots become typed errors.
        }

        let mut outcomes: Vec<FlushOutcome> = Vec::with_capacity(n);
        let mut traces: Vec<FlushTrace> = Vec::new();
        for (idx, slot) in slots.into_inner().into_iter().enumerate() {
            let (outcome, trace) = match (slot, run.get(idx)) {
                (Some(served), _) => served,
                (None, Some(mb)) => (
                    failed_flush(
                        mb,
                        OsrError::Internal(
                            "micro-batch slot was never claimed by a worker".to_string(),
                        ),
                    ),
                    None,
                ),
                (None, None) => continue,
            };
            outcomes.push(outcome);
            traces.extend(trace);
        }
        // Flush-sequence order everywhere the outside world looks: the
        // returned outcomes and the emitted trace stream are both pure
        // functions of the arrival script, independent of worker count.
        outcomes.sort_by_key(|o| o.flush_seq);
        if let Some(sink) = sink {
            traces.sort_by_key(|t| t.batch.batch);
            for trace in traces {
                sink.record(&TraceRecord::Flush(trace));
            }
        }
        // The dispatched requests no longer count against their tenants'
        // backpressure bounds.
        for mb in &run {
            if let Some(queue) = self.queues.get_mut(&mb.tenant) {
                queue.outstanding = queue.outstanding.saturating_sub(mb.requests.len());
            }
        }
        self.publish_depth();
        outcomes
    }

    fn publish_depth(&self) {
        let depth: usize = self.queues.values().map(|q| q.outstanding).sum();
        let depth_f64 = u32::try_from(depth).map_or(f64::MAX, f64::from);
        osr_stats::counters::set_frontend_queue_depth(depth_f64);
    }
}

/// A served micro-batch: the answered outcome plus its flush trace (absent
/// when the serve panicked or errored before producing one).
type ServedFlush = (FlushOutcome, Option<FlushTrace>);

/// Serve one sealed micro-batch on the calling thread, fully isolated: a
/// panic (injected or organic) becomes a typed error delivered to every
/// waiter of this batch only.
fn serve_micro_batch(
    mb: &MicroBatch,
    model: &dyn CollectiveModel,
    policy: &ServePolicy,
) -> ServedFlush {
    let points: Vec<Vec<f64>> = mb.requests.iter().map(|r| r.point.clone()).collect();
    let flush_seq = usize::try_from(mb.flush_seq).unwrap_or(0);
    let served = catch_unwind(AssertUnwindSafe(|| {
        with_frontend_fault_context(flush_seq, || {
            #[cfg(feature = "fault-inject")]
            match osr_stats::faults::hit(osr_stats::faults::sites::FRONTEND_FLUSH) {
                Some(osr_stats::faults::Fault::Panic { message }) => {
                    // osr-lint: allow(panic-path, injected fault — the per-micro-batch catch_unwind below is the system under test)
                    panic!("{message}");
                }
                Some(osr_stats::faults::Fault::DelayMs(ms)) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                _ => {}
            }
            BatchServer::with_workers(model, 1).with_policy(*policy).serve_seeded(&points, mb.seed)
        })
    }));
    osr_stats::divergence::clear();
    let (result, trace) = served.unwrap_or_else(|payload| {
        (
            Err(OsrError::Internal(format!(
                "micro-batch flush panicked: {}",
                panic_message(payload)
            ))),
            None,
        )
    });
    build_flush(mb, result, trace)
}

/// A [`FlushOutcome`] whose every waiter receives `error`.
fn failed_flush(mb: &MicroBatch, error: OsrError) -> FlushOutcome {
    build_flush(mb, Err(error), None).0
}

fn build_flush(
    mb: &MicroBatch,
    mut result: Result<ClassifyOutcome>,
    trace: Option<crate::observability::BatchTrace>,
) -> (FlushOutcome, Option<FlushTrace>) {
    let trace_id = flush_trace_id(&mb.tenant, mb.flush_epoch, mb.seed);
    if let Ok(outcome) = &mut result {
        outcome.trace_id.clone_from(&trace_id);
    }
    let responses: Vec<Response> = mb
        .requests
        .iter()
        .enumerate()
        .map(|(offset, request)| Response {
            request_id: request.id,
            trace_id: format!("{trace_id}/r{offset:03}"),
            queue_wait_ns: mb.flushed_at_ns.saturating_sub(request.submitted_ns),
            result: match &result {
                Ok(outcome) => outcome.predictions.get(offset).copied().ok_or_else(|| {
                    OsrError::Internal("micro-batch outcome lacks a prediction".to_string())
                }),
                Err(e) => Err(e.clone()),
            },
        })
        .collect();
    let flush_trace = trace.map(|mut batch| {
        batch.trace_id.clone_from(&trace_id);
        batch.batch = usize::try_from(mb.flush_seq).unwrap_or(0);
        FlushTrace {
            tenant: mb.tenant.clone(),
            flush_epoch: mb.flush_epoch,
            trigger: mb.trigger,
            requests: mb.requests.iter().map(|r| r.id).collect(),
            batch,
        }
    });
    let outcome = FlushOutcome {
        flush_seq: mb.flush_seq,
        tenant: mb.tenant.clone(),
        flush_epoch: mb.flush_epoch,
        trigger: mb.trigger,
        trace_id,
        seed: mb.seed,
        outcome: result,
        responses,
    };
    (outcome, flush_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FrontendConfig {
        FrontendConfig {
            dim: 2,
            max_batch: 4,
            max_delay_ns: 1_000,
            max_queue_depth: 8,
            base_seed: 2026,
        }
    }

    #[test]
    fn degenerate_configs_are_rejected_typed() {
        for bad in [
            FrontendConfig { dim: 0, ..config() },
            FrontendConfig { max_batch: 0, ..config() },
            FrontendConfig { max_queue_depth: 2, max_batch: 4, ..config() },
        ] {
            assert!(matches!(Frontend::new(bad), Err(OsrError::InvalidConfig(_))));
        }
    }

    #[test]
    fn enqueue_admission_mirrors_batch_admission() {
        let mut fe = Frontend::new(config()).unwrap();
        assert_eq!(
            fe.enqueue("t", vec![1.0, 2.0, 3.0], 0).unwrap_err(),
            OsrError::DimensionMismatch { point: 0, expected: 2, got: 3 }
        );
        assert_eq!(
            fe.enqueue("t", vec![1.0, f64::NAN], 0).unwrap_err(),
            OsrError::NonFiniteFeature { point: 0, coord: 1 }
        );
        assert!(fe.enqueue("t", vec![1.0, 2.0], 0).is_ok());
    }

    #[test]
    fn size_flush_fires_exactly_at_max_batch() {
        let mut fe = Frontend::new(config()).unwrap();
        for i in 0..3 {
            fe.enqueue("t", vec![0.0, f64::from(i)], 10).unwrap();
        }
        assert_eq!(fe.ready_batches(), 0, "below max_batch nothing flushes");
        fe.enqueue("t", vec![0.0, 3.0], 11).unwrap();
        assert_eq!(fe.ready_batches(), 1);
        assert_eq!(fe.pending_requests(), 0);
    }

    #[test]
    fn deadline_flush_fires_only_at_the_slo() {
        let mut fe = Frontend::new(config()).unwrap();
        fe.enqueue("t", vec![0.0, 0.0], 100).unwrap();
        assert_eq!(fe.poll(100 + 999), 0, "one tick early: no flush");
        assert_eq!(fe.poll(100 + 1_000), 1, "at the SLO: flush");
        assert_eq!(fe.ready_batches(), 1);
    }

    #[test]
    fn overload_sheds_with_a_typed_error() {
        let mut fe = Frontend::new(FrontendConfig {
            max_batch: 100,
            max_queue_depth: 100,
            ..config()
        })
        .unwrap();
        let mut shed = None;
        for i in 0..200u32 {
            if let Err(e) = fe.enqueue("t", vec![0.0, f64::from(i)], 0) {
                shed = Some((i, e));
                break;
            }
        }
        let (at, error) = shed.expect("the flood must be shed eventually");
        assert_eq!(at, 100, "shed exactly past max_queue_depth");
        assert_eq!(error, OsrError::Overloaded { tenant: "t".to_string(), depth: 100 });
        // A sibling tenant is unaffected by the flood.
        assert!(fe.enqueue("other", vec![0.0, 0.0], 0).is_ok());
    }

    #[test]
    fn flush_seeds_are_per_tenant_and_per_epoch() {
        assert_eq!(flush_seed(1, "a", 0), flush_seed(1, "a", 0));
        assert_ne!(flush_seed(1, "a", 0), flush_seed(1, "a", 1));
        assert_ne!(flush_seed(1, "a", 0), flush_seed(1, "b", 0));
        assert_ne!(flush_seed(1, "a", 0), flush_seed(2, "a", 0));
    }

    #[test]
    fn interleaved_tenants_never_mix_and_epochs_advance_per_tenant() {
        let mut fe = Frontend::new(FrontendConfig { max_batch: 2, ..config() }).unwrap();
        // a, b, a, b, a, b, a, b → two size flushes per tenant.
        for i in 0..4u32 {
            fe.enqueue("a", vec![0.0, f64::from(i)], u64::from(i)).unwrap();
            fe.enqueue("b", vec![1.0, f64::from(i)], u64::from(i)).unwrap();
        }
        assert_eq!(fe.ready_batches(), 4);
        let tenants: Vec<(String, u64)> =
            fe.ready.iter().map(|mb| (mb.tenant.clone(), mb.flush_epoch)).collect();
        assert_eq!(
            tenants,
            vec![
                ("a".to_string(), 0),
                ("b".to_string(), 0),
                ("a".to_string(), 1),
                ("b".to_string(), 1)
            ]
        );
        for mb in &fe.ready {
            let expect = if mb.tenant == "a" { 0.0 } else { 1.0 };
            assert!(mb.requests.iter().all(|r| r.point.first() == Some(&expect)));
            assert_eq!(mb.seed, flush_seed(2026, &mb.tenant, mb.flush_epoch));
        }
    }
}
