//! K-means refinement of discovered subclasses (paper §4.3).
//!
//! HDP-OSR discovers unknown categories at *subclass* granularity — the true
//! labels being unavailable, newly generated subcategories cannot be
//! aggregated by the sampler itself. The paper proposes using the Eq. 11
//! estimate Δ "as a prior for the other clustering algorithms such as
//! K-means to further discover the real categories among the unknown
//! subcategories". [`refine_unknown_classes`] implements exactly that
//! pipeline: collect the test points living on new subclasses, run K-means
//! with `k = Δ`, and return the inferred unknown-category structure.

use rand::Rng;

use osr_linalg::vector;

use crate::decision::{ClassifyOutcome, Prediction};

/// A K-means clustering result.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Lloyd's algorithm with k-means++ seeding.
///
/// Runs until assignments stabilize or `max_iter` passes. Empty clusters are
/// re-seeded on the farthest point, so exactly `k` clusters survive whenever
/// `points.len() >= k`.
///
/// # Panics
/// Panics when `k == 0` or `points` is empty.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[&[f64]],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> KMeansResult {
    assert!(k > 0, "kmeans: k must be positive");
    assert!(!points.is_empty(), "kmeans: no points");
    let k = k.min(points.len());

    let mut centroids = plus_plus_seeds(points, k, rng);
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;

    for _ in 0..max_iter.max(1) {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest(p, &centroids);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update step.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            vector::axpy(1.0, p, &mut sums[a]);
            counts[a] += 1;
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                *c = sum.iter().map(|s| s / count as f64).collect();
            }
        }
        // Re-seed empty clusters on the globally farthest point.
        for c in 0..k {
            if counts[c] == 0 {
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = dist_to_nearest(a, &centroids);
                        let db = dist_to_nearest(b, &centroids);
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i);
                if let Some(far) = far {
                    centroids[c] = points[far].to_vec();
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| vector::dist_sq(p, &centroids[a]))
        .sum();
    KMeansResult { centroids, assignment, inertia, iterations }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = (f64::INFINITY, 0usize);
    for (i, c) in centroids.iter().enumerate() {
        let d = vector::dist_sq(p, c);
        if d < best.0 {
            best = (d, i);
        }
    }
    best.1
}

fn dist_to_nearest(p: &[f64], centroids: &[Vec<f64>]) -> f64 {
    centroids.iter().map(|c| vector::dist_sq(p, c)).fold(f64::INFINITY, f64::min)
}

/// k-means++ seeding: first centroid uniform, each next one with probability
/// proportional to squared distance from the chosen set.
fn plus_plus_seeds<R: Rng + ?Sized>(points: &[&[f64]], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].to_vec());
    while centroids.len() < k {
        let weights: Vec<f64> =
            points.iter().map(|p| dist_to_nearest(p, &centroids).max(1e-300)).collect();
        let idx = osr_stats::sampling::categorical(rng, &weights);
        centroids.push(points[idx].to_vec());
    }
    centroids
}

/// One refined unknown category: its centroid and member test-point indices.
#[derive(Debug, Clone)]
pub struct RefinedUnknownClass {
    /// Centroid in feature space.
    pub centroid: Vec<f64>,
    /// Indices (into the original test batch) of its members.
    pub members: Vec<usize>,
}

/// The paper's §4.3 pipeline: take the test points HDP-OSR rejected (they
/// live on newly discovered subclasses), and aggregate those subclasses into
/// `Δ` real unknown categories with K-means seeded by the Eq. 11 estimate.
///
/// Returns an empty vector when nothing was rejected or Δ = 0.
pub fn refine_unknown_classes<R: Rng + ?Sized>(
    outcome: &ClassifyOutcome,
    test_points: &[Vec<f64>],
    rng: &mut R,
) -> Vec<RefinedUnknownClass> {
    assert_eq!(
        outcome.predictions.len(),
        test_points.len(),
        "refine_unknown_classes: outcome does not match the test batch"
    );
    let unknown_idx: Vec<usize> = outcome
        .predictions
        .iter()
        .enumerate()
        .filter_map(|(i, p)| (*p == Prediction::Unknown).then_some(i))
        .collect();
    let delta = outcome.report.delta_estimate;
    if unknown_idx.is_empty() || delta == 0 {
        return Vec::new();
    }
    let rejected: Vec<&[f64]> = unknown_idx.iter().map(|&i| test_points[i].as_slice()).collect();
    let km = kmeans(&rejected, delta, 100, rng);
    let k = km.centroids.len();
    let mut classes: Vec<RefinedUnknownClass> = km
        .centroids
        .into_iter()
        .map(|centroid| RefinedUnknownClass { centroid, members: Vec::new() })
        .collect();
    for (local, &global) in unknown_idx.iter().enumerate() {
        let a = km.assignment[local];
        debug_assert!(a < k);
        classes[a].members.push(global);
    }
    classes.retain(|c| !c.members.is_empty());
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng, centers: &[[f64; 2]], n_per: usize, std: f64) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                pts.push(vec![
                    c[0] + std * sampling::standard_normal(rng),
                    c[1] + std * sampling::standard_normal(rng),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = blobs(&mut rng, &[[-10.0, 0.0], [10.0, 0.0], [0.0, 10.0]], 30, 0.5);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let km = kmeans(&refs, 3, 100, &mut rng);
        // Each true blob maps to exactly one k-means cluster.
        for blob in 0..3 {
            let first = km.assignment[blob * 30];
            for i in 0..30 {
                assert_eq!(km.assignment[blob * 30 + i], first, "blob {blob} split");
            }
        }
        assert!(km.inertia < 30.0 * 3.0, "inertia {:.1}", km.inertia);
    }

    #[test]
    fn k_capped_at_point_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let km = kmeans(&refs, 5, 50, &mut rng);
        assert_eq!(km.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = [vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0], vec![2.0, 2.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let km = kmeans(&refs, 1, 50, &mut rng);
        assert!((km.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((km.centroids[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_is_deterministic_under_seed() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = blobs(&mut rng, &[[-5.0, 0.0], [5.0, 0.0]], 20, 1.0);
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let a = kmeans(&refs, 2, 100, &mut StdRng::seed_from_u64(9));
        let b = kmeans(&refs, 2, 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = [vec![0.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let _ = kmeans(&refs, 0, 10, &mut rng);
    }

    #[test]
    fn refinement_aggregates_rejected_points() {
        use crate::{HdpOsr, HdpOsrConfig};
        use osr_dataset::protocol::TrainSet;
        let mut rng = StdRng::seed_from_u64(6);
        // One known class; test = knowns + two unknown clusters.
        let known = blobs(&mut rng, &[[0.0, 0.0], [8.0, 8.0]], 30, 0.5);
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![known[..30].to_vec(), known[30..].to_vec()],
        };
        let mut test = blobs(&mut rng, &[[0.0, 0.0]], 10, 0.5);
        test.extend(blobs(&mut rng, &[[-9.0, 9.0], [9.0, -9.0]], 15, 0.5));

        let cfg = HdpOsrConfig { iterations: 10, ..Default::default() };
        let model = HdpOsr::fit(&cfg, &train).unwrap();
        let outcome = model.classify_detailed(&test, &mut rng).unwrap();
        let refined = refine_unknown_classes(&outcome, &test, &mut rng);

        // Members must exactly cover the rejected points.
        let rejected: Vec<usize> = outcome
            .predictions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| (*p == Prediction::Unknown).then_some(i))
            .collect();
        let mut covered: Vec<usize> =
            refined.iter().flat_map(|c| c.members.iter().copied()).collect();
        covered.sort_unstable();
        assert_eq!(covered, rejected);
        // With two clearly distinct unknown clusters we expect ≥ 1 class and
        // centroids inside the data range.
        assert!(!refined.is_empty());
        for c in &refined {
            assert!(c.centroid.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn refinement_of_all_accepted_batch_is_empty() {
        use crate::{HdpOsr, HdpOsrConfig};
        use osr_dataset::protocol::TrainSet;
        let mut rng = StdRng::seed_from_u64(7);
        let known = blobs(&mut rng, &[[0.0, 0.0], [8.0, 8.0]], 30, 0.5);
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![known[..30].to_vec(), known[30..].to_vec()],
        };
        let test = blobs(&mut rng, &[[0.0, 0.0]], 12, 0.5);
        let cfg = HdpOsrConfig { iterations: 8, ..Default::default() };
        let model = HdpOsr::fit(&cfg, &train).unwrap();
        let outcome = model.classify_detailed(&test, &mut rng).unwrap();
        if outcome.predictions.iter().all(|p| matches!(p, Prediction::Known(_))) {
            assert!(refine_unknown_classes(&outcome, &test, &mut rng).is_empty());
        }
    }
}
