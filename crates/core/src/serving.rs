//! The serving layer: fit-once/serve-many warm-start classification, a
//! concurrent batch server, and the fault-tolerance stack that keeps it
//! answering under hostile inputs.
//!
//! The paper's protocol is transductive — every test batch is co-clustered
//! with the entire training set — so the obvious implementation pays the
//! full Gibbs burn-in (`iterations` sweeps over `N_train + N_batch` points)
//! *per batch*. This module amortizes that cost:
//!
//! * [`WarmState`] (built once in [`HdpOsr::fit`] under
//!   [`ServingMode::WarmStart`]) runs the training-only burn-in, snapshots
//!   the converged posterior, and precomputes the dish→class association
//!   table.
//! * [`serve_batch`] then answers each batch from a private
//!   [`osr_hdp::BatchSession`] clone of that snapshot: only the batch group
//!   is reseated, for `decision_sweeps` warm sweeps instead of a cold
//!   burn-in.
//! * [`BatchServer`] fans independent batches out over scoped worker
//!   threads with per-batch RNGs derived from `(seed, batch_index)`, so
//!   results do not depend on the number of workers or their scheduling.
//!
//! [`ServingMode::ColdStart`] is the escape hatch reproducing the original
//! behaviour exactly: no snapshot is kept and every batch pays the full
//! transductive burn-in with the training groups deep-copied in.
//!
//! # Failure model
//!
//! A production batch stream is hostile: NaN features, ragged dimensions,
//! batches whose geometry drives the sampler into numerically unrecoverable
//! states. The server survives all of it per-slot, never per-scope:
//!
//! 1. **Admission** ([`crate::admission::validate_batch`]) rejects malformed
//!    batches with typed errors before any sampler state exists.
//! 2. **Watchdog** — every sweep of an attempt runs through
//!    `sweep_checked`, which turns mid-sweep numerical poison (non-finite
//!    seating weights, Cholesky failure past the jitter ladder) and
//!    non-finite likelihood/concentrations into a typed divergence.
//! 3. **Retry** ([`RetryPolicy`]) — a divergent attempt is re-run with the
//!    re-derived seed `derive_batch_seed(seed, idx) ^ attempt`, up to
//!    `max_attempts` times.
//! 4. **Degradation** ([`ServePolicy`]) — when retries, the sweep budget,
//!    or the deadline run out, the batch is answered by frozen inference
//!    (MAP dish assignment under the fit-time checkpoint, no reseating) and
//!    flagged [`ServedVia::Degraded`].
//! 5. **Panic isolation** — each batch's service is wrapped in
//!    `catch_unwind`, so a panicking batch yields an in-place
//!    [`OsrError::Internal`] while sibling batches finish untouched.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use osr_dataset::protocol::TrainSet;
use osr_hdp::{DishId, GroupSummary, Hdp, PosteriorSnapshot, SweepTrace};

use crate::admission;
use crate::collective::{
    AttemptError, CollectiveModel, CollectiveSession, ModelCapabilities, CDOSR_METHOD,
};
use crate::decision::{Associations, ClassifyOutcome, DegradeReason, Prediction, ServedVia};
use crate::discovery::{estimate_unknown_classes, GroupSubclasses, SubclassReport};
use crate::model::HdpOsr;
use crate::observability::{batch_trace_id, BatchTrace, FitReport, TraceRecord, TraceSink};
use crate::{OsrError, Result};

/// How a fitted model answers [`HdpOsr::classify`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingMode {
    /// Fit-once/serve-many (the default): `fit` runs the training burn-in
    /// once and checkpoints it; every batch is served warm from a private
    /// clone of the snapshot in `O(decision_sweeps × N_batch)` seating
    /// moves. Training seating is frozen at its converged state, so the
    /// known-class subclass report is identical across batches.
    WarmStart,
    /// The original transductive schedule: every batch re-runs the full
    /// cold burn-in over training + batch. Slower by a factor of roughly
    /// `iterations × (N_train + N_batch) / (decision_sweeps × N_batch)`,
    /// but lets the batch reshape the training seating too.
    ColdStart,
}

/// Bounded retry for serve attempts the divergence watchdog rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum serve attempts per batch, including the first (clamped ≥ 1).
    pub max_attempts: u32,
    /// Re-derive the RNG seed per attempt as
    /// `derive_batch_seed(seed, idx) ^ attempt`, so a retry explores a
    /// different sampling path. With `false` every attempt replays the same
    /// stream — useful only to reproduce a divergence deterministically.
    pub reseed: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, reseed: true }
    }
}

/// The fault-tolerance policy of a [`BatchServer`]: how hard to try for a
/// full collective decision, and what to do when that fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePolicy {
    /// Retry behaviour for watchdog-detected divergence.
    pub retry: RetryPolicy,
    /// Total Gibbs sweeps one batch may consume across all its attempts
    /// (`None` = unlimited).
    pub sweep_budget: Option<usize>,
    /// Wall-clock deadline for one batch across all its attempts
    /// (`None` = none).
    pub deadline: Option<Duration>,
    /// When full service fails, answer with degraded frozen inference
    /// (MAP dish assignment under the fit-time checkpoint) instead of an
    /// error. Requires a warm-start model — a cold model keeps no
    /// checkpoint to freeze, so its exhausted batches error out regardless.
    pub degrade: bool,
}

impl Default for ServePolicy {
    fn default() -> Self {
        Self { retry: RetryPolicy::default(), sweep_budget: None, deadline: None, degrade: true }
    }
}

/// Everything `fit` precomputes for warm serving: the converged training
/// checkpoint plus the dish→class association table and per-class report
/// rows derived from it.
#[derive(Debug)]
pub(crate) struct WarmState {
    pub snapshot: PosteriorSnapshot,
    pub assoc: Associations,
    pub known_reports: Vec<GroupSubclasses>,
    pub fit_report: FitReport,
}

impl WarmState {
    /// Run the training-only burn-in (seeded by `config.train_seed`) and
    /// checkpoint the converged state, tracing every sweep so the fit ships
    /// with convergence diagnostics. The traced loop consumes the exact RNG
    /// stream of `Hdp::run`, so checkpoints are unchanged by tracing.
    pub fn build(model: &HdpOsr) -> Result<Self> {
        let mut hdp = Hdp::new(
            model.params().clone(),
            model.config().hdp_config(),
            model.classes().to_vec(),
        )?;
        let mut rng = StdRng::seed_from_u64(model.config().train_seed);
        let mut trace = Vec::with_capacity(model.config().iterations);
        for _ in 0..model.config().iterations {
            trace.push(hdp.sweep_traced(&mut rng));
        }
        let fit_report = FitReport::from_trace(model.config().train_seed, trace);
        let snapshot = hdp.snapshot();
        let (assoc, known_reports) =
            associate(model.config().varrho, model.n_classes(), |c| snapshot.group_summary(c));
        Ok(Self { snapshot, assoc, known_reports, fit_report })
    }
}

/// Associate every ϱ-surviving subclass of every known class with that
/// class, producing the association table and the per-class report rows.
/// `summary_of(c)` must return class `c`'s current group summary.
pub(crate) fn associate<F: Fn(usize) -> GroupSummary>(
    varrho: f64,
    n_classes: usize,
    summary_of: F,
) -> (Associations, Vec<GroupSubclasses>) {
    let mut assoc = Associations::default();
    let mut known_reports = Vec::with_capacity(n_classes);
    for class in 0..n_classes {
        let summary = summary_of(class);
        let total = summary.n_items as f64;
        let mut survivors = Vec::new();
        for &(dish, count) in &summary.dish_counts {
            let prop = count as f64 / total;
            if prop >= varrho {
                assoc.insert(dish, class, count);
                survivors.push((dish, count, prop));
            }
        }
        known_reports.push(GroupSubclasses {
            name: format!("Class{}", class + 1),
            subclasses: survivors,
        });
    }
    (assoc, known_reports)
}

/// Per-point majority over the voting sweeps (ties break toward the
/// BTreeMap-larger prediction, i.e. Unknown over Known, higher class id
/// over lower — matching the original single-path implementation).
fn majority(votes: &[BTreeMap<Prediction, usize>]) -> Vec<Prediction> {
    votes
        .iter()
        .map(|v| {
            v.iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map_or(Prediction::Unknown, |(&p, _)| p)
        })
        .collect()
}

/// Assemble the Tables 1–2 report from the known-class rows and the test
/// group's final composition.
fn build_report(
    varrho: f64,
    n_classes: usize,
    assoc: &Associations,
    known_reports: Vec<GroupSubclasses>,
    summary: &GroupSummary,
) -> SubclassReport {
    let mut test_known = Vec::new();
    let mut test_new = Vec::new();
    let mut surviving_items = 0usize;
    for &(dish, count) in &summary.dish_counts {
        let prop = count as f64 / summary.n_items as f64;
        if prop >= varrho {
            surviving_items += count;
            if assoc.is_known(dish) {
                test_known.push((dish, count, prop));
            } else {
                test_new.push((dish, count, prop));
            }
        }
    }
    // Proportions over surviving subclasses (the paper's table rows sum
    // to 100 %).
    let known_items: usize = test_known.iter().map(|&(_, c, _)| c).sum();
    let new_items: usize = test_new.iter().map(|&(_, c, _)| c).sum();
    let denom = surviving_items.max(1) as f64;

    let n_known_sub: usize = known_reports.iter().map(GroupSubclasses::n_subclasses).sum();
    let delta = estimate_unknown_classes(test_new.len(), n_known_sub, n_classes);

    SubclassReport {
        known: known_reports,
        test_known,
        test_new,
        test_known_proportion: known_items as f64 / denom,
        test_new_proportion: new_items as f64 / denom,
        delta_estimate: delta,
    }
}

/// Per-batch resource meter shared across that batch's attempts.
struct ServeCtl {
    deadline: Option<Instant>,
    sweeps_left: Option<usize>,
}

impl ServeCtl {
    fn new(policy: &ServePolicy) -> Self {
        Self {
            deadline: policy.deadline.map(|d| Instant::now() + d),
            sweeps_left: policy.sweep_budget,
        }
    }

    /// No deadline, no budget — the single-shot `classify` path.
    fn unbounded() -> Self {
        Self { deadline: None, sweeps_left: None }
    }

    /// Charge one Gibbs sweep against the batch's budget and deadline.
    fn admit_sweep(&mut self) -> std::result::Result<(), AttemptError> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(AttemptError::DeadlineExceeded);
            }
        }
        if let Some(left) = &mut self.sweeps_left {
            if *left == 0 {
                return Err(AttemptError::BudgetExhausted);
            }
            *left -= 1;
        }
        Ok(())
    }
}

/// Honor an injected artificial delay at the sweep site (no-op without the
/// `fault-inject` feature).
fn sweep_fault_delay() {
    #[cfg(feature = "fault-inject")]
    if let Some(osr_stats::faults::Fault::DelayMs(ms)) =
        osr_stats::faults::hit(osr_stats::faults::sites::SWEEP)
    {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Serve one test batch through a single watchdogged attempt, dispatching on
/// how the model was fitted: warm (snapshot present) or cold (full
/// transductive re-run). This is the `classify`/`classify_detailed` path —
/// the caller owns the RNG, so there is no retry/degrade policy here; a
/// divergent sweep surfaces as [`OsrError::Diverged`] with `attempts: 1`.
/// [`BatchServer`] layers admission, retry, deadlines, and degradation on
/// top of the same attempt functions.
pub(crate) fn serve_batch<R: Rng + ?Sized>(
    model: &HdpOsr,
    test: &[Vec<f64>],
    rng: &mut R,
) -> Result<ClassifyOutcome> {
    admission::validate_batch(model.dim(), test)?;
    osr_stats::divergence::clear();
    let mut ctl = ServeCtl::unbounded();
    let attempt = (|| {
        let mut attempt = HdpAttempt::start(model, test)?;
        for _ in 0..attempt.planned_sweeps() {
            sweep_fault_delay();
            ctl.admit_sweep()?;
            attempt.sweep_with(rng)?;
        }
        Ok(attempt.finish_outcome())
    })();
    attempt
        .map(|mut outcome: ClassifyOutcome| {
            outcome.trace_id = "adhoc".to_string();
            outcome
        })
        .map_err(|e| match e {
            AttemptError::Fatal(err) => err,
            AttemptError::Diverged(reason) => OsrError::Diverged { attempts: 1, reason },
            AttemptError::DeadlineExceeded | AttemptError::BudgetExhausted => {
                OsrError::Internal("unbounded serve control reported a resource breach".into())
            }
        })
}

/// Warm attempt: clone the checkpoint, append the batch, reseat only the
/// batch for `decision_sweeps` watchdogged sweeps, and vote against the
/// precomputed association table (training seating cannot move, so the
/// table stays valid across sweeps).
pub(crate) struct WarmAttempt<'m> {
    model: &'m HdpOsr,
    warm: &'m WarmState,
    session: osr_hdp::BatchSession,
    votes: Vec<BTreeMap<Prediction, usize>>,
}

impl<'m> WarmAttempt<'m> {
    fn start(
        model: &'m HdpOsr,
        warm: &'m WarmState,
        test: &[Vec<f64>],
    ) -> std::result::Result<Self, AttemptError> {
        let session = warm
            .snapshot
            .session(test.to_vec())
            .map_err(|e| AttemptError::Fatal(e.into()))?;
        Ok(Self { model, warm, session, votes: vec![BTreeMap::new(); test.len()] })
    }

    fn sweep_with<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<SweepTrace, AttemptError> {
        let trace = self
            .session
            .sweep_checked_traced(rng)
            .map_err(|d| AttemptError::Diverged(d.to_string()))?;
        for (i, vote) in self.votes.iter_mut().enumerate() {
            let pred = self.warm.assoc.decide(self.session.dish_of(i));
            *vote.entry(pred).or_insert(0) += 1;
        }
        Ok(trace)
    }

    fn finish_outcome(&self) -> ClassifyOutcome {
        let config = self.model.config();
        let predictions = majority(&self.votes);
        let summary = self.session.group_summary(self.session.batch_group());
        let report = build_report(
            config.varrho,
            self.model.n_classes(),
            &self.warm.assoc,
            self.warm.known_reports.clone(),
            &summary,
        );
        let test_dishes = (0..self.votes.len()).map(|i| self.session.dish_of(i)).collect();
        ClassifyOutcome {
            predictions,
            report,
            test_dishes,
            gamma: self.session.gamma(),
            alpha: self.session.alpha(),
            log_likelihood: self.session.joint_log_likelihood(),
            served_via: ServedVia::Warm,
            attempts: 1,
            trace_id: String::new(),
            method: CDOSR_METHOD.to_string(),
        }
    }
}

/// Cold attempt ([`ServingMode::ColdStart`]): the original transductive
/// schedule — deep-copy the training groups, append the batch, run the full
/// burn-in sweep by watchdogged sweep (the exact RNG stream of `Hdp::run`),
/// and vote over `decision_sweeps` posterior states with the association
/// table recomputed per state (training seating moves here). Votes start
/// with the state after the final burn-in sweep, so the attempt plans
/// `iterations + decision_sweeps - 1` sweeps in total.
pub(crate) struct ColdAttempt<'m> {
    model: &'m HdpOsr,
    hdp: Hdp,
    test_group: usize,
    sweeps_done: usize,
    votes: Vec<BTreeMap<Prediction, usize>>,
}

impl<'m> ColdAttempt<'m> {
    fn start(model: &'m HdpOsr, test: &[Vec<f64>]) -> std::result::Result<Self, AttemptError> {
        let mut groups = model.classes().to_vec();
        groups.push(test.to_vec());
        let test_group = groups.len() - 1;
        let hdp = Hdp::new(model.params().clone(), model.config().hdp_config(), groups)
            .map_err(|e| AttemptError::Fatal(e.into()))?;
        Ok(Self {
            model,
            hdp,
            test_group,
            sweeps_done: 0,
            votes: vec![BTreeMap::new(); test.len()],
        })
    }

    fn sweep_with<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<SweepTrace, AttemptError> {
        let trace = self
            .hdp
            .sweep_checked_traced(rng)
            .map_err(|d| AttemptError::Diverged(d.to_string()))?;
        self.sweeps_done += 1;
        // Collect one decision snapshot per voting sweep (the last burn-in
        // state plus each extra decision sweep); the subclass report always
        // reflects the final state.
        if self.sweeps_done >= self.model.config().iterations {
            let config = self.model.config();
            let assoc =
                associate(config.varrho, self.model.n_classes(), |c| self.hdp.group_summary(c)).0;
            for (i, vote) in self.votes.iter_mut().enumerate() {
                let pred = assoc.decide(self.hdp.dish_of(self.test_group, i));
                *vote.entry(pred).or_insert(0) += 1;
            }
        }
        Ok(trace)
    }

    fn finish_outcome(&self) -> ClassifyOutcome {
        let config = self.model.config();
        let predictions = majority(&self.votes);
        let (assoc, known_reports) =
            associate(config.varrho, self.model.n_classes(), |c| self.hdp.group_summary(c));
        let summary = self.hdp.group_summary(self.test_group);
        let report =
            build_report(config.varrho, self.model.n_classes(), &assoc, known_reports, &summary);
        let test_dishes =
            (0..self.votes.len()).map(|i| self.hdp.dish_of(self.test_group, i)).collect();
        ClassifyOutcome {
            predictions,
            report,
            test_dishes,
            gamma: self.hdp.gamma(),
            alpha: self.hdp.alpha(),
            log_likelihood: self.hdp.joint_log_likelihood(),
            served_via: ServedVia::Cold,
            attempts: 1,
            trace_id: String::new(),
            method: CDOSR_METHOD.to_string(),
        }
    }
}

/// One CD-OSR serve attempt, dispatching on how the model was fitted: warm
/// (snapshot present) or cold (full transductive re-run). The inherent
/// methods are generic over the RNG for the caller-owned `classify` path;
/// the [`CollectiveSession`] impl pins `StdRng` for the object-safe server
/// path — both drive the identical per-sweep sequence.
pub(crate) enum HdpAttempt<'m> {
    Warm(WarmAttempt<'m>),
    Cold(ColdAttempt<'m>),
}

impl<'m> HdpAttempt<'m> {
    pub(crate) fn start(
        model: &'m HdpOsr,
        test: &[Vec<f64>],
    ) -> std::result::Result<Self, AttemptError> {
        match model.warm() {
            Some(warm) => WarmAttempt::start(model, warm, test).map(Self::Warm),
            None => ColdAttempt::start(model, test).map(Self::Cold),
        }
    }

    fn planned_sweeps(&self) -> usize {
        match self {
            Self::Warm(w) => w.model.config().decision_sweeps,
            Self::Cold(c) => {
                let config = c.model.config();
                config.iterations + config.decision_sweeps - 1
            }
        }
    }

    fn sweep_with<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<SweepTrace, AttemptError> {
        match self {
            Self::Warm(w) => w.sweep_with(rng),
            Self::Cold(c) => c.sweep_with(rng),
        }
    }

    fn finish_outcome(&self) -> ClassifyOutcome {
        match self {
            Self::Warm(w) => w.finish_outcome(),
            Self::Cold(c) => c.finish_outcome(),
        }
    }
}

impl CollectiveSession for HdpAttempt<'_> {
    fn sweeps_planned(&self) -> usize {
        self.planned_sweeps()
    }

    fn sweep(&mut self, rng: &mut StdRng) -> std::result::Result<SweepTrace, AttemptError> {
        self.sweep_with(rng)
    }

    fn finish(&mut self) -> std::result::Result<ClassifyOutcome, AttemptError> {
        Ok(self.finish_outcome())
    }
}

impl CollectiveModel for HdpOsr {
    fn method(&self) -> &'static str {
        CDOSR_METHOD
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn capabilities(&self) -> ModelCapabilities {
        ModelCapabilities {
            reseedable: true,
            divergence_watchdog: true,
            frozen_fallback: self.warm().is_some(),
            durable_snapshot: true,
        }
    }

    fn fit(&mut self, train: &TrainSet) -> Result<()> {
        let config = *self.config();
        *self = HdpOsr::fit(&config, train)?;
        Ok(())
    }

    fn warm_session<'s>(
        &'s self,
        batch: &[Vec<f64>],
    ) -> std::result::Result<Box<dyn CollectiveSession + 's>, AttemptError> {
        Ok(Box::new(HdpAttempt::start(self, batch)?))
    }

    fn classify_frozen(
        &self,
        batch: &[Vec<f64>],
        reason: DegradeReason,
        attempts: u32,
    ) -> Option<ClassifyOutcome> {
        self.warm().map(|warm| serve_degraded(self, warm, batch, reason, attempts))
    }

    fn classify_from_snapshot(
        &self,
        store: &crate::snapshot::SnapshotStore,
        batch: &[Vec<f64>],
        reason: DegradeReason,
        attempts: u32,
    ) -> Option<ClassifyOutcome> {
        // Any load failure — missing file, corruption, version skew — makes
        // this rung unavailable; the server then surfaces its typed error.
        // The loaded model must still be compatible with the serving model:
        // a snapshot of a different dimension cannot answer this batch.
        let loaded = store.load().ok()?;
        if loaded.dim() != self.dim() {
            return None;
        }
        let warm = loaded.warm()?;
        let outcome = serve_degraded(&loaded, warm, batch, reason, attempts);
        osr_stats::counters::record_durable_recovery();
        Some(outcome)
    }
}

/// Degraded frozen inference: answer the batch from the checkpoint alone —
/// MAP dish assignment under the frozen global mixture, no reseating, no
/// RNG. Every point that the "brand-new dish" option explains best is
/// pooled into one stand-in subclass (the snapshot's fresh pseudo-id) and
/// predicted `Unknown`. Deterministic, O(batch × dishes), cannot diverge.
fn serve_degraded(
    model: &HdpOsr,
    warm: &WarmState,
    test: &[Vec<f64>],
    reason: DegradeReason,
    attempts: u32,
) -> ClassifyOutcome {
    let config = model.config();
    let snap = &warm.snapshot;
    let pseudo = snap.fresh_dish_id();

    let mut counts: BTreeMap<DishId, usize> = BTreeMap::new();
    let mut test_dishes = Vec::with_capacity(test.len());
    let mut predictions = Vec::with_capacity(test.len());
    // One batched MAP pass: the snapshot scores every point against the
    // whole frozen menu through the one-vs-all bank kernel, reusing its
    // scratch buffers across the batch.
    for mapped in snap.map_dishes(test) {
        let dish = mapped.unwrap_or(pseudo);
        predictions.push(warm.assoc.decide(dish));
        *counts.entry(dish).or_insert(0) += 1;
        test_dishes.push(dish);
    }

    let mut dish_counts: Vec<(DishId, usize)> = counts.into_iter().collect();
    dish_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let summary = GroupSummary {
        group: snap.n_groups(),
        n_items: test.len(),
        n_tables: dish_counts.len(),
        dish_counts,
    };
    let report = build_report(
        config.varrho,
        model.n_classes(),
        &warm.assoc,
        warm.known_reports.clone(),
        &summary,
    );

    ClassifyOutcome {
        predictions,
        report,
        test_dishes,
        gamma: snap.gamma(),
        alpha: snap.alpha(),
        log_likelihood: snap.joint_log_likelihood(),
        served_via: ServedVia::Degraded { reason },
        attempts,
        trace_id: String::new(),
        method: CDOSR_METHOD.to_string(),
    }
}

/// Derive the RNG seed for batch `index` under server seed `seed` — the
/// same splitmix-style scheme the evaluation harness uses per trial, so a
/// batch's result can be reproduced sequentially without the server.
pub fn derive_batch_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `f` with the fault-injection (batch, attempt) context published on
/// this thread (no-op without the `fault-inject` feature).
fn with_fault_context<T>(_batch: usize, _attempt: u32, f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "fault-inject")]
    {
        osr_stats::faults::with_context(_batch, _attempt, f)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        f()
    }
}

/// Best-effort human-readable panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Serve many independent batches concurrently over scoped worker threads.
///
/// The server is method-agnostic: it holds a [`&dyn CollectiveModel`] and
/// drives CD-OSR and the per-instance baselines (via `osr-baselines`' serve
/// adapter) through the identical admission → watchdogged-attempt → retry →
/// degrade pipeline, keying its state machine off
/// [`ModelCapabilities`] instead of model internals.
///
/// Each batch gets its own RNG seeded by [`derive_batch_seed`], so the
/// output is a pure function of `(model, batches, seed, policy)` —
/// independent of the worker count and of thread scheduling. Workers pull
/// batch indices from a shared atomic counter (work stealing), so
/// stragglers do not hold up the queue.
///
/// Failures stay confined to their slot: admission rejections, divergence
/// after exhausted retries, and even panics surface as that batch's
/// `Err`/degraded outcome while every sibling batch completes bit-identical
/// to an undisturbed run.
pub struct BatchServer<'a> {
    model: &'a dyn CollectiveModel,
    workers: usize,
    policy: ServePolicy,
    sink: Option<Arc<dyn TraceSink>>,
    snapshot_store: Option<Arc<crate::snapshot::SnapshotStore>>,
}

impl<'a> BatchServer<'a> {
    /// A server over `model` with one worker per available CPU and the
    /// default [`ServePolicy`].
    pub fn new(model: &'a dyn CollectiveModel) -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { model, workers, policy: ServePolicy::default(), sink: None, snapshot_store: None }
    }

    /// A server with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(model: &'a dyn CollectiveModel, workers: usize) -> Self {
        Self {
            model,
            workers: workers.max(1),
            policy: ServePolicy::default(),
            sink: None,
            snapshot_store: None,
        }
    }

    /// Replace the fault-tolerance policy (builder style).
    pub fn with_policy(mut self, policy: ServePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a trace sink (builder style): every successfully answered
    /// batch — including degraded ones — emits a [`TraceRecord::Batch`].
    /// Records are emitted in batch-index order after all workers finish,
    /// so the stream is deterministic under any worker count.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a durable [`crate::SnapshotStore`] (builder style): when full
    /// service fails under a degrading policy and the in-memory frozen
    /// fallback cannot answer (e.g. a cold-start model), the server reloads
    /// the store's last-good snapshot and serves frozen from the reloaded
    /// checkpoint — extending the degrade ladder from "frozen in memory" to
    /// "recover from durable state". Consulted only for models whose
    /// [`ModelCapabilities::durable_snapshot`] flag is set.
    pub fn with_snapshot_store(mut self, store: Arc<crate::snapshot::SnapshotStore>) -> Self {
        self.snapshot_store = Some(store);
        self
    }

    /// Number of worker threads the server will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The active fault-tolerance policy.
    pub fn policy(&self) -> &ServePolicy {
        &self.policy
    }

    /// Classify every batch; result `i` belongs to batch `i`. Per-batch
    /// failures — malformed input, divergence past the retry policy on a
    /// cold model, even a panic — are returned in place; they never poison
    /// the other batches. Warm-start models degrade to frozen inference
    /// instead of erroring when the policy allows it (check
    /// [`ClassifyOutcome::served_via`]).
    pub fn classify_batches(
        &self,
        batches: &[Vec<Vec<f64>>],
        seed: u64,
    ) -> Vec<Result<ClassifyOutcome>> {
        let n = batches.len();
        if n == 0 {
            return Vec::new();
        }
        let results: Mutex<Vec<Option<Result<ClassifyOutcome>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let traces: Mutex<Vec<Option<BatchTrace>>> = Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let scope_result = crossbeam::thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(|_| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(batch) = batches.get(idx) else { break };
                    // Panic isolation: a panicking batch must not unwind
                    // through the scope and abort its siblings. The catch
                    // sits inside the worker loop because the vendored
                    // scope resumes child panics on the host thread.
                    let (outcome, trace) =
                        catch_unwind(AssertUnwindSafe(|| self.serve_one(idx, batch, seed)))
                            .unwrap_or_else(|payload| {
                                (
                                    Err(OsrError::Internal(format!(
                                        "batch worker panicked: {}",
                                        panic_message(payload)
                                    ))),
                                    None,
                                )
                            });
                    // A batch that panicked or gave up mid-attempt may leave
                    // the thread-local divergence flag poisoned; scrub it so
                    // the next batch this worker claims starts clean.
                    osr_stats::divergence::clear();
                    if let Some(slot) = results.lock().get_mut(idx) {
                        *slot = Some(outcome);
                    }
                    if let Some(slot) = traces.lock().get_mut(idx) {
                        *slot = trace;
                    }
                });
            }
        });
        if scope_result.is_err() {
            // Unreachable with the in-loop catch_unwind above, but never
            // panic over it: unclaimed slots become typed errors below.
        }
        if let Some(sink) = &self.sink {
            // Emit in batch-index order, after the scope: the stream is a
            // pure function of (model, batches, seed, policy).
            for trace in traces.into_inner().into_iter().flatten() {
                sink.record(&TraceRecord::Batch(trace));
            }
        }
        results
            .into_inner()
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(OsrError::Internal("batch slot was never claimed by a worker".into()))
                })
            })
            .collect()
    }

    /// Serve one batch on the calling thread under an explicit per-batch
    /// seed, with the same panic isolation and divergence scrubbing as a
    /// `classify_batches` worker slot. The batch runs as index 0, and
    /// [`derive_batch_seed`]`(seed, 0) == seed`, so the attempt RNG is
    /// seeded by exactly `seed` — this is the front-end's entry point: it
    /// derives one seed per `(tenant, flush_epoch)` and gets a trace
    /// reproducible regardless of arrival interleaving or worker count.
    ///
    /// The returned [`BatchTrace`] (for answered batches) is handed to the
    /// caller instead of the sink: a front-end re-stamps it with the flush's
    /// identity before emission.
    pub fn serve_seeded(
        &self,
        batch: &[Vec<f64>],
        seed: u64,
    ) -> (Result<ClassifyOutcome>, Option<BatchTrace>) {
        let served = catch_unwind(AssertUnwindSafe(|| self.serve_one(0, batch, seed)));
        // Same scrub as the worker loop: a panicked or abandoned attempt
        // must not leak thread-local poison into the caller's next serve.
        osr_stats::divergence::clear();
        served.unwrap_or_else(|payload| {
            (
                Err(OsrError::Internal(format!(
                    "batch worker panicked: {}",
                    panic_message(payload)
                ))),
                None,
            )
        })
    }

    /// Serve batch `idx` under the full fault-tolerance policy: admission,
    /// watchdogged attempts with retry-with-reseed, then degradation.
    /// Returns the outcome plus, for answered batches, the [`BatchTrace`]
    /// destined for the trace sink (errors carry no trace).
    fn serve_one(
        &self,
        idx: usize,
        batch: &[Vec<f64>],
        seed: u64,
    ) -> (Result<ClassifyOutcome>, Option<BatchTrace>) {
        // Record whether this worker thread entered the batch already
        // poisoned — that would be a fault-isolation leak from an earlier
        // batch, and the golden-trace suite asserts it never happens.
        let inherited_poison = osr_stats::divergence::is_poisoned();
        // Injected NaN perturbations land *before* admission — proving the
        // admission pass, not the sampler, is what rejects them.
        #[cfg(feature = "fault-inject")]
        let perturbed: Vec<Vec<f64>>;
        #[cfg(feature = "fault-inject")]
        let batch: &[Vec<f64>] = {
            let fault = osr_stats::faults::with_context(idx, 0, || {
                osr_stats::faults::hit(osr_stats::faults::sites::ADMISSION)
            });
            if let Some(osr_stats::faults::Fault::NanPoint { point, coord }) = fault {
                let mut owned = batch.to_vec();
                if let Some(v) = owned.get_mut(point).and_then(|p| p.get_mut(coord)) {
                    *v = f64::NAN;
                }
                perturbed = owned;
                &perturbed
            } else {
                batch
            }
        };

        if let Err(e) = admission::validate_batch(self.model.dim(), batch) {
            return (Err(e), None);
        }

        let caps = self.model.capabilities();
        let mut ctl = ServeCtl::new(&self.policy);
        let max_attempts = self.policy.retry.max_attempts.max(1);
        let mut attempts_used = 0u32;
        let mut last_divergence = String::new();
        let mut resource_breach: Option<DegradeReason> = None;
        let mut sweeps: Vec<SweepTrace> = Vec::new();

        for attempt in 0..max_attempts {
            attempts_used = attempt + 1;
            if attempt > 0 {
                osr_stats::counters::record_serve_retry();
            }
            // Re-deriving the seed only helps when the model actually
            // samples; a deterministic method replays the same stream so
            // the retry exercise stays honest about what it can change.
            let attempt_seed = if self.policy.retry.reseed && caps.reseedable {
                derive_batch_seed(seed, idx) ^ u64::from(attempt)
            } else {
                derive_batch_seed(seed, idx)
            };
            // Only the answering attempt's sweeps belong in the trace.
            sweeps.clear();
            let result = with_fault_context(idx, attempt, || {
                #[cfg(feature = "fault-inject")]
                if let Some(osr_stats::faults::Fault::Panic { message }) =
                    osr_stats::faults::hit(osr_stats::faults::sites::ATTEMPT)
                {
                    // osr-lint: allow(panic-path, injected fault — the catch_unwind boundary above is the system under test)
                    panic!("{message}");
                }
                // A reused worker thread may carry stale poison from an
                // unrelated earlier batch; attempts start clean.
                osr_stats::divergence::clear();
                let mut rng = StdRng::seed_from_u64(attempt_seed);
                let mut admit = || {
                    sweep_fault_delay();
                    ctl.admit_sweep()
                };
                self.model.classify_collective(batch, &mut rng, &mut admit, &mut sweeps)
            });
            match result {
                Ok(mut outcome) => {
                    outcome.attempts = attempts_used;
                    let trace = self.batch_trace(idx, seed, &mut outcome, inherited_poison, sweeps);
                    return (Ok(outcome), Some(trace));
                }
                Err(AttemptError::Fatal(e)) => return (Err(e), None),
                Err(AttemptError::Diverged(reason)) => last_divergence = reason,
                Err(AttemptError::DeadlineExceeded) => {
                    resource_breach = Some(DegradeReason::DeadlineExceeded);
                    break;
                }
                Err(AttemptError::BudgetExhausted) => {
                    resource_breach = Some(DegradeReason::SweepBudgetExceeded);
                    break;
                }
            }
        }

        let reason = resource_breach.unwrap_or(DegradeReason::RetriesExhausted);
        if self.policy.degrade {
            if caps.frozen_fallback {
                if let Some(mut outcome) = self.model.classify_frozen(batch, reason, attempts_used)
                {
                    osr_stats::counters::record_degraded_batch();
                    // Degraded frozen inference runs no sweeps; the failed
                    // attempts' partial traces are dropped with the attempts.
                    let trace =
                        self.batch_trace(idx, seed, &mut outcome, inherited_poison, Vec::new());
                    return (Ok(outcome), Some(trace));
                }
            }
            // Last rung of the ladder: recover from the durable last-good
            // snapshot. Reached only when in-memory freezing is impossible
            // (cold model) or declined — the reload is per-batch and cheap
            // relative to the failed attempts that got us here.
            if let (Some(store), true) = (&self.snapshot_store, caps.durable_snapshot) {
                if let Some(mut outcome) =
                    self.model.classify_from_snapshot(store, batch, reason, attempts_used)
                {
                    osr_stats::counters::record_degraded_batch();
                    let trace =
                        self.batch_trace(idx, seed, &mut outcome, inherited_poison, Vec::new());
                    return (Ok(outcome), Some(trace));
                }
            }
        }
        (
            Err(OsrError::Diverged {
                attempts: attempts_used,
                reason: match resource_breach {
                    Some(breach) => breach.to_string(),
                    None => last_divergence,
                },
            }),
            None,
        )
    }

    /// Stamp `outcome` with its reproducible trace id and build the matching
    /// sink record.
    fn batch_trace(
        &self,
        idx: usize,
        seed: u64,
        outcome: &mut ClassifyOutcome,
        inherited_poison: bool,
        sweeps: Vec<SweepTrace>,
    ) -> BatchTrace {
        let trace_id = batch_trace_id(seed, idx);
        outcome.trace_id = trace_id.clone();
        BatchTrace {
            trace_id,
            batch: idx,
            method: outcome.method.clone(),
            attempts: outcome.attempts,
            served_via: outcome.served_via,
            inherited_poison,
            sweeps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HdpOsrConfig;
    use osr_dataset::protocol::TrainSet;
    use osr_stats::sampling;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + std * sampling::standard_normal(rng),
                    cy + std * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    /// Two known classes far apart; unknowns in a third location.
    fn scenario(rng: &mut StdRng) -> (TrainSet, Vec<Vec<f64>>) {
        let class0 = blob(rng, -6.0, 0.0, 40, 0.5);
        let class1 = blob(rng, 6.0, 0.0, 40, 0.5);
        let train = TrainSet { class_ids: vec![10, 20], classes: vec![class0, class1] };
        let mut test = blob(rng, -6.0, 0.0, 20, 0.5); // known 0
        test.extend(blob(rng, 6.0, 0.0, 20, 0.5)); // known 1
        test.extend(blob(rng, 0.0, 9.0, 20, 0.5)); // unknown
        (train, test)
    }

    fn config(serving: ServingMode) -> HdpOsrConfig {
        HdpOsrConfig { iterations: 10, serving, ..Default::default() }
    }

    #[test]
    fn warm_and_cold_agree_on_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(21);
        let (train, test) = scenario(&mut rng);
        let warm = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let cold = HdpOsr::fit(&config(ServingMode::ColdStart), &train).unwrap();
        let seed = 7u64;
        let pw = warm
            .classify(&test, &mut StdRng::seed_from_u64(derive_batch_seed(seed, 0)))
            .unwrap();
        let pc = cold
            .classify(&test, &mut StdRng::seed_from_u64(derive_batch_seed(seed, 0)))
            .unwrap();
        let agree = pw.iter().zip(&pc).filter(|(a, b)| a == b).count();
        assert!(
            agree * 100 >= pw.len() * 95,
            "warm/cold parity: only {agree}/{} predictions agree",
            pw.len()
        );
    }

    #[test]
    fn warm_model_reports_frozen_training_composition() {
        let mut rng = StdRng::seed_from_u64(22);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let a = model.classify_detailed(&test, &mut StdRng::seed_from_u64(1)).unwrap();
        let b =
            model.classify_detailed(&test[..10], &mut StdRng::seed_from_u64(2)).unwrap();
        // Different batches, same frozen known-class subclass rows.
        for (ka, kb) in a.report.known.iter().zip(&b.report.known) {
            assert_eq!(ka.subclasses, kb.subclasses);
        }
        assert_eq!(a.served_via, ServedVia::Warm);
        assert_eq!(a.attempts, 1);
    }

    #[test]
    fn batch_server_output_is_independent_of_worker_count() {
        let mut rng = StdRng::seed_from_u64(23);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches: Vec<Vec<Vec<f64>>> = test.chunks(10).map(<[Vec<f64>]>::to_vec).collect();
        assert!(batches.len() >= 6);
        let run = |workers: usize| -> Vec<Vec<Prediction>> {
            BatchServer::with_workers(&model, workers)
                .classify_batches(&batches, 99)
                .into_iter()
                .map(|r| r.unwrap().predictions)
                .collect()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn batch_server_matches_sequential_serving() {
        let mut rng = StdRng::seed_from_u64(24);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches: Vec<Vec<Vec<f64>>> = test.chunks(15).map(<[Vec<f64>]>::to_vec).collect();
        let seed = 5u64;
        let server = BatchServer::with_workers(&model, 4).classify_batches(&batches, seed);
        for (idx, (batch, result)) in batches.iter().zip(server).enumerate() {
            let mut rng = StdRng::seed_from_u64(derive_batch_seed(seed, idx));
            let sequential = model.classify(batch, &mut rng).unwrap();
            assert_eq!(result.unwrap().predictions, sequential);
        }
    }

    #[test]
    fn serve_seeded_matches_sequential_classify() {
        let mut rng = StdRng::seed_from_u64(31);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let server = BatchServer::with_workers(&model, 1);
        let (outcome, trace) = server.serve_seeded(&test[..10], 77);
        let sequential =
            model.classify(&test[..10], &mut StdRng::seed_from_u64(77)).unwrap();
        assert_eq!(outcome.unwrap().predictions, sequential);
        assert!(trace.is_some(), "an answered batch carries its trace");
    }

    #[test]
    fn batch_server_surfaces_per_batch_errors() {
        let mut rng = StdRng::seed_from_u64(25);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches = vec![test[..5].to_vec(), Vec::new(), test[5..10].to_vec()];
        let results = BatchServer::new(&model).classify_batches(&batches, 1);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &OsrError::EmptyBatch,
            "empty batch must fail in place with a typed error"
        );
        assert!(results[2].is_ok());
    }

    #[test]
    fn admission_rejects_malformed_batches_with_typed_errors() {
        let mut rng = StdRng::seed_from_u64(27);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches = vec![
            vec![vec![0.0, 1.0, 2.0]],           // wrong dimension
            vec![vec![0.0, f64::NAN]],           // non-finite feature
            test[..5].to_vec(),                  // healthy
        ];
        let results = BatchServer::new(&model).classify_batches(&batches, 3);
        assert_eq!(
            results[0].as_ref().unwrap_err(),
            &OsrError::DimensionMismatch { point: 0, expected: 2, got: 3 }
        );
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &OsrError::NonFiniteFeature { point: 0, coord: 1 }
        );
        assert!(results[2].is_ok());
    }

    #[test]
    fn exhausted_sweep_budget_degrades_to_frozen_inference() {
        let mut rng = StdRng::seed_from_u64(28);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let policy = ServePolicy { sweep_budget: Some(0), ..Default::default() };
        let degraded_before = osr_stats::counters::degraded_batches();
        let results = BatchServer::with_workers(&model, 2)
            .with_policy(policy)
            .classify_batches(std::slice::from_ref(&test), 11);
        let outcome = results[0].as_ref().unwrap();
        assert_eq!(
            outcome.served_via,
            ServedVia::Degraded { reason: DegradeReason::SweepBudgetExceeded }
        );
        assert!(outcome.served_via.is_degraded());
        assert_eq!(outcome.predictions.len(), test.len());
        assert!(osr_stats::counters::degraded_batches() > degraded_before);

        // Degraded frozen inference still gets the easy scene mostly right:
        // knowns map onto frozen training dishes, unknowns onto the pseudo
        // new dish.
        let k0 = outcome.predictions[..20]
            .iter()
            .filter(|p| **p == Prediction::Known(0))
            .count();
        let unk = outcome.predictions[40..]
            .iter()
            .filter(|p| **p == Prediction::Unknown)
            .count();
        assert!(k0 >= 16, "degraded recall for class 0: {k0}/20");
        assert!(unk >= 16, "degraded rejection: {unk}/20");
        // The report stays coherent: frozen known rows, a new-dish row for
        // the unknowns.
        assert!(outcome.report.n_new_subclasses() >= 1);
    }

    #[test]
    fn degradation_disabled_surfaces_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(29);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let policy =
            ServePolicy { sweep_budget: Some(0), degrade: false, ..Default::default() };
        let results = BatchServer::with_workers(&model, 1)
            .with_policy(policy)
            .classify_batches(&[test[..5].to_vec()], 11);
        match results[0].as_ref().unwrap_err() {
            OsrError::Diverged { attempts, reason } => {
                assert_eq!(*attempts, 1);
                assert!(reason.contains("budget"), "reason was: {reason}");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn cold_model_cannot_degrade_and_errors_instead() {
        let mut rng = StdRng::seed_from_u64(30);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::ColdStart), &train).unwrap();
        let policy = ServePolicy { sweep_budget: Some(1), ..Default::default() };
        let results = BatchServer::with_workers(&model, 1)
            .with_policy(policy)
            .classify_batches(&[test[..5].to_vec()], 11);
        assert!(
            matches!(results[0].as_ref().unwrap_err(), OsrError::Diverged { .. }),
            "cold model has no checkpoint to degrade onto: {:?}",
            results[0]
        );
    }

    #[test]
    fn cold_start_model_keeps_no_snapshot() {
        let mut rng = StdRng::seed_from_u64(26);
        let (train, _) = scenario(&mut rng);
        let cold = HdpOsr::fit(&config(ServingMode::ColdStart), &train).unwrap();
        assert!(cold.snapshot().is_none());
        let warm = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let snap = warm.snapshot().expect("warm fit checkpoints the posterior");
        assert_eq!(snap.n_groups(), 2);
        assert!(snap.n_dishes() >= 2);
    }
}
