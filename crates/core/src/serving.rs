//! The serving layer: fit-once/serve-many warm-start classification and a
//! concurrent batch server.
//!
//! The paper's protocol is transductive — every test batch is co-clustered
//! with the entire training set — so the obvious implementation pays the
//! full Gibbs burn-in (`iterations` sweeps over `N_train + N_batch` points)
//! *per batch*. This module amortizes that cost:
//!
//! * [`WarmState`] (built once in [`HdpOsr::fit`] under
//!   [`ServingMode::WarmStart`]) runs the training-only burn-in, snapshots
//!   the converged posterior, and precomputes the dish→class association
//!   table.
//! * [`serve_batch`] then answers each batch from a private
//!   [`osr_hdp::BatchSession`] clone of that snapshot: only the batch group
//!   is reseated, for `decision_sweeps` warm sweeps instead of a cold
//!   burn-in.
//! * [`BatchServer`] fans independent batches out over scoped worker
//!   threads with per-batch RNGs derived from `(seed, batch_index)`, so
//!   results do not depend on the number of workers or their scheduling.
//!
//! [`ServingMode::ColdStart`] is the escape hatch reproducing the original
//! behaviour exactly: no snapshot is kept and every batch pays the full
//! transductive burn-in with the training groups deep-copied in.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use osr_hdp::{GroupSummary, Hdp, PosteriorSnapshot};

use crate::decision::{Associations, ClassifyOutcome, Prediction};
use crate::discovery::{estimate_unknown_classes, GroupSubclasses, SubclassReport};
use crate::model::HdpOsr;
use crate::{OsrError, Result};

/// How a fitted model answers [`HdpOsr::classify`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingMode {
    /// Fit-once/serve-many (the default): `fit` runs the training burn-in
    /// once and checkpoints it; every batch is served warm from a private
    /// clone of the snapshot in `O(decision_sweeps × N_batch)` seating
    /// moves. Training seating is frozen at its converged state, so the
    /// known-class subclass report is identical across batches.
    WarmStart,
    /// The original transductive schedule: every batch re-runs the full
    /// cold burn-in over training + batch. Slower by a factor of roughly
    /// `iterations × (N_train + N_batch) / (decision_sweeps × N_batch)`,
    /// but lets the batch reshape the training seating too.
    ColdStart,
}

/// Everything `fit` precomputes for warm serving: the converged training
/// checkpoint plus the dish→class association table and per-class report
/// rows derived from it.
#[derive(Debug)]
pub(crate) struct WarmState {
    pub snapshot: PosteriorSnapshot,
    pub assoc: Associations,
    pub known_reports: Vec<GroupSubclasses>,
}

impl WarmState {
    /// Run the training-only burn-in (seeded by `config.train_seed`) and
    /// checkpoint the converged state.
    pub fn build(model: &HdpOsr) -> Result<Self> {
        let mut hdp = Hdp::new(
            model.params().clone(),
            model.config().hdp_config(),
            model.classes().to_vec(),
        )?;
        let mut rng = StdRng::seed_from_u64(model.config().train_seed);
        hdp.run(&mut rng);
        let snapshot = hdp.snapshot();
        let (assoc, known_reports) =
            associate(model.config().varrho, model.n_classes(), |c| snapshot.group_summary(c));
        Ok(Self { snapshot, assoc, known_reports })
    }
}

/// Associate every ϱ-surviving subclass of every known class with that
/// class, producing the association table and the per-class report rows.
/// `summary_of(c)` must return class `c`'s current group summary.
pub(crate) fn associate<F: Fn(usize) -> GroupSummary>(
    varrho: f64,
    n_classes: usize,
    summary_of: F,
) -> (Associations, Vec<GroupSubclasses>) {
    let mut assoc = Associations::default();
    let mut known_reports = Vec::with_capacity(n_classes);
    for class in 0..n_classes {
        let summary = summary_of(class);
        let total = summary.n_items as f64;
        let mut survivors = Vec::new();
        for &(dish, count) in &summary.dish_counts {
            let prop = count as f64 / total;
            if prop >= varrho {
                assoc.insert(dish, class, count);
                survivors.push((dish, count, prop));
            }
        }
        known_reports.push(GroupSubclasses {
            name: format!("Class{}", class + 1),
            subclasses: survivors,
        });
    }
    (assoc, known_reports)
}

/// Per-point majority over the voting sweeps (ties break toward the
/// BTreeMap-larger prediction, i.e. Unknown over Known, higher class id
/// over lower — matching the original single-path implementation).
fn majority(votes: &[BTreeMap<Prediction, usize>]) -> Vec<Prediction> {
    votes
        .iter()
        .map(|v| {
            v.iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(&p, _)| p)
                .expect("at least one voting sweep")
        })
        .collect()
}

/// Assemble the Tables 1–2 report from the known-class rows and the test
/// group's final composition.
fn build_report(
    varrho: f64,
    n_classes: usize,
    assoc: &Associations,
    known_reports: Vec<GroupSubclasses>,
    summary: &GroupSummary,
) -> SubclassReport {
    let mut test_known = Vec::new();
    let mut test_new = Vec::new();
    let mut surviving_items = 0usize;
    for &(dish, count) in &summary.dish_counts {
        let prop = count as f64 / summary.n_items as f64;
        if prop >= varrho {
            surviving_items += count;
            if assoc.is_known(dish) {
                test_known.push((dish, count, prop));
            } else {
                test_new.push((dish, count, prop));
            }
        }
    }
    // Proportions over surviving subclasses (the paper's table rows sum
    // to 100 %).
    let known_items: usize = test_known.iter().map(|&(_, c, _)| c).sum();
    let new_items: usize = test_new.iter().map(|&(_, c, _)| c).sum();
    let denom = surviving_items.max(1) as f64;

    let n_known_sub: usize = known_reports.iter().map(GroupSubclasses::n_subclasses).sum();
    let delta = estimate_unknown_classes(test_new.len(), n_known_sub, n_classes);

    SubclassReport {
        known: known_reports,
        test_known,
        test_new,
        test_known_proportion: known_items as f64 / denom,
        test_new_proportion: new_items as f64 / denom,
        delta_estimate: delta,
    }
}

/// Serve one test batch, dispatching on how the model was fitted: warm
/// (snapshot present) or cold (full transductive re-run).
pub(crate) fn serve_batch<R: Rng + ?Sized>(
    model: &HdpOsr,
    test: &[Vec<f64>],
    rng: &mut R,
) -> Result<ClassifyOutcome> {
    if test.is_empty() {
        return Err(OsrError::InvalidTestSet("empty test batch".into()));
    }
    if let Some(bad) = test.iter().find(|p| p.len() != model.dim()) {
        return Err(OsrError::InvalidTestSet(format!(
            "test point of dimension {} (expected {})",
            bad.len(),
            model.dim()
        )));
    }
    match model.warm() {
        Some(warm) => serve_warm(model, warm, test, rng),
        None => serve_cold(model, test, rng),
    }
}

/// Warm path: clone the checkpoint, append the batch, reseat only the batch
/// for `decision_sweeps` sweeps, and vote against the precomputed
/// association table (training seating cannot move, so the table stays
/// valid across sweeps).
fn serve_warm<R: Rng + ?Sized>(
    model: &HdpOsr,
    warm: &WarmState,
    test: &[Vec<f64>],
    rng: &mut R,
) -> Result<ClassifyOutcome> {
    let config = model.config();
    let mut session = warm.snapshot.session(test.to_vec())?;

    let mut votes: Vec<BTreeMap<Prediction, usize>> = vec![BTreeMap::new(); test.len()];
    for _ in 0..config.decision_sweeps {
        session.sweep(rng);
        for (i, vote) in votes.iter_mut().enumerate() {
            let pred = warm.assoc.decide(session.dish_of(i));
            *vote.entry(pred).or_insert(0) += 1;
        }
    }
    let predictions = majority(&votes);

    let summary = session.group_summary(session.batch_group());
    let report = build_report(
        config.varrho,
        model.n_classes(),
        &warm.assoc,
        warm.known_reports.clone(),
        &summary,
    );
    let test_dishes = (0..test.len()).map(|i| session.dish_of(i)).collect();

    Ok(ClassifyOutcome {
        predictions,
        report,
        test_dishes,
        gamma: session.gamma(),
        alpha: session.alpha(),
        log_likelihood: session.joint_log_likelihood(),
    })
}

/// Cold path ([`ServingMode::ColdStart`]): the original transductive
/// schedule — deep-copy the training groups, append the batch, run the full
/// burn-in, and vote over `decision_sweeps` posterior states with the
/// association table recomputed per state (training seating moves here).
fn serve_cold<R: Rng + ?Sized>(
    model: &HdpOsr,
    test: &[Vec<f64>],
    rng: &mut R,
) -> Result<ClassifyOutcome> {
    let config = model.config();
    let mut groups = model.classes().to_vec();
    groups.push(test.to_vec());
    let test_group = groups.len() - 1;

    let mut hdp = Hdp::new(model.params().clone(), config.hdp_config(), groups)?;
    hdp.run(rng);

    // Collect one decision snapshot per voting sweep; the subclass report
    // always reflects the final state.
    let mut votes: Vec<BTreeMap<Prediction, usize>> = vec![BTreeMap::new(); test.len()];
    for extra in 0..config.decision_sweeps {
        if extra > 0 {
            hdp.sweep(rng);
        }
        let assoc = associate(config.varrho, model.n_classes(), |c| hdp.group_summary(c)).0;
        for (i, vote) in votes.iter_mut().enumerate() {
            let pred = assoc.decide(hdp.dish_of(test_group, i));
            *vote.entry(pred).or_insert(0) += 1;
        }
    }
    let predictions = majority(&votes);

    let (assoc, known_reports) =
        associate(config.varrho, model.n_classes(), |c| hdp.group_summary(c));
    let summary = hdp.group_summary(test_group);
    let report =
        build_report(config.varrho, model.n_classes(), &assoc, known_reports, &summary);
    let test_dishes = (0..test.len()).map(|i| hdp.dish_of(test_group, i)).collect();

    Ok(ClassifyOutcome {
        predictions,
        report,
        test_dishes,
        gamma: hdp.gamma(),
        alpha: hdp.alpha(),
        log_likelihood: hdp.joint_log_likelihood(),
    })
}

/// Derive the RNG seed for batch `index` under server seed `seed` — the
/// same splitmix-style scheme the evaluation harness uses per trial, so a
/// batch's result can be reproduced sequentially without the server.
pub fn derive_batch_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Serve many independent batches concurrently over scoped worker threads.
///
/// Each batch gets its own RNG seeded by [`derive_batch_seed`], so the
/// output is a pure function of `(model, batches, seed)` — independent of
/// the worker count and of thread scheduling. Workers pull batch indices
/// from a shared atomic counter (work stealing), so stragglers do not hold
/// up the queue.
pub struct BatchServer<'a> {
    model: &'a HdpOsr,
    workers: usize,
}

impl<'a> BatchServer<'a> {
    /// A server over `model` with one worker per available CPU.
    pub fn new(model: &'a HdpOsr) -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { model, workers }
    }

    /// A server with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(model: &'a HdpOsr, workers: usize) -> Self {
        Self { model, workers: workers.max(1) }
    }

    /// Number of worker threads the server will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Classify every batch; result `i` belongs to batch `i`. Per-batch
    /// failures (e.g. an empty batch) are returned in place, they do not
    /// poison the other batches.
    pub fn classify_batches(
        &self,
        batches: &[Vec<Vec<f64>>],
        seed: u64,
    ) -> Vec<Result<ClassifyOutcome>> {
        let n = batches.len();
        if n == 0 {
            return Vec::new();
        }
        let results: Mutex<Vec<Option<Result<ClassifyOutcome>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(|_| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let mut rng = StdRng::seed_from_u64(derive_batch_seed(seed, idx));
                    let outcome = serve_batch(self.model, &batches[idx], &mut rng);
                    results.lock()[idx] = Some(outcome);
                });
            }
        })
        .expect("batch worker panicked");
        results
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("every batch index was claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HdpOsrConfig;
    use osr_dataset::protocol::TrainSet;
    use osr_stats::sampling;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + std * sampling::standard_normal(rng),
                    cy + std * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    /// Two known classes far apart; unknowns in a third location.
    fn scenario(rng: &mut StdRng) -> (TrainSet, Vec<Vec<f64>>) {
        let class0 = blob(rng, -6.0, 0.0, 40, 0.5);
        let class1 = blob(rng, 6.0, 0.0, 40, 0.5);
        let train = TrainSet { class_ids: vec![10, 20], classes: vec![class0, class1] };
        let mut test = blob(rng, -6.0, 0.0, 20, 0.5); // known 0
        test.extend(blob(rng, 6.0, 0.0, 20, 0.5)); // known 1
        test.extend(blob(rng, 0.0, 9.0, 20, 0.5)); // unknown
        (train, test)
    }

    fn config(serving: ServingMode) -> HdpOsrConfig {
        HdpOsrConfig { iterations: 10, serving, ..Default::default() }
    }

    #[test]
    fn warm_and_cold_agree_on_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(21);
        let (train, test) = scenario(&mut rng);
        let warm = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let cold = HdpOsr::fit(&config(ServingMode::ColdStart), &train).unwrap();
        let seed = 7u64;
        let pw = warm
            .classify(&test, &mut StdRng::seed_from_u64(derive_batch_seed(seed, 0)))
            .unwrap();
        let pc = cold
            .classify(&test, &mut StdRng::seed_from_u64(derive_batch_seed(seed, 0)))
            .unwrap();
        let agree = pw.iter().zip(&pc).filter(|(a, b)| a == b).count();
        assert!(
            agree * 100 >= pw.len() * 95,
            "warm/cold parity: only {agree}/{} predictions agree",
            pw.len()
        );
    }

    #[test]
    fn warm_model_reports_frozen_training_composition() {
        let mut rng = StdRng::seed_from_u64(22);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let a = model.classify_detailed(&test, &mut StdRng::seed_from_u64(1)).unwrap();
        let b =
            model.classify_detailed(&test[..10].to_vec(), &mut StdRng::seed_from_u64(2)).unwrap();
        // Different batches, same frozen known-class subclass rows.
        for (ka, kb) in a.report.known.iter().zip(&b.report.known) {
            assert_eq!(ka.subclasses, kb.subclasses);
        }
    }

    #[test]
    fn batch_server_output_is_independent_of_worker_count() {
        let mut rng = StdRng::seed_from_u64(23);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches: Vec<Vec<Vec<f64>>> = test.chunks(10).map(<[Vec<f64>]>::to_vec).collect();
        assert!(batches.len() >= 6);
        let run = |workers: usize| -> Vec<Vec<Prediction>> {
            BatchServer::with_workers(&model, workers)
                .classify_batches(&batches, 99)
                .into_iter()
                .map(|r| r.unwrap().predictions)
                .collect()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn batch_server_matches_sequential_serving() {
        let mut rng = StdRng::seed_from_u64(24);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches: Vec<Vec<Vec<f64>>> = test.chunks(15).map(<[Vec<f64>]>::to_vec).collect();
        let seed = 5u64;
        let server = BatchServer::with_workers(&model, 4).classify_batches(&batches, seed);
        for (idx, (batch, result)) in batches.iter().zip(server).enumerate() {
            let mut rng = StdRng::seed_from_u64(derive_batch_seed(seed, idx));
            let sequential = model.classify(batch, &mut rng).unwrap();
            assert_eq!(result.unwrap().predictions, sequential);
        }
    }

    #[test]
    fn batch_server_surfaces_per_batch_errors() {
        let mut rng = StdRng::seed_from_u64(25);
        let (train, test) = scenario(&mut rng);
        let model = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let batches = vec![test[..5].to_vec(), Vec::new(), test[5..10].to_vec()];
        let results = BatchServer::new(&model).classify_batches(&batches, 1);
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "empty batch must fail in place");
        assert!(results[2].is_ok());
    }

    #[test]
    fn cold_start_model_keeps_no_snapshot() {
        let mut rng = StdRng::seed_from_u64(26);
        let (train, _) = scenario(&mut rng);
        let cold = HdpOsr::fit(&config(ServingMode::ColdStart), &train).unwrap();
        assert!(cold.snapshot().is_none());
        let warm = HdpOsr::fit(&config(ServingMode::WarmStart), &train).unwrap();
        let snap = warm.snapshot().expect("warm fit checkpoints the posterior");
        assert_eq!(snap.n_groups(), 2);
        assert!(snap.n_dishes() >= 2);
    }
}
