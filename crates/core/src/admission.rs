//! Admission control: validate inputs *before* any sampler state is touched.
//!
//! The serving stack's first line of defense. A hostile or degenerate input
//! (NaN features, ragged dimensions, empty batches) is rejected here with a
//! precise, typed [`OsrError`] — pointing at the offending point and
//! coordinate — so it can never poison a Gibbs sweep, and a `BatchServer`
//! rejects it per-slot without spending a single seating move on it.
//! [`validate_train`] applies the same standard to `HdpOsr::fit`, including
//! the non-finite-feature check classification always had.

use osr_dataset::protocol::TrainSet;

use crate::{OsrError, Result};

/// Validate a test batch against the model's feature dimension.
///
/// # Errors
/// [`OsrError::EmptyBatch`] for a batch with no points,
/// [`OsrError::DimensionMismatch`] for the first point whose length differs
/// from `expected_dim`, and [`OsrError::NonFiniteFeature`] for the first
/// NaN/±∞ coordinate. Checks run in batch order, so the reported point is
/// the first offender.
pub fn validate_batch(expected_dim: usize, test: &[Vec<f64>]) -> Result<()> {
    if test.is_empty() {
        return Err(OsrError::EmptyBatch);
    }
    for (point, p) in test.iter().enumerate() {
        if p.len() != expected_dim {
            return Err(OsrError::DimensionMismatch {
                point,
                expected: expected_dim,
                got: p.len(),
            });
        }
        if let Some(coord) = p.iter().position(|v| !v.is_finite()) {
            return Err(OsrError::NonFiniteFeature { point, coord });
        }
    }
    Ok(())
}

/// Validate a training set for `HdpOsr::fit`: non-empty, consistent
/// dimensions, every class populated, every feature finite.
///
/// # Errors
/// [`OsrError::InvalidTrainingSet`] describing the first offense.
pub fn validate_train(train: &TrainSet) -> Result<()> {
    if train.n_classes() == 0 || train.total_points() == 0 {
        return Err(OsrError::InvalidTrainingSet("no training data".into()));
    }
    let dim = train.dim();
    if dim == 0 {
        return Err(OsrError::InvalidTrainingSet("zero-dimensional data".into()));
    }
    for (c, class) in train.classes.iter().enumerate() {
        if class.is_empty() {
            return Err(OsrError::InvalidTrainingSet(format!("class {c} is empty")));
        }
        if class.iter().any(|p| p.len() != dim) {
            return Err(OsrError::InvalidTrainingSet(format!(
                "class {c} has inconsistent dimensions"
            )));
        }
        for (i, p) in class.iter().enumerate() {
            if let Some(coord) = p.iter().position(|v| !v.is_finite()) {
                return Err(OsrError::InvalidTrainingSet(format!(
                    "class {c} point {i} has a non-finite feature at coordinate {coord}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_clean_batch() {
        assert_eq!(validate_batch(2, &[vec![0.0, 1.0], vec![-3.5, 2.0]]), Ok(()));
    }

    #[test]
    fn rejects_empty_batch() {
        assert_eq!(validate_batch(2, &[]), Err(OsrError::EmptyBatch));
    }

    #[test]
    fn reports_first_dimension_mismatch() {
        let batch = vec![vec![0.0, 1.0], vec![0.0], vec![0.0, 1.0, 2.0]];
        assert_eq!(
            validate_batch(2, &batch),
            Err(OsrError::DimensionMismatch { point: 1, expected: 2, got: 1 })
        );
    }

    #[test]
    fn reports_first_non_finite_feature() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let batch = vec![vec![0.0, 1.0], vec![0.0, bad]];
            assert_eq!(
                validate_batch(2, &batch),
                Err(OsrError::NonFiniteFeature { point: 1, coord: 1 }),
                "value {bad} must be rejected"
            );
        }
    }

    #[test]
    fn accepts_a_clean_training_set() {
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![
                vec![vec![0.0, 0.0], vec![1.0, 0.0]],
                vec![vec![5.0, 5.0], vec![6.0, 5.0]],
            ],
        };
        assert_eq!(validate_train(&train), Ok(()));
    }

    #[test]
    fn rejects_nan_and_inf_training_points() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let train = TrainSet {
                class_ids: vec![0, 1],
                classes: vec![
                    vec![vec![0.0, 0.0], vec![1.0, 0.0]],
                    vec![vec![5.0, 5.0], vec![6.0, bad]],
                ],
            };
            let err = validate_train(&train).unwrap_err();
            match err {
                OsrError::InvalidTrainingSet(msg) => {
                    assert!(msg.contains("class 1 point 1"), "message was: {msg}");
                    assert!(msg.contains("coordinate 1"), "message was: {msg}");
                }
                other => panic!("expected InvalidTrainingSet, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_empty_and_ragged_training_sets() {
        let empty = TrainSet { class_ids: vec![], classes: vec![] };
        assert!(matches!(validate_train(&empty), Err(OsrError::InvalidTrainingSet(_))));

        let hollow = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![vec![vec![1.0, 2.0]], vec![]],
        };
        assert!(matches!(validate_train(&hollow), Err(OsrError::InvalidTrainingSet(_))));

        let ragged = TrainSet {
            class_ids: vec![0],
            classes: vec![vec![vec![1.0, 2.0], vec![1.0]]],
        };
        assert!(matches!(validate_train(&ragged), Err(OsrError::InvalidTrainingSet(_))));
    }
}
