//! The collective decision: subclass → class association and test labeling.
//!
//! After co-clustering, every dish (subclass) that survives the ϱ-pruning in
//! a known class's group is *associated* with that class. A test point is
//! labeled with the class its dish associates to; a dish with no known-class
//! association means the point belongs to territory the training data never
//! occupied, i.e. [`Prediction::Unknown`].

use serde::{Deserialize, Serialize};

use osr_hdp::DishId;

use crate::discovery::SubclassReport;

/// Re-export of the workspace-wide prediction type (defined next to
/// [`osr_dataset::protocol::GroundTruth`] so baselines and HDP-OSR share it).
pub use osr_dataset::protocol::Prediction;

/// Why a batch was answered via degraded frozen inference instead of the
/// full collective decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// Every attempt allowed by the retry policy diverged.
    RetriesExhausted,
    /// The per-batch Gibbs sweep budget ran out mid-service.
    SweepBudgetExceeded,
    /// The per-batch wall-clock deadline passed mid-service.
    DeadlineExceeded,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RetriesExhausted => write!(f, "retries exhausted"),
            Self::SweepBudgetExceeded => write!(f, "sweep budget exceeded"),
            Self::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// How a [`ClassifyOutcome`] was produced — callers that care about answer
/// quality should check for [`ServedVia::Degraded`], which marks a best-effort
/// frozen-inference answer rather than a full collective decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedVia {
    /// Warm-start service: the batch was reseated against the fit-time
    /// posterior checkpoint (the normal fast path).
    Warm,
    /// Cold transductive service: training and batch re-clustered from
    /// scratch (the paper's original schedule).
    Cold,
    /// Degraded frozen inference: MAP dish assignment under the checkpoint,
    /// no reseating. Produced when the fault-tolerance policy gave up on
    /// full service for the stated reason.
    Degraded {
        /// Why full service was abandoned.
        reason: DegradeReason,
    },
}

impl ServedVia {
    /// True for [`ServedVia::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::Degraded { .. })
    }
}

impl std::fmt::Display for ServedVia {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Warm => write!(f, "warm"),
            Self::Cold => write!(f, "cold"),
            Self::Degraded { reason } => write!(f, "degraded ({reason})"),
        }
    }
}

/// Full output of [`crate::HdpOsr::classify_detailed`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifyOutcome {
    /// One prediction per test point.
    pub predictions: Vec<Prediction>,
    /// Subclass structure and the new-class-discovery estimate
    /// (the paper's Tables 1–2 content).
    pub report: SubclassReport,
    /// The dish (subclass) each test point landed on.
    pub test_dishes: Vec<DishId>,
    /// Final top-level concentration γ of the sampler.
    pub gamma: f64,
    /// Final group-level concentration α₀ of the sampler.
    pub alpha: f64,
    /// Joint log marginal likelihood of the final state.
    pub log_likelihood: f64,
    /// How this outcome was produced (full service or degraded fallback).
    pub served_via: ServedVia,
    /// Number of serve attempts consumed, including the successful one
    /// (`1` = no retries; degraded outcomes count the failed attempts).
    pub attempts: u32,
    /// Identifier linking this outcome to its [`crate::BatchTrace`] in the
    /// server's trace stream ([`crate::batch_trace_id`]`(seed, batch)`);
    /// `"adhoc"` for the single-shot `classify`/`classify_detailed` path.
    pub trace_id: String,
    /// Stable tag of the method that produced this outcome
    /// ([`crate::CDOSR_METHOD`] for CD-OSR, `"wsvm"`/`"osnn"`/… for the
    /// baselines served through the same stack).
    pub method: String,
}

/// Association table from dish id to the known classes using it.
#[derive(Debug, Clone, Default)]
pub(crate) struct Associations {
    /// `(class index, item count in that class)` per dish.
    map: std::collections::BTreeMap<DishId, Vec<(usize, usize)>>,
}

impl Associations {
    /// Record that `class` uses `dish` with `count` items (post-pruning).
    pub fn insert(&mut self, dish: DishId, class: usize, count: usize) {
        self.map.entry(dish).or_default().push((class, count));
    }

    /// True when the dish is associated with at least one known class.
    pub fn is_known(&self, dish: DishId) -> bool {
        self.map.contains_key(&dish)
    }

    /// Decide the label for a test point sitting on `dish`: the associated
    /// class with the most items there (ties to the smaller class index),
    /// or `Unknown` when no class is associated.
    pub fn decide(&self, dish: DishId) -> Prediction {
        match self.map.get(&dish) {
            None => Prediction::Unknown,
            Some(classes) => classes
                .iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map_or(Prediction::Unknown, |&(class, _)| Prediction::Known(class)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unassociated_dish_is_unknown() {
        let a = Associations::default();
        assert_eq!(a.decide(3), Prediction::Unknown);
        assert!(!a.is_known(3));
    }

    #[test]
    fn single_association_wins() {
        let mut a = Associations::default();
        a.insert(7, 2, 40);
        assert_eq!(a.decide(7), Prediction::Known(2));
        assert!(a.is_known(7));
    }

    #[test]
    fn shared_dish_goes_to_heavier_class() {
        let mut a = Associations::default();
        a.insert(1, 0, 10);
        a.insert(1, 3, 25);
        assert_eq!(a.decide(1), Prediction::Known(3));
    }

    #[test]
    fn ties_resolve_to_smaller_class_index() {
        let mut a = Associations::default();
        a.insert(1, 4, 10);
        a.insert(1, 2, 10);
        assert_eq!(a.decide(1), Prediction::Known(2));
    }

    #[test]
    fn multiple_dishes_per_class_are_independent() {
        let mut a = Associations::default();
        a.insert(1, 0, 5);
        a.insert(2, 1, 9);
        assert_eq!(a.decide(1), Prediction::Known(0));
        assert_eq!(a.decide(2), Prediction::Known(1));
    }
}
