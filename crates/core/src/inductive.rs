//! Inductive (amortized) classification — the paper's future-work direction.
//!
//! HDP-OSR is transductive: train and test are co-clustered, so "other new
//! testing sets … lead to repeated training" (paper §5). This module
//! implements the natural amortization the paper calls for: freeze the
//! posterior state of one collective run into a [`FrozenModel`], then label
//! additional points by MAP assignment under the frozen mixture —
//!
//! ```text
//! p(subclass k | x) ∝ m_·k · f_k(x),      p(new | x) ∝ γ · f_H(x)
//! ```
//!
//! — the same Chinese-restaurant weights the sampler uses (Eq. 6), applied
//! once per point instead of Gibbs-iterated. A point whose best explanation
//! is a dish associated with a known class takes that label; a point best
//! explained by an unknown-only dish, or by a brand-new draw from the base
//! measure, is rejected. This trades the collective effect for O(K·d²) per
//! point, and is exact in the limit where one point cannot shift the
//! posterior.

use serde::{Deserialize, Serialize};

use osr_hdp::DishId;
use osr_stats::{NiwParams, NiwPosterior};

use crate::decision::{ClassifyOutcome, Prediction};
use crate::{HdpOsr, OsrError, Result};

/// One frozen mixture component (subclass) with its decision metadata.
#[derive(Debug, Clone)]
struct FrozenDish {
    id: DishId,
    /// CRF weight `m_·k` (tables serving the dish).
    weight: f64,
    /// NIW posterior absorbed during the collective run.
    posterior: NiwPosterior,
    /// The label this dish confers.
    label: Prediction,
}

/// A frozen HDP-OSR posterior: classify new points without re-running the
/// sampler.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    dishes: Vec<FrozenDish>,
    prior: NiwPosterior,
    /// Top-level concentration γ at freeze time.
    gamma: f64,
    /// Total table count `m_··` at freeze time.
    total_tables: f64,
    dim: usize,
}

impl FrozenModel {
    /// Freeze the posterior of a completed collective run.
    ///
    /// Rebuilds each dish's NIW posterior from the training points and test
    /// points it absorbed (the outcome records the dish of every test
    /// point), and labels each dish by the same association rule the
    /// collective decision used.
    ///
    /// # Errors
    /// Fails when `outcome` does not correspond to `test_points`.
    pub fn freeze(
        model: &HdpOsr,
        outcome: &ClassifyOutcome,
        test_points: &[Vec<f64>],
    ) -> Result<Self> {
        if outcome.test_dishes.len() != test_points.len() {
            return Err(OsrError::InvalidTestSet(
                "outcome does not match the test batch it came from".into(),
            ));
        }
        let params: &NiwParams = model.params();
        let dim = model.dim();

        // Dish label map from the report: known-associated dishes carry
        // their class, every other surviving dish is Unknown.
        let mut labels: std::collections::BTreeMap<DishId, Prediction> = Default::default();
        let mut weights: std::collections::BTreeMap<DishId, f64> = Default::default();
        for (class, group) in outcome.report.known.iter().enumerate() {
            for &(dish, count, _) in &group.subclasses {
                // Heavier known usage wins ties across classes, mirroring
                // `Associations::decide`.
                let heavier = match labels.get(&dish) {
                    Some(Prediction::Known(prev)) => {
                        let prev_count = weights.get(&dish).copied().unwrap_or(0.0);
                        (count as f64) > prev_count && *prev != class
                    }
                    _ => true,
                };
                if heavier {
                    labels.insert(dish, Prediction::Known(class));
                    weights.insert(dish, count as f64);
                }
            }
        }
        for &(dish, _, _) in outcome.report.test_known.iter().chain(&outcome.report.test_new) {
            labels.entry(dish).or_insert(Prediction::Unknown);
        }

        // Rebuild per-dish posteriors from the points each dish absorbed.
        let mut posteriors: std::collections::BTreeMap<DishId, NiwPosterior> = Default::default();
        let mut table_weight: std::collections::BTreeMap<DishId, f64> = Default::default();
        for (class_points, group) in model.classes().iter().zip(&outcome.report.known) {
            // Without per-point dish ids for training data, attribute the
            // class's points to its dishes via MAP under the test-informed
            // posteriors later; here seed with proportional mass instead:
            // assign every point to the class's heaviest dish. This is a
            // controlled approximation documented in the module docs.
            let dominant = group
                .subclasses
                .first()
                .map(|&(dish, _, _)| dish)
                .ok_or_else(|| OsrError::InvalidTestSet("class with no subclasses".into()))?;
            let post = posteriors
                .entry(dominant)
                .or_insert_with(|| NiwPosterior::from_prior(params));
            for p in class_points {
                post.add(p);
            }
            for &(dish, count, _) in &group.subclasses {
                *table_weight.entry(dish).or_insert(0.0) += 1.0 + (count as f64).ln().max(0.0);
            }
        }
        for (p, &dish) in test_points.iter().zip(&outcome.test_dishes) {
            let post =
                posteriors.entry(dish).or_insert_with(|| NiwPosterior::from_prior(params));
            post.add(p);
            table_weight.entry(dish).or_insert(1.0);
        }

        let dishes: Vec<FrozenDish> = posteriors
            .into_iter()
            .map(|(id, posterior)| FrozenDish {
                id,
                weight: table_weight.get(&id).copied().unwrap_or(1.0),
                posterior,
                label: labels.get(&id).copied().unwrap_or(Prediction::Unknown),
            })
            .collect();
        if dishes.is_empty() {
            return Err(OsrError::InvalidTestSet("nothing to freeze".into()));
        }
        let total_tables = dishes.iter().map(|d| d.weight).sum();
        Ok(Self {
            dishes,
            prior: NiwPosterior::from_prior(params),
            gamma: outcome.gamma,
            total_tables,
            dim,
        })
    }

    /// Number of frozen subclasses.
    pub fn n_subclasses(&self) -> usize {
        self.dishes.len()
    }

    /// Classify one point by MAP over the frozen CRF mixture.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        assert_eq!(x.len(), self.dim, "FrozenModel::predict: dimension mismatch");
        let mut best_label = Prediction::Unknown;
        let mut best = self.gamma.ln() + self.prior.predictive_logpdf(x);
        for dish in &self.dishes {
            let lw = dish.weight.ln() + dish.posterior.predictive_logpdf(x);
            if lw > best {
                best = lw;
                best_label = dish.label;
            }
        }
        best_label
    }

    /// Classify a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Log-weight diagnostics for one point: `(dish id, label, log weight)`
    /// for every frozen dish, plus the new-dish log weight last.
    pub fn explain(&self, x: &[f64]) -> (Vec<(DishId, Prediction, f64)>, f64) {
        let rows = self
            .dishes
            .iter()
            .map(|d| (d.id, d.label, d.weight.ln() + d.posterior.predictive_logpdf(x)))
            .collect();
        let new = self.gamma.ln() + self.prior.predictive_logpdf(x)
            - (self.total_tables + self.gamma).ln();
        (rows, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdpOsrConfig;
    use osr_dataset::protocol::TrainSet;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + 0.5 * sampling::standard_normal(rng),
                    cy + 0.5 * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    fn setup() -> (HdpOsr, ClassifyOutcome, Vec<Vec<f64>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(&mut rng, -6.0, 0.0, 40), blob(&mut rng, 6.0, 0.0, 40)],
        };
        let mut test = blob(&mut rng, -6.0, 0.0, 15);
        test.extend(blob(&mut rng, 0.0, 9.0, 15)); // unknown cluster
        let cfg = HdpOsrConfig { iterations: 10, ..Default::default() };
        let model = HdpOsr::fit(&cfg, &train).unwrap();
        let outcome = model.classify_detailed(&test, &mut rng).unwrap();
        (model, outcome, test, rng)
    }

    #[test]
    fn frozen_model_labels_fresh_points_like_the_collective_run() {
        let (model, outcome, test, mut rng) = setup();
        let frozen = FrozenModel::freeze(&model, &outcome, &test).unwrap();
        assert!(frozen.n_subclasses() >= 2);

        // Fresh points from the same three populations.
        let fresh_known0 = blob(&mut rng, -6.0, 0.0, 20);
        let fresh_known1 = blob(&mut rng, 6.0, 0.0, 20);
        let fresh_unknown = blob(&mut rng, 0.0, 9.0, 20);

        let k0 = frozen
            .predict_batch(&fresh_known0)
            .iter()
            .filter(|p| **p == Prediction::Known(0))
            .count();
        let k1 = frozen
            .predict_batch(&fresh_known1)
            .iter()
            .filter(|p| **p == Prediction::Known(1))
            .count();
        let rej = frozen
            .predict_batch(&fresh_unknown)
            .iter()
            .filter(|p| **p == Prediction::Unknown)
            .count();
        assert!(k0 >= 17, "class-0 recall {k0}/20");
        assert!(k1 >= 17, "class-1 recall {k1}/20");
        assert!(rej >= 17, "unknown rejection {rej}/20");
    }

    #[test]
    fn far_away_points_are_rejected_via_the_new_dish_route() {
        let (model, outcome, test, _) = setup();
        let frozen = FrozenModel::freeze(&model, &outcome, &test).unwrap();
        assert_eq!(frozen.predict(&[50.0, -50.0]), Prediction::Unknown);
        assert_eq!(frozen.predict(&[-40.0, 40.0]), Prediction::Unknown);
    }

    #[test]
    fn explain_exposes_per_dish_weights() {
        let (model, outcome, test, _) = setup();
        let frozen = FrozenModel::freeze(&model, &outcome, &test).unwrap();
        let (rows, new_lw) = frozen.explain(&[-6.0, 0.0]);
        assert_eq!(rows.len(), frozen.n_subclasses());
        assert!(rows.iter().all(|(_, _, lw)| lw.is_finite()));
        assert!(new_lw.is_finite());
        // The best dish at class 0's center is labeled Known(0).
        let best = rows
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        assert_eq!(best.1, Prediction::Known(0));
    }

    #[test]
    fn freeze_rejects_mismatched_outcome() {
        let (model, outcome, test, _) = setup();
        let err = FrozenModel::freeze(&model, &outcome, &test[..3]);
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_checks_dimensions() {
        let (model, outcome, test, _) = setup();
        let frozen = FrozenModel::freeze(&model, &outcome, &test).unwrap();
        let _ = frozen.predict(&[0.0]);
    }
}

/// Serializable summary of a frozen model (counts and labels only — the
/// posteriors themselves are rebuilt from data on freeze).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrozenSummary {
    /// Number of frozen subclasses.
    pub n_subclasses: usize,
    /// γ at freeze time.
    pub gamma: f64,
    /// `(dish id, label)` pairs.
    pub labels: Vec<(DishId, Prediction)>,
}

impl FrozenModel {
    /// Produce the serializable summary.
    pub fn summary(&self) -> FrozenSummary {
        FrozenSummary {
            n_subclasses: self.dishes.len(),
            gamma: self.gamma,
            labels: self.dishes.iter().map(|d| (d.id, d.label)).collect(),
        }
    }
}
