//! The multi-tenant model registry: warm [`crate::PosteriorSnapshot`]-backed
//! models keyed by tenant, LRU-bounded, with cold loads from the durable
//! snapshot store.
//!
//! The front-end ([`crate::frontend::Frontend`]) serves many tenants from
//! one process, but holding every tenant's posterior resident would grow
//! memory with the tenant population. The registry keeps at most `capacity`
//! warm models; a request for an absent tenant either fails typed
//! ([`crate::OsrError::UnknownTenant`]) or — when a snapshot directory is
//! attached — reloads the tenant's model from its durable snapshot
//! (`<dir>/<tenant>.snapshot`, the PR-8 [`SnapshotStore`] container) and
//! admits it, evicting the least-recently-used resident if the bound is hit.
//!
//! Determinism: eviction order is a pure function of the resolve sequence
//! (a monotone logical tick, no wall clock), and the front-end resolves
//! models for a dispatch round sequentially in flush order — so which
//! tenant gets cold-loaded or evicted never depends on worker scheduling.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::collective::CollectiveModel;
use crate::snapshot::SnapshotStore;
use crate::{OsrError, Result};

struct RegistryEntry {
    model: Arc<dyn CollectiveModel>,
    last_used: u64,
}

struct RegistryInner {
    entries: BTreeMap<String, RegistryEntry>,
    tick: u64,
}

/// An LRU-bounded map from tenant name to a warm, shareable model.
pub struct ModelRegistry {
    capacity: usize,
    snapshot_dir: Option<PathBuf>,
    inner: Mutex<RegistryInner>,
}

impl ModelRegistry {
    /// A registry holding at most `capacity` warm models (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            snapshot_dir: None,
            inner: Mutex::new(RegistryInner { entries: BTreeMap::new(), tick: 0 }),
        }
    }

    /// Attach a snapshot directory (builder style): a resolve miss for
    /// tenant `t` then cold-loads `<dir>/t.snapshot` through the durable
    /// [`SnapshotStore`] instead of failing.
    pub fn with_snapshot_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.snapshot_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// The durable path a tenant's snapshot is cold-loaded from, if a
    /// snapshot directory is attached.
    pub fn snapshot_path(&self, tenant: &str) -> Option<PathBuf> {
        self.snapshot_dir.as_ref().map(|dir| dir.join(format!("{tenant}.snapshot")))
    }

    /// Number of warm models currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no model is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// True when `tenant` has a resident warm model (does not touch LRU
    /// recency).
    pub fn contains(&self, tenant: &str) -> bool {
        self.inner.lock().entries.contains_key(tenant)
    }

    /// Register (or replace) `tenant`'s warm model, evicting the
    /// least-recently-used resident if the capacity bound is exceeded.
    pub fn insert(&self, tenant: &str, model: Arc<dyn CollectiveModel>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let last_used = inner.tick;
        inner.entries.insert(tenant.to_string(), RegistryEntry { model, last_used });
        Self::evict_over_capacity(&mut inner, self.capacity);
    }

    /// Resolve `tenant` to its warm model, bumping its LRU recency. A miss
    /// cold-loads from the snapshot directory when one is attached
    /// (counted by `osr_stats::counters::frontend_cold_loads`); otherwise
    /// it is a typed [`OsrError::UnknownTenant`].
    ///
    /// # Errors
    /// [`OsrError::UnknownTenant`] on a miss with no snapshot directory or
    /// no snapshot file; any snapshot decode failure propagates typed.
    pub fn resolve(&self, tenant: &str) -> Result<Arc<dyn CollectiveModel>> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(tenant) {
                entry.last_used = tick;
                return Ok(Arc::clone(&entry.model));
            }
        }
        // Cold path: materialize from the durable store outside the lock —
        // a snapshot decode is orders of magnitude slower than a map probe,
        // and resolves are serialized per dispatch round anyway.
        let Some(path) = self.snapshot_path(tenant) else {
            return Err(OsrError::UnknownTenant(tenant.to_string()));
        };
        if !path.exists() {
            return Err(OsrError::UnknownTenant(tenant.to_string()));
        }
        let model = SnapshotStore::new(path).load()?;
        osr_stats::counters::record_frontend_cold_load();
        let model: Arc<dyn CollectiveModel> = Arc::new(model);
        self.insert(tenant, Arc::clone(&model));
        Ok(model)
    }

    fn evict_over_capacity(inner: &mut RegistryInner, capacity: usize) {
        while inner.entries.len() > capacity {
            // Oldest tick wins eviction; BTreeMap order breaks exact ties
            // toward the lexicographically smallest tenant, so the victim
            // is deterministic.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(tenant, _)| tenant.clone());
            let Some(victim) = victim else { return };
            inner.entries.remove(&victim);
            osr_stats::counters::record_frontend_eviction();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HdpOsr, HdpOsrConfig};
    use osr_dataset::protocol::TrainSet;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> HdpOsr {
        let mut rng = StdRng::seed_from_u64(seed);
        let blob = |cx: f64, rng: &mut StdRng| -> Vec<Vec<f64>> {
            (0..15)
                .map(|_| {
                    vec![
                        cx + 0.4 * sampling::standard_normal(rng),
                        0.4 * sampling::standard_normal(rng),
                    ]
                })
                .collect()
        };
        let train = TrainSet {
            class_ids: vec![1, 2],
            classes: vec![blob(-5.0, &mut rng), blob(5.0, &mut rng)],
        };
        let config = HdpOsrConfig { iterations: 6, ..Default::default() };
        HdpOsr::fit(&config, &train).unwrap()
    }

    #[test]
    fn resolve_hits_and_unknown_tenants_are_typed() {
        let registry = ModelRegistry::new(4);
        registry.insert("acme", Arc::new(tiny_model(1)));
        assert!(registry.resolve("acme").is_ok());
        let err = match registry.resolve("ghost") {
            Err(e) => e,
            Ok(_) => panic!("unknown tenant must not resolve"),
        };
        assert_eq!(err, OsrError::UnknownTenant("ghost".to_string()));
    }

    #[test]
    fn lru_evicts_the_least_recently_resolved_tenant() {
        let registry = ModelRegistry::new(2);
        let model: Arc<dyn CollectiveModel> = Arc::new(tiny_model(2));
        registry.insert("a", Arc::clone(&model));
        registry.insert("b", Arc::clone(&model));
        // Touch `a` so `b` becomes the LRU victim.
        registry.resolve("a").unwrap();
        let evictions_before = osr_stats::counters::frontend_evictions();
        registry.insert("c", Arc::clone(&model));
        assert_eq!(registry.len(), 2);
        assert!(registry.contains("a"));
        assert!(!registry.contains("b"), "LRU tenant must be evicted");
        assert!(registry.contains("c"));
        assert!(osr_stats::counters::frontend_evictions() > evictions_before);
    }

    #[test]
    fn cold_load_materializes_from_the_snapshot_store() {
        let dir = std::env::temp_dir().join("osr_registry_cold_load_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = tiny_model(3);
        let registry = ModelRegistry::new(2).with_snapshot_dir(&dir);
        let store = SnapshotStore::new(registry.snapshot_path("warm").unwrap());
        store.save(&model).unwrap();

        let cold_before = osr_stats::counters::frontend_cold_loads();
        let resolved = registry.resolve("warm").unwrap();
        assert_eq!(resolved.dim(), 2);
        assert!(osr_stats::counters::frontend_cold_loads() > cold_before);
        assert!(registry.contains("warm"), "cold load admits the model");
        // Second resolve is a warm hit: the counter must not move again.
        let cold_after = osr_stats::counters::frontend_cold_loads();
        registry.resolve("warm").unwrap();
        assert_eq!(osr_stats::counters::frontend_cold_loads(), cold_after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
