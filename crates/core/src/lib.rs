//! HDP-OSR — the paper's contribution: open set recognition by collective
//! decision under a Hierarchical Dirichlet Process.
//!
//! Each known class of the training set becomes one HDP *group*; the entire
//! test batch becomes one more group; all `J` groups are co-clustered with
//! the collapsed Gibbs sampler of [`osr_hdp`]. Because a DP mixture always
//! reserves probability `γ/(m_·· + γ)` for a brand-new mixture component
//! (the paper's Proposition 1), test points that no known class explains
//! spawn *new* subclasses instead of being absorbed — the model rejects
//! unknowns without any score threshold, and discovers the new categories
//! at subclass granularity as a by-product.
//!
//! The pipeline:
//!
//! 1. [`HdpOsr::fit`] — derive the base measure `H` from the training data
//!    (μ₀ = training mean, Σ₀ = ρ × pooled within-class covariance, Eq. 10)
//!    and store the per-class groups.
//! 2. [`HdpOsr::classify`] / [`HdpOsr::classify_detailed`] — append the
//!    test batch as group `J`, run the sampler (30 sweeps by default),
//!    prune subclasses carrying less than ϱ = 1 % of their group, associate
//!    each surviving subclass with the known classes that use it, and label
//!    every test point by its subclass's association (or
//!    [`Prediction::Unknown`] when it has none).
//! 3. [`discovery`] — estimate the number of unknown categories from the
//!    subclass counts (Eq. 11, reproduced in Tables 1–2).
//!
//! Serving is fit-once/serve-many by default ([`ServingMode::WarmStart`]):
//! `fit` checkpoints the converged training posterior and every batch is
//! answered from a warm clone, with [`BatchServer`] fanning independent
//! batches out over worker threads deterministically.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod collective;
mod decision;
pub mod discovery;
pub mod frontend;
pub mod inductive;
pub mod kmeans;
mod model;
pub mod observability;
pub mod registry;
mod serving;
pub mod snapshot;

pub use collective::{
    AttemptError, CollectiveModel, CollectiveSession, ModelCapabilities, CDOSR_METHOD,
};
pub use decision::{ClassifyOutcome, DegradeReason, Prediction, ServedVia};
pub use discovery::SubclassReport;
pub use frontend::{
    flush_seed, flush_trace_id, FlushOutcome, Frontend, FrontendConfig, MicroBatch, QueuedRequest,
    Response,
};
pub use inductive::FrozenModel;
pub use kmeans::{kmeans, refine_unknown_classes, KMeansResult, RefinedUnknownClass};
pub use model::{HdpOsr, HdpOsrConfig};
pub use observability::{
    batch_trace_id, BatchTrace, FitReport, FlushTrace, FlushTrigger, JsonlSink, RingSink,
    TraceRecord, TraceSink,
};
pub use registry::ModelRegistry;
pub use osr_hdp::{DishId, PosteriorSnapshot, SweepTrace};
pub use osr_stats::diagnostics::ChainDiagnostics;
pub use serving::{derive_batch_seed, BatchServer, RetryPolicy, ServePolicy, ServingMode};
pub use snapshot::{SnapshotInfo, SnapshotStore};

/// Errors produced by the HDP-OSR pipeline.
///
/// Marked `#[non_exhaustive]`: the serving stack's failure model grows over
/// time, so downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OsrError {
    /// The training set was unusable.
    InvalidTrainingSet(String),
    /// The test batch was unusable.
    InvalidTestSet(String),
    /// Invalid configuration value.
    InvalidConfig(String),
    /// Admission control: the test batch contained no points.
    EmptyBatch,
    /// Admission control: a test point's dimension does not match the model.
    DimensionMismatch {
        /// Index of the offending point within the batch.
        point: usize,
        /// Dimension the model expects.
        expected: usize,
        /// Dimension the point actually has.
        got: usize,
    },
    /// Admission control: a test point carries a NaN or infinite feature.
    NonFiniteFeature {
        /// Index of the offending point within the batch.
        point: usize,
        /// Index of the offending coordinate.
        coord: usize,
    },
    /// The sampler diverged on this batch and every allowed attempt was
    /// consumed (degradation was disabled or impossible).
    Diverged {
        /// Serve attempts consumed, including the final failed one.
        attempts: u32,
        /// The watchdog's verdict for the last attempt.
        reason: String,
    },
    /// A serving invariant broke — a worker panicked mid-batch or a result
    /// slot was never claimed. The batch's state was discarded; sibling
    /// batches are unaffected.
    Internal(String),
    /// Front-end admission: the tenant's undispatched backlog is at its
    /// fairness bound, so the request was shed instead of queued (the
    /// caller may retry after backoff; sibling tenants are unaffected).
    Overloaded {
        /// The tenant whose queue is full.
        tenant: String,
        /// The tenant's undispatched request count at rejection time.
        depth: usize,
    },
    /// Front-end routing: no warm model is registered for the tenant and
    /// no durable snapshot could be cold-loaded for it.
    UnknownTenant(String),
    /// Propagated sampler failure.
    Hdp(osr_hdp::HdpError),
    /// Propagated statistics failure.
    Stats(osr_stats::StatsError),
    /// Durable snapshot failure: corrupted or incompatible on-disk state,
    /// or an I/O error while persisting/loading it. The typed inner variant
    /// distinguishes truncation, bit-flips, version skew, and mismatches.
    Snapshot(osr_stats::snapshot::SnapshotError),
}

impl std::fmt::Display for OsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidTrainingSet(m) => write!(f, "invalid training set: {m}"),
            Self::InvalidTestSet(m) => write!(f, "invalid test set: {m}"),
            Self::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            Self::EmptyBatch => write!(f, "empty test batch"),
            Self::DimensionMismatch { point, expected, got } => {
                write!(f, "test point {point} has dimension {got}, expected {expected}")
            }
            Self::NonFiniteFeature { point, coord } => {
                write!(f, "test point {point} has a non-finite feature at coordinate {coord}")
            }
            Self::Diverged { attempts, reason } => {
                write!(f, "sampler diverged after {attempts} attempt(s): {reason}")
            }
            Self::Internal(m) => write!(f, "internal serving failure: {m}"),
            Self::Overloaded { tenant, depth } => {
                write!(f, "tenant {tenant} is overloaded ({depth} undispatched requests); request shed")
            }
            Self::UnknownTenant(tenant) => {
                write!(f, "no model registered or durably stored for tenant {tenant}")
            }
            Self::Hdp(e) => write!(f, "sampler failure: {e}"),
            Self::Stats(e) => write!(f, "statistics failure: {e}"),
            Self::Snapshot(e) => write!(f, "snapshot failure: {e}"),
        }
    }
}

impl std::error::Error for OsrError {}

impl From<osr_hdp::HdpError> for OsrError {
    fn from(e: osr_hdp::HdpError) -> Self {
        Self::Hdp(e)
    }
}

impl From<osr_stats::StatsError> for OsrError {
    fn from(e: osr_stats::StatsError) -> Self {
        Self::Stats(e)
    }
}

impl From<osr_stats::snapshot::SnapshotError> for OsrError {
    fn from(e: osr_stats::snapshot::SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OsrError>;
