//! HDP-OSR — the paper's contribution: open set recognition by collective
//! decision under a Hierarchical Dirichlet Process.
//!
//! Each known class of the training set becomes one HDP *group*; the entire
//! test batch becomes one more group; all `J` groups are co-clustered with
//! the collapsed Gibbs sampler of [`osr_hdp`]. Because a DP mixture always
//! reserves probability `γ/(m_·· + γ)` for a brand-new mixture component
//! (the paper's Proposition 1), test points that no known class explains
//! spawn *new* subclasses instead of being absorbed — the model rejects
//! unknowns without any score threshold, and discovers the new categories
//! at subclass granularity as a by-product.
//!
//! The pipeline:
//!
//! 1. [`HdpOsr::fit`] — derive the base measure `H` from the training data
//!    (μ₀ = training mean, Σ₀ = ρ × pooled within-class covariance, Eq. 10)
//!    and store the per-class groups.
//! 2. [`HdpOsr::classify`] / [`HdpOsr::classify_detailed`] — append the
//!    test batch as group `J`, run the sampler (30 sweeps by default),
//!    prune subclasses carrying less than ϱ = 1 % of their group, associate
//!    each surviving subclass with the known classes that use it, and label
//!    every test point by its subclass's association (or
//!    [`Prediction::Unknown`] when it has none).
//! 3. [`discovery`] — estimate the number of unknown categories from the
//!    subclass counts (Eq. 11, reproduced in Tables 1–2).
//!
//! Serving is fit-once/serve-many by default ([`ServingMode::WarmStart`]):
//! `fit` checkpoints the converged training posterior and every batch is
//! answered from a warm clone, with [`BatchServer`] fanning independent
//! batches out over worker threads deterministically.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod decision;
pub mod discovery;
pub mod inductive;
pub mod kmeans;
mod model;
mod serving;

pub use decision::{ClassifyOutcome, Prediction};
pub use discovery::SubclassReport;
pub use inductive::FrozenModel;
pub use kmeans::{kmeans, refine_unknown_classes, KMeansResult, RefinedUnknownClass};
pub use model::{HdpOsr, HdpOsrConfig};
pub use osr_hdp::PosteriorSnapshot;
pub use serving::{derive_batch_seed, BatchServer, ServingMode};

/// Errors produced by the HDP-OSR pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OsrError {
    /// The training set was unusable.
    InvalidTrainingSet(String),
    /// The test batch was unusable.
    InvalidTestSet(String),
    /// Invalid configuration value.
    InvalidConfig(String),
    /// Propagated sampler failure.
    Hdp(osr_hdp::HdpError),
    /// Propagated statistics failure.
    Stats(osr_stats::StatsError),
}

impl std::fmt::Display for OsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidTrainingSet(m) => write!(f, "invalid training set: {m}"),
            Self::InvalidTestSet(m) => write!(f, "invalid test set: {m}"),
            Self::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            Self::Hdp(e) => write!(f, "sampler failure: {e}"),
            Self::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for OsrError {}

impl From<osr_hdp::HdpError> for OsrError {
    fn from(e: osr_hdp::HdpError) -> Self {
        Self::Hdp(e)
    }
}

impl From<osr_stats::StatsError> for OsrError {
    fn from(e: osr_stats::StatsError) -> Self {
        Self::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OsrError>;
