//! The method-agnostic serving contract: [`CollectiveModel`] and the
//! per-attempt [`CollectiveSession`] it opens.
//!
//! The paper's claim is comparative — the *collective* decision beats
//! per-instance recognizers — so the production serving stack must serve
//! every method, not just CD-OSR. This module is the seam: everything the
//! [`crate::BatchServer`] needs from a model (admission dimensionality,
//! watchdogged attempts, a frozen fallback, capability flags for its
//! retry/degrade state machine) is expressed here as an object-safe trait,
//! and the server itself holds only a `&dyn CollectiveModel`.
//!
//! Two very different families implement it:
//!
//! * **CD-OSR** ([`crate::HdpOsr`]) — stochastic, sweep-based, divergence-
//!   prone. Its sessions run Gibbs sweeps under the watchdog, its retries
//!   genuinely explore new sampling paths (`reseedable`), and its frozen
//!   fallback is MAP inference under the fit-time checkpoint.
//! * **Per-instance baselines** (`osr-baselines`' serve adapter) —
//!   deterministic, sweep-free. Their sessions plan zero sweeps and answer
//!   in [`CollectiveSession::finish`]; reseeding a retry cannot change the
//!   answer, and the frozen fallback *is* the normal per-point prediction.
//!
//! The contract is written so the server's per-sweep control flow —
//! fault-delay, budget/deadline charge, watchdogged sweep, trace capture —
//! is identical to the pre-trait implementation: CD-OSR served through
//! `&dyn CollectiveModel` produces bit-for-bit the same outcomes and
//! byte-identical trace streams as the direct path (the golden-trace suite
//! pins this).

use rand::rngs::StdRng;

use osr_dataset::protocol::TrainSet;
use osr_hdp::SweepTrace;

use crate::decision::{ClassifyOutcome, DegradeReason};
use crate::{OsrError, Result};

/// Method tag of CD-OSR in traces and outcomes. [`crate::BatchTrace`]
/// serialization omits the `method` field for this tag, keeping the CD-OSR
/// trace stream byte-identical to the pre-trait goldens; every other method
/// is stamped explicitly.
pub const CDOSR_METHOD: &str = "cdosr";

/// What a model can do for the server's retry/degrade state machine. The
/// server consults these flags instead of inspecting model internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCapabilities {
    /// Retrying with a different seed can change the outcome (stochastic
    /// inference). When `false` the server reuses the first attempt's seed:
    /// re-deriving it would pretend a deterministic method explores new
    /// sampling paths.
    pub reseedable: bool,
    /// Attempts poll the thread-local divergence flag (numerical watchdog).
    /// Purely informational for the server — it always scrubs the flag
    /// between attempts — but lets callers know whether a
    /// `Diverged` outcome can occur organically.
    pub divergence_watchdog: bool,
    /// [`CollectiveModel::classify_frozen`] can answer when full service
    /// fails. When `false` an exhausted batch surfaces a typed error even
    /// under a degrading policy.
    pub frozen_fallback: bool,
    /// [`CollectiveModel::classify_from_snapshot`] can reload a durable
    /// last-good snapshot and serve from it when even the in-memory frozen
    /// fallback is unavailable. When `false` the server never consults an
    /// attached [`crate::SnapshotStore`] for this model.
    pub durable_snapshot: bool,
}

/// Why one serve attempt did not return a full outcome.
///
/// The server maps these onto its state machine: `Fatal` fails the batch in
/// place, `Diverged` burns a retry, and the resource breaches stop the
/// attempt loop and go straight to degradation.
#[derive(Debug)]
pub enum AttemptError {
    /// The attempt cannot succeed no matter how often it is retried.
    Fatal(OsrError),
    /// The watchdog declared the attempt divergent; a retry may succeed.
    Diverged(String),
    /// The batch's wall-clock deadline passed mid-attempt.
    DeadlineExceeded,
    /// The batch's total sweep budget ran out mid-attempt.
    BudgetExhausted,
}

/// One in-flight serve attempt, driven sweep-by-sweep by the server so the
/// budget/deadline accounting and trace capture stay method-agnostic.
///
/// Lifecycle: the server calls [`sweep`](Self::sweep) exactly
/// [`sweeps_planned`](Self::sweeps_planned) times (charging its budget
/// before each call), then [`finish`](Self::finish) once. A sweep-free
/// method plans zero sweeps and does all its work in `finish`.
pub trait CollectiveSession {
    /// Number of sweeps this attempt needs before it can finish.
    fn sweeps_planned(&self) -> usize;

    /// Run one watchdogged unit of work and report its trace.
    ///
    /// # Errors
    /// [`AttemptError::Diverged`] when the watchdog poisons the sweep;
    /// [`AttemptError::Fatal`] for unrecoverable failures.
    fn sweep(&mut self, rng: &mut StdRng) -> std::result::Result<SweepTrace, AttemptError>;

    /// Produce the collective outcome after all planned sweeps ran. Called
    /// at most once. The implementation stamps
    /// [`ClassifyOutcome::method`]; the server owns `trace_id` and
    /// `attempts`.
    ///
    /// # Errors
    /// Same taxonomy as [`sweep`](Self::sweep).
    fn finish(&mut self) -> std::result::Result<ClassifyOutcome, AttemptError>;
}

/// A fitted open-set model the production serving stack can drive: CD-OSR
/// or any baseline wrapped by the `osr-baselines` serve adapter.
///
/// Object-safe on purpose — [`crate::BatchServer`] holds
/// `&dyn CollectiveModel`, and the evaluation harness boxes whole method
/// lineups behind it.
pub trait CollectiveModel: Send + Sync {
    /// Stable lower-case method tag stamped into traces, outcomes, and
    /// bench reports (`"cdosr"`, `"wsvm"`, `"osnn"`, …).
    fn method(&self) -> &'static str;

    /// Feature dimension admission control validates batches against.
    fn dim(&self) -> usize;

    /// Capability flags for the server's retry/degrade state machine.
    fn capabilities(&self) -> ModelCapabilities;

    /// Re-fit the model in place on a new training set, keeping its
    /// configuration. Lets one boxed model serve successive trials of an
    /// experiment without reconstructing the trait object.
    ///
    /// # Errors
    /// Propagates training failures; on error the previous fitted state is
    /// unspecified and the model must be refitted before serving.
    fn fit(&mut self, train: &TrainSet) -> Result<()>;

    /// Open one serve attempt over `batch` (already admitted). The returned
    /// session borrows the model's warm state; the batch is copied in.
    ///
    /// # Errors
    /// [`AttemptError::Fatal`] when the session cannot be constructed.
    fn warm_session<'s>(
        &'s self,
        batch: &[Vec<f64>],
    ) -> std::result::Result<Box<dyn CollectiveSession + 's>, AttemptError>;

    /// Degraded fallback: answer `batch` without full collective service
    /// (no sweeps, no RNG, cannot diverge), or `None` when the model keeps
    /// no state to freeze — the server then surfaces a typed error.
    /// Implementations stamp `served_via: Degraded{reason}` and `attempts`
    /// on the outcome.
    fn classify_frozen(
        &self,
        batch: &[Vec<f64>],
        reason: DegradeReason,
        attempts: u32,
    ) -> Option<ClassifyOutcome>;

    /// Last-rung fallback: reload the last-good durable snapshot from
    /// `store` and answer `batch` frozen under the reloaded checkpoint, or
    /// `None` when the store holds nothing usable (missing, corrupted, or
    /// incompatible snapshot) or the method keeps no durable state
    /// ([`ModelCapabilities::durable_snapshot`] is `false`, the default).
    fn classify_from_snapshot(
        &self,
        store: &crate::snapshot::SnapshotStore,
        batch: &[Vec<f64>],
        reason: DegradeReason,
        attempts: u32,
    ) -> Option<ClassifyOutcome> {
        let _ = (store, batch, reason, attempts);
        None
    }

    /// One full serve attempt: open a session, drive every planned sweep
    /// (calling `admit` first — the server charges its sweep budget and
    /// honors injected delays there), collect traces, finish.
    ///
    /// The default driver reproduces the server's historical per-sweep
    /// order exactly; implementations should not override it unless their
    /// attempt structure genuinely differs.
    ///
    /// # Errors
    /// Whatever the session reports, plus anything `admit` returns.
    fn classify_collective(
        &self,
        batch: &[Vec<f64>],
        rng: &mut StdRng,
        admit: &mut dyn FnMut() -> std::result::Result<(), AttemptError>,
        sweeps: &mut Vec<SweepTrace>,
    ) -> std::result::Result<ClassifyOutcome, AttemptError> {
        let mut session = self.warm_session(batch)?;
        for _ in 0..session.sweeps_planned() {
            admit()?;
            sweeps.push(session.sweep(rng)?);
        }
        session.finish()
    }
}
