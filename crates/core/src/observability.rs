//! Observability: structured trace records for fits and served batches,
//! and the sinks that collect them.
//!
//! Two record kinds flow through one stream:
//!
//! * [`FitReport`] — the training burn-in's full [`SweepTrace`] series plus
//!   convergence diagnostics (split-R̂, effective sample size, a burn-in
//!   recommendation) over its log-likelihood trace. Built once per warm fit
//!   and kept on the model ([`crate::HdpOsr::fit_report`]).
//! * [`BatchTrace`] — one record per batch a [`crate::BatchServer`] serves:
//!   a reproducible trace id, the attempt count, how the answer was produced
//!   ([`ServedVia`]), whether the worker thread started with inherited
//!   numerical poison, and the final attempt's per-sweep traces.
//!
//! Records are deterministic: [`SweepTrace`] serialization excludes wall
//! times, and a [`crate::BatchServer`] emits batch records in batch-index
//! order after all workers finish, so a seeded run writes byte-identical
//! JSONL regardless of worker count or scheduling.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

use parking_lot::Mutex;
use serde::{field, DeError, Deserialize, Serialize, Value};

use osr_hdp::SweepTrace;
use osr_stats::diagnostics::ChainDiagnostics;

use crate::collective::CDOSR_METHOD;
use crate::decision::ServedVia;

/// The training burn-in's trace and convergence diagnostics, built by
/// `HdpOsr::fit` under warm-start serving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// Seed of the training-only burn-in (`HdpOsrConfig::train_seed`).
    pub train_seed: u64,
    /// One [`SweepTrace`] per burn-in sweep, in sweep order.
    pub trace: Vec<SweepTrace>,
    /// Split-R̂ / ESS / burn-in over the joint log-likelihood trace.
    pub diagnostics: ChainDiagnostics,
}

impl FitReport {
    /// Assemble a report from a completed burn-in trace, running the
    /// convergence diagnostics over its log-likelihood series.
    pub fn from_trace(train_seed: u64, trace: Vec<SweepTrace>) -> Self {
        let ll: Vec<f64> = trace.iter().map(|t| t.log_likelihood).collect();
        let diagnostics = ChainDiagnostics::from_trace(&ll);
        Self { train_seed, trace, diagnostics }
    }
}

/// Structured record of one batch served by a [`crate::BatchServer`].
///
/// Hand-implements `Serialize`/`Deserialize`: the `method` field is omitted
/// for CD-OSR ([`CDOSR_METHOD`]) so the CD-OSR trace stream stays
/// byte-identical to the pre-trait goldens, while baseline methods served
/// through the same stack get explicitly method-tagged records. Absent on
/// the wire means CD-OSR on the way back in.
#[derive(Debug, Clone)]
pub struct BatchTrace {
    /// Reproducible identifier, [`batch_trace_id`]`(seed, batch)` — also
    /// stamped on the matching [`crate::ClassifyOutcome::trace_id`].
    pub trace_id: String,
    /// Index of the batch within the `classify_batches` call.
    pub batch: usize,
    /// Stable tag of the method that served the batch
    /// ([`crate::ClassifyOutcome::method`]). Serialized only when it is not
    /// [`CDOSR_METHOD`].
    pub method: String,
    /// Serve attempts consumed, including the successful/final one.
    pub attempts: u32,
    /// How the outcome was produced (warm, cold, or degraded).
    pub served_via: ServedVia,
    /// True when the worker thread entered this batch with the thread-local
    /// divergence flag already poisoned — a fault-isolation leak from an
    /// earlier batch. Always false when per-batch cleanup works.
    pub inherited_poison: bool,
    /// Per-sweep traces of the attempt that produced the answer (empty for
    /// degraded outcomes, which run frozen inference with no sweeps).
    pub sweeps: Vec<SweepTrace>,
}

impl Serialize for BatchTrace {
    fn to_value(&self) -> Value {
        // `method` omitted for CD-OSR: see the struct docs.
        let mut entries = vec![
            ("trace_id".to_string(), self.trace_id.to_value()),
            ("batch".to_string(), self.batch.to_value()),
        ];
        if self.method != CDOSR_METHOD {
            entries.push(("method".to_string(), self.method.to_value()));
        }
        entries.push(("attempts".to_string(), self.attempts.to_value()));
        entries.push(("served_via".to_string(), self.served_via.to_value()));
        entries.push(("inherited_poison".to_string(), self.inherited_poison.to_value()));
        entries.push(("sweeps".to_string(), self.sweeps.to_value()));
        Value::Obj(entries)
    }
}

impl Deserialize for BatchTrace {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        match v {
            Value::Obj(entries) => Ok(Self {
                trace_id: field(entries, "trace_id")?,
                batch: field(entries, "batch")?,
                method: match entries.iter().find(|(k, _)| k == "method") {
                    Some((_, v)) => String::from_value(v)
                        .map_err(|e| DeError::msg(format!("field `method`: {e}")))?,
                    None => CDOSR_METHOD.to_string(),
                },
                attempts: field(entries, "attempts")?,
                served_via: field(entries, "served_via")?,
                inherited_poison: field(entries, "inherited_poison")?,
                sweeps: field(entries, "sweeps")?,
            }),
            other => Err(DeError::expected("struct BatchTrace", other)),
        }
    }
}

/// What made the front-end flush a micro-batch out of a tenant queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushTrigger {
    /// The tenant queue reached `max_batch` queued requests.
    Size,
    /// The oldest queued request hit the latency SLO (`max_delay_ns`), or
    /// the front-end was drained.
    Deadline,
}

/// Structured record of one coalesced micro-batch served through the
/// front-end ([`crate::frontend::Frontend`]).
///
/// Wraps the underlying [`BatchTrace`] — re-stamped with the flush's
/// reproducible trace id and its global flush sequence number — and adds
/// the coalescing metadata: which tenant, which per-tenant flush epoch,
/// what triggered the flush, and which request ids rode in the batch.
/// Everything here is a pure function of the arrival script and the
/// front-end configuration, so the stream is byte-identical across worker
/// counts and arrival interleavings within a flush.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlushTrace {
    /// Tenant whose queue produced this micro-batch.
    pub tenant: String,
    /// Per-tenant flush epoch (0-based); with the tenant it determines the
    /// batch seed via [`crate::frontend::flush_seed`].
    pub flush_epoch: u64,
    /// What fired the flush.
    pub trigger: FlushTrigger,
    /// Request ids coalesced into the batch, in arrival order.
    pub requests: Vec<u64>,
    /// The serve trace, with `trace_id` set to the flush's id and `batch`
    /// set to the global flush sequence number.
    pub batch: BatchTrace,
}

/// One line of the structured trace stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A training burn-in report.
    Fit(FitReport),
    /// A served batch.
    Batch(BatchTrace),
    /// A coalesced micro-batch served through the front-end.
    Flush(FlushTrace),
}

impl TraceRecord {
    /// Render the record as one line of JSON (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            // Unreachable for the derived shapes; keep the stream a valid
            // JSONL sequence even if a future variant breaks that.
            format!("{{\"error\":\"unserializable trace record: {e}\"}}")
        })
    }

    /// Parse a record back from one JSONL line.
    ///
    /// # Errors
    /// Fails on malformed JSON or a shape mismatch.
    pub fn from_jsonl(line: &str) -> std::result::Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

/// The reproducible trace id of batch `index` under server seed `seed` —
/// a pure function of the two, so reruns and worker-count changes produce
/// the same id.
pub fn batch_trace_id(seed: u64, index: usize) -> String {
    format!("batch-{index:04}-seed-{seed:016x}")
}

/// A destination for [`TraceRecord`]s. Implementations must be callable
/// from the batch server's worker scope, hence `Send + Sync`; `record` is
/// best-effort and must not panic on I/O failure.
pub trait TraceSink: Send + Sync {
    /// Accept one record.
    fn record(&self, record: &TraceRecord);
}

/// An in-memory ring buffer keeping the most recent `capacity` records.
pub struct RingSink {
    capacity: usize,
    records: Mutex<VecDeque<TraceRecord>>,
}

impl RingSink {
    /// A ring holding at most `capacity` records (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), records: Mutex::new(VecDeque::new()) }
    }

    /// The buffered records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().iter().cloned().collect()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&self, record: &TraceRecord) {
        let mut records = self.records.lock();
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(record.clone());
    }
}

/// A sink appending one JSON line per record to a writer. Writes are
/// best-effort: an I/O failure drops the record rather than poisoning the
/// serving path (tracing must never fail a batch).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wrap an arbitrary writer.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        Self { out: Mutex::new(Box::new(writer)) }
    }

    /// Create (truncate) `path` and stream records into it.
    ///
    /// # Errors
    /// Propagates the file-creation failure.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, record: &TraceRecord) {
        let mut out = self.out.lock();
        let _ = writeln!(out, "{}", record.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(i: usize, ll: f64) -> SweepTrace {
        SweepTrace {
            sweep: i,
            log_likelihood: ll,
            n_dishes: 3,
            total_tables: 5,
            tables_per_group: vec![2, 2, 1],
            gamma: 1.5,
            alpha: 0.7,
            seat_moves: 90,
            wall_ns: 1234,
        }
    }

    #[test]
    fn trace_ids_are_reproducible_and_distinct() {
        assert_eq!(batch_trace_id(7, 3), batch_trace_id(7, 3));
        assert_ne!(batch_trace_id(7, 3), batch_trace_id(7, 4));
        assert_ne!(batch_trace_id(7, 3), batch_trace_id(8, 3));
        assert_eq!(batch_trace_id(0xAB, 2), "batch-0002-seed-00000000000000ab");
    }

    #[test]
    fn fit_report_runs_diagnostics_over_the_ll_trace() {
        let trace: Vec<SweepTrace> =
            (0..32).map(|i| sweep(i, -100.0 + 0.01 * (i % 3) as f64)).collect();
        let report = FitReport::from_trace(9, trace);
        assert_eq!(report.diagnostics.n, 32);
        assert!(report.diagnostics.rhat.is_finite());
        assert!(report.diagnostics.ess >= 1.0);
        assert!(report.diagnostics.burn_in <= 16);
    }

    #[test]
    fn records_roundtrip_through_jsonl() {
        let batch = TraceRecord::Batch(BatchTrace {
            trace_id: batch_trace_id(11, 0),
            batch: 0,
            method: CDOSR_METHOD.to_string(),
            attempts: 2,
            served_via: ServedVia::Warm,
            inherited_poison: false,
            sweeps: vec![sweep(0, -50.5)],
        });
        let line = batch.to_jsonl();
        assert!(!line.contains('\n'), "one record = one line");
        assert!(!line.contains("wall_ns"), "wall time must stay out of the stream");
        assert!(!line.contains("method"), "CD-OSR records must omit the method tag");
        let back = TraceRecord::from_jsonl(&line).unwrap();
        match back {
            TraceRecord::Batch(b) => {
                assert_eq!(b.trace_id, batch_trace_id(11, 0));
                assert_eq!(b.method, CDOSR_METHOD, "absent method defaults to CD-OSR");
                assert_eq!(b.attempts, 2);
                assert_eq!(b.served_via, ServedVia::Warm);
                assert_eq!(b.sweeps.len(), 1);
                assert_eq!(b.sweeps[0].log_likelihood, -50.5);
                assert_eq!(b.sweeps[0].wall_ns, 0, "wall time is not serialized");
            }
            other => panic!("round-trip changed the variant: {other:?}"),
        }

        let fit = TraceRecord::Fit(FitReport::from_trace(3, vec![sweep(0, -1.0)]));
        let back = TraceRecord::from_jsonl(&fit.to_jsonl()).unwrap();
        assert!(matches!(back, TraceRecord::Fit(f) if f.train_seed == 3));
    }

    #[test]
    fn flush_records_roundtrip_through_jsonl() {
        let record = TraceRecord::Flush(FlushTrace {
            tenant: "acme".to_string(),
            flush_epoch: 2,
            trigger: FlushTrigger::Size,
            requests: vec![4, 9, 17],
            batch: BatchTrace {
                trace_id: "flush-acme-0002-seed-0000000000000007".to_string(),
                batch: 5,
                method: CDOSR_METHOD.to_string(),
                attempts: 1,
                served_via: ServedVia::Warm,
                inherited_poison: false,
                sweeps: vec![sweep(0, -3.0)],
            },
        });
        let line = record.to_jsonl();
        assert!(!line.contains('\n'), "one record = one line");
        assert!(!line.contains("wall_ns"), "wall time must stay out of the stream");
        match TraceRecord::from_jsonl(&line).unwrap() {
            TraceRecord::Flush(f) => {
                assert_eq!(f.tenant, "acme");
                assert_eq!(f.flush_epoch, 2);
                assert_eq!(f.trigger, FlushTrigger::Size);
                assert_eq!(f.requests, vec![4, 9, 17]);
                assert_eq!(f.batch.batch, 5);
                assert_eq!(f.batch.method, CDOSR_METHOD);
            }
            other => panic!("round-trip changed the variant: {other:?}"),
        }
    }

    #[test]
    fn baseline_records_carry_an_explicit_method_tag() {
        let batch = TraceRecord::Batch(BatchTrace {
            trace_id: batch_trace_id(4, 1),
            batch: 1,
            method: "osnn".to_string(),
            attempts: 1,
            served_via: ServedVia::Warm,
            inherited_poison: false,
            sweeps: Vec::new(),
        });
        let line = batch.to_jsonl();
        assert!(line.contains("\"method\":\"osnn\""), "line was: {line}");
        match TraceRecord::from_jsonl(&line).unwrap() {
            TraceRecord::Batch(b) => assert_eq!(b.method, "osnn"),
            other => panic!("round-trip changed the variant: {other:?}"),
        }
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_records() {
        let ring = RingSink::new(2);
        assert!(ring.is_empty());
        for i in 0..4 {
            ring.record(&TraceRecord::Batch(BatchTrace {
                trace_id: batch_trace_id(1, i),
                batch: i,
                method: CDOSR_METHOD.to_string(),
                attempts: 1,
                served_via: ServedVia::Warm,
                inherited_poison: false,
                sweeps: Vec::new(),
            }));
        }
        assert_eq!(ring.len(), 2);
        let kept: Vec<usize> = ring
            .records()
            .iter()
            .map(|r| match r {
                TraceRecord::Batch(b) => b.batch,
                TraceRecord::Fit(_) | TraceRecord::Flush(_) => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3], "oldest records are evicted first");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Shared(std::sync::Arc::clone(&buf)));
        let record = TraceRecord::Fit(FitReport::from_trace(1, vec![sweep(0, -2.0)]));
        sink.record(&record);
        sink.record(&record);
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(TraceRecord::from_jsonl(line).is_ok());
        }
    }
}
