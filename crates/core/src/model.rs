//! The HDP-OSR model: prior construction (fit) and transductive
//! classification of a test batch (classify).

use std::sync::Arc;

use rand::Rng;
use serde::{Deserialize, Serialize};

use osr_dataset::protocol::TrainSet;
use osr_hdp::{HdpConfig, PosteriorSnapshot};
use osr_linalg::Matrix;
use osr_stats::NiwParams;

use crate::decision::{ClassifyOutcome, Prediction};
use crate::serving::{self, ServingMode, WarmState};
use crate::{OsrError, Result};

/// Configuration of HDP-OSR (§4.1.2 defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HdpOsrConfig {
    /// β — the NIW mean pseudo-count κ₀. Paper: 1.
    pub beta: f64,
    /// ν = d + `nu_offset` degrees of freedom for the Wishart part; the
    /// paper selects ν from `{d, d+1, …, d+20}`.
    pub nu_offset: f64,
    /// ρ — scale of Σ₀ relative to the pooled within-class covariance
    /// (Eq. 10); the paper selects ρ from `{0.1, 0.2, …, 1.0}`.
    pub rho: f64,
    /// ϱ — a subclass is dropped from its group's composition when it holds
    /// less than this fraction of the group's items. Paper: 0.01.
    pub varrho: f64,
    /// Gibbs sweeps per classification. Paper: 30.
    pub iterations: usize,
    /// Gamma prior on the top-level concentration γ. Paper: Gamma(100, 1).
    pub gamma_prior: (f64, f64),
    /// Gamma prior on the group-level concentration α₀. Paper: Gamma(10, 1).
    pub alpha_prior: (f64, f64),
    /// Resample the concentrations each sweep.
    pub resample_concentrations: bool,
    /// Number of posterior states the collective decision votes over. `1`
    /// (the paper's behaviour) decides from the final Gibbs state; larger
    /// values run that many *extra* sweeps after burn-in and take a
    /// per-point majority over them — a cheap posterior average that
    /// smooths single-state sampling noise.
    pub decision_sweeps: usize,
    /// How `classify` is served: [`ServingMode::WarmStart`] (default)
    /// amortizes the training burn-in across batches via a posterior
    /// checkpoint; [`ServingMode::ColdStart`] reproduces the original
    /// per-batch transductive re-run.
    pub serving: ServingMode,
    /// Seed of the training-only burn-in under
    /// [`ServingMode::WarmStart`]. Fixed at fit time so the checkpoint (and
    /// hence every subsequent warm decision) is reproducible regardless of
    /// which RNG later serves the batches.
    pub train_seed: u64,
}

impl Default for HdpOsrConfig {
    fn default() -> Self {
        Self {
            beta: 1.0,
            nu_offset: 0.0,
            rho: 4.0,
            varrho: 0.01,
            iterations: 30,
            gamma_prior: (100.0, 1.0),
            alpha_prior: (10.0, 1.0),
            resample_concentrations: true,
            decision_sweeps: 1,
            serving: ServingMode::WarmStart,
            train_seed: 42,
        }
    }
}

impl HdpOsrConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if !(self.beta > 0.0) {
            return Err(OsrError::InvalidConfig(format!("beta must be > 0, got {}", self.beta)));
        }
        if !(self.nu_offset >= 0.0) {
            return Err(OsrError::InvalidConfig(format!(
                "nu_offset must be ≥ 0, got {}",
                self.nu_offset
            )));
        }
        if !(self.rho > 0.0) {
            return Err(OsrError::InvalidConfig(format!("rho must be > 0, got {}", self.rho)));
        }
        if !(0.0..1.0).contains(&self.varrho) {
            return Err(OsrError::InvalidConfig(format!(
                "varrho must be in [0,1), got {}",
                self.varrho
            )));
        }
        if self.iterations == 0 {
            return Err(OsrError::InvalidConfig("iterations must be ≥ 1".into()));
        }
        if self.decision_sweeps == 0 {
            return Err(OsrError::InvalidConfig("decision_sweeps must be ≥ 1".into()));
        }
        Ok(())
    }

    pub(crate) fn hdp_config(&self) -> HdpConfig {
        HdpConfig {
            gamma_prior: self.gamma_prior,
            alpha_prior: self.alpha_prior,
            resample_concentrations: self.resample_concentrations,
            iterations: self.iterations,
        }
    }
}

/// A fitted HDP-OSR model: the base measure derived from the training data
/// plus the per-class training groups (kept because classification is
/// transductive — train and test are co-clustered).
///
/// Under [`ServingMode::WarmStart`] (the default) fitting also runs the
/// training-only Gibbs burn-in once and checkpoints the converged posterior
/// behind an [`Arc`], so clones of the model and concurrent batch servers
/// share a single copy of the warm state.
#[derive(Debug, Clone)]
pub struct HdpOsr {
    config: HdpOsrConfig,
    params: NiwParams,
    classes: Vec<Vec<Vec<f64>>>,
    dim: usize,
    warm: Option<Arc<WarmState>>,
}

impl HdpOsr {
    /// Derive the NIW base measure from the training set (Eq. 9–10): prior
    /// mean = mean of all training samples, prior scale Σ₀ = ρ × pooled
    /// within-class covariance, κ₀ = β, ν = d + `nu_offset`.
    ///
    /// # Errors
    /// Fails on an empty/degenerate training set (including non-finite
    /// features — the same admission standard classification applies) or
    /// invalid configuration. A rank-deficient pooled covariance is repaired
    /// with diagonal jitter.
    pub fn fit(config: &HdpOsrConfig, train: &TrainSet) -> Result<Self> {
        config.validate()?;
        crate::admission::validate_train(train)?;
        let dim = train.dim();

        // μ₀ = mean of the training samples.
        let all: Vec<&[f64]> = train.classes.iter().flatten().map(Vec::as_slice).collect();
        let mu0 = osr_linalg::vector::mean(&all)
            .ok_or_else(|| OsrError::InvalidTrainingSet("no training samples".into()))?;

        // Σ₀ = ρ × pooled within-class covariance (Eq. 10).
        let n_total = all.len();
        let j_minus_1 = train.n_classes();
        let mut pooled = Matrix::zeros(dim, dim);
        for class in &train.classes {
            let refs: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
            let cov = Matrix::covariance(&refs, dim);
            pooled.add_scaled((class.len().saturating_sub(1)) as f64, &cov);
        }
        let denom = (n_total as f64 - j_minus_1 as f64).max(1.0);
        pooled.scale_in_place(config.rho / denom);

        let nu = dim as f64 + config.nu_offset;
        let params = build_niw_with_jitter(mu0, config.beta, nu, pooled)?;
        let mut model =
            Self { config: *config, params, classes: train.classes.clone(), dim, warm: None };
        if config.serving == ServingMode::WarmStart {
            model.warm = Some(Arc::new(WarmState::build(&model)?));
        }
        Ok(model)
    }

    /// Feature dimension the model expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of known classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The derived base-measure hyperparameters (for inspection/tests).
    pub fn params(&self) -> &NiwParams {
        &self.params
    }

    /// The stored per-class training points (needed by the inductive
    /// [`crate::inductive::FrozenModel`] to rebuild dish posteriors).
    pub fn classes(&self) -> &[Vec<Vec<f64>>] {
        &self.classes
    }

    /// The model's configuration.
    pub fn config(&self) -> &HdpOsrConfig {
        &self.config
    }

    /// The converged training checkpoint, when the model was fitted under
    /// [`ServingMode::WarmStart`] (`None` under cold start).
    pub fn snapshot(&self) -> Option<&PosteriorSnapshot> {
        self.warm.as_deref().map(|w| &w.snapshot)
    }

    /// The training burn-in's trace and convergence diagnostics (split-R̂,
    /// effective sample size, burn-in recommendation), when the model was
    /// fitted under [`ServingMode::WarmStart`] (`None` under cold start).
    pub fn fit_report(&self) -> Option<&crate::observability::FitReport> {
        self.warm.as_deref().map(|w| &w.fit_report)
    }

    pub(crate) fn warm(&self) -> Option<&WarmState> {
        self.warm.as_deref()
    }

    /// Reassemble a fitted model from durable-snapshot parts: the decoded
    /// configuration, the training groups recovered from the checkpoint,
    /// and the rebuilt warm state. Used only by [`crate::SnapshotStore`] —
    /// every invariant was revalidated by the snapshot decode path.
    pub(crate) fn from_snapshot_parts(
        config: HdpOsrConfig,
        classes: Vec<Vec<Vec<f64>>>,
        warm: WarmState,
    ) -> Self {
        let params = warm.snapshot.params().clone();
        let dim = params.dim();
        Self { config, params, classes, dim, warm: Some(Arc::new(warm)) }
    }

    /// Classify a test batch; convenience wrapper around
    /// [`classify_detailed`](Self::classify_detailed).
    ///
    /// # Errors
    /// See [`classify_detailed`](Self::classify_detailed).
    pub fn classify<R: Rng + ?Sized>(
        &self,
        test: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<Vec<Prediction>> {
        Ok(self.classify_detailed(test, rng)?.predictions)
    }

    /// Serve one test batch and return the full collective decision:
    /// predictions, subclass report (Tables 1–2), and sampler diagnostics.
    ///
    /// Under [`ServingMode::WarmStart`] the batch is co-clustered against
    /// the fit-time posterior checkpoint (only the batch is reseated);
    /// under [`ServingMode::ColdStart`] the known classes and the batch are
    /// re-clustered from scratch, exactly as in the paper's protocol.
    ///
    /// # Errors
    /// Fails on an empty test batch, dimension mismatches, or sampler
    /// construction failure.
    pub fn classify_detailed<R: Rng + ?Sized>(
        &self,
        test: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<ClassifyOutcome> {
        serving::serve_batch(self, test, rng)
    }
}

/// Build NIW hyperparameters, repairing a rank-deficient scale matrix with
/// the shared escalating-jitter factorizer (singular pooled covariances
/// happen when a class has fewer points than dimensions).
fn build_niw_with_jitter(
    mu0: Vec<f64>,
    kappa0: f64,
    nu0: f64,
    mut psi0: Matrix,
) -> Result<NiwParams> {
    let (_chol, jitter) = osr_stats::factor_spd_with_jitter(&psi0)
        .map_err(|e| OsrError::Stats(osr_stats::StatsError::Linalg(e)))?;
    if jitter > 0.0 {
        for i in 0..psi0.rows() {
            psi0[(i, i)] += jitter;
        }
    }
    Ok(NiwParams::new(mu0, kappa0, nu0, psi0)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + std * sampling::standard_normal(rng),
                    cy + std * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    /// Two known classes far apart; unknowns in a third location.
    fn scenario(rng: &mut StdRng) -> (TrainSet, Vec<Vec<f64>>, usize) {
        let class0 = blob(rng, -6.0, 0.0, 40, 0.5);
        let class1 = blob(rng, 6.0, 0.0, 40, 0.5);
        let train = TrainSet { class_ids: vec![10, 20], classes: vec![class0, class1] };
        let mut test = blob(rng, -6.0, 0.0, 20, 0.5); // known 0
        test.extend(blob(rng, 6.0, 0.0, 20, 0.5)); // known 1
        test.extend(blob(rng, 0.0, 9.0, 20, 0.5)); // unknown
        (train, test, 40)
    }

    fn fast_config() -> HdpOsrConfig {
        HdpOsrConfig { iterations: 10, ..Default::default() }
    }

    #[test]
    fn classifies_knowns_and_rejects_unknowns() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test, n_known_pts) = scenario(&mut rng);
        let model = HdpOsr::fit(&fast_config(), &train).unwrap();
        let preds = model.classify(&test, &mut rng).unwrap();
        assert_eq!(preds.len(), 60);

        let correct0 = preds[..20].iter().filter(|p| **p == Prediction::Known(0)).count();
        let correct1 = preds[20..40].iter().filter(|p| **p == Prediction::Known(1)).count();
        let rejected = preds[n_known_pts..].iter().filter(|p| **p == Prediction::Unknown).count();
        assert!(correct0 >= 18, "class 0 recall {correct0}/20");
        assert!(correct1 >= 18, "class 1 recall {correct1}/20");
        assert!(rejected >= 18, "unknown rejection {rejected}/20");
    }

    #[test]
    fn discovery_report_estimates_one_unknown_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test, _) = scenario(&mut rng);
        let model = HdpOsr::fit(&fast_config(), &train).unwrap();
        let out = model.classify_detailed(&test, &mut rng).unwrap();
        // Δ is a rough estimate; with unimodal classes it should be small
        // and nonzero.
        assert!(out.report.n_new_subclasses() >= 1, "no new subclasses found");
        assert!(
            (1..=3).contains(&out.report.delta_estimate),
            "Δ = {} out of plausible range",
            out.report.delta_estimate
        );
        // Proportions over surviving subclasses sum to ~1.
        let sum = out.report.test_known_proportion + out.report.test_new_proportion;
        assert!((sum - 1.0).abs() < 1e-9, "proportions sum to {sum}");
        // Roughly a third of the test batch is unknown.
        assert!(out.report.test_new_proportion > 0.15);
        assert!(out.report.test_known_proportion > 0.4);
    }

    #[test]
    fn closed_world_test_finds_no_new_subclasses_worth_reporting() {
        let mut rng = StdRng::seed_from_u64(3);
        let class0 = blob(&mut rng, -5.0, 0.0, 40, 0.5);
        let class1 = blob(&mut rng, 5.0, 0.0, 40, 0.5);
        let train = TrainSet { class_ids: vec![0, 1], classes: vec![class0, class1] };
        let mut test = blob(&mut rng, -5.0, 0.0, 25, 0.5);
        test.extend(blob(&mut rng, 5.0, 0.0, 25, 0.5));
        let model = HdpOsr::fit(&fast_config(), &train).unwrap();
        let out = model.classify_detailed(&test, &mut rng).unwrap();
        assert!(
            out.report.test_new_proportion < 0.1,
            "closed world leaked {:.2}% to new subclasses",
            out.report.test_new_proportion * 100.0
        );
    }

    #[test]
    fn outcome_is_deterministic_under_seed() {
        let mut setup_rng = StdRng::seed_from_u64(4);
        let (train, test, _) = scenario(&mut setup_rng);
        let model = HdpOsr::fit(&fast_config(), &train).unwrap();
        let a = model.classify(&test, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = model.classify(&test, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fit_derives_paper_prior() {
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![
                vec![vec![0.0, 0.0], vec![2.0, 0.0]],
                vec![vec![10.0, 4.0], vec![12.0, 4.0]],
            ],
        };
        let model = HdpOsr::fit(&HdpOsrConfig::default(), &train).unwrap();
        // μ₀ = grand mean = (6, 2).
        assert_eq!(model.params().mu0, vec![6.0, 2.0]);
        assert_eq!(model.params().kappa0, 1.0);
        assert_eq!(model.params().nu0, 2.0); // d + nu_offset (default 0)
        assert_eq!(model.n_classes(), 2);
        assert_eq!(model.dim(), 2);
    }

    #[test]
    fn fit_survives_rank_deficient_covariance() {
        // Two points per class in 3-d: pooled covariance is rank ≤ 2.
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![
                vec![vec![0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]],
                vec![vec![5.0, 5.0, 5.0], vec![6.0, 5.0, 5.0]],
            ],
        };
        let model = HdpOsr::fit(&HdpOsrConfig::default(), &train);
        assert!(model.is_ok(), "jitter should repair singular Σ₀: {model:?}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let train = TrainSet { class_ids: vec![], classes: vec![] };
        assert!(HdpOsr::fit(&HdpOsrConfig::default(), &train).is_err());

        let train = TrainSet {
            class_ids: vec![0],
            classes: vec![vec![vec![0.0, 0.0], vec![1.0, 1.0]]],
        };
        let bad = HdpOsrConfig { rho: 0.0, ..Default::default() };
        assert!(HdpOsr::fit(&bad, &train).is_err());
        let bad = HdpOsrConfig { iterations: 0, ..Default::default() };
        assert!(HdpOsr::fit(&bad, &train).is_err());
        let bad = HdpOsrConfig { varrho: 1.0, ..Default::default() };
        assert!(HdpOsr::fit(&bad, &train).is_err());

        let model = HdpOsr::fit(&fast_config(), &train).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(model.classify(&[], &mut rng).is_err());
        assert!(model.classify(&[vec![0.0]], &mut rng).is_err());
    }

    #[test]
    fn fit_rejects_non_finite_training_features() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let train = TrainSet {
                class_ids: vec![0, 1],
                classes: vec![
                    vec![vec![0.0, 0.0], vec![1.0, 1.0]],
                    vec![vec![5.0, 5.0], vec![bad, 5.0]],
                ],
            };
            assert!(
                matches!(
                    HdpOsr::fit(&HdpOsrConfig::default(), &train),
                    Err(OsrError::InvalidTrainingSet(_))
                ),
                "training value {bad} must be rejected at fit time"
            );
        }
    }

    #[test]
    fn consensus_decision_matches_single_state_on_easy_data() {
        let mut rng = StdRng::seed_from_u64(8);
        let (train, test, _) = scenario(&mut rng);
        let single = HdpOsrConfig { iterations: 8, decision_sweeps: 1, ..Default::default() };
        let voted = HdpOsrConfig { iterations: 8, decision_sweeps: 5, ..Default::default() };
        let m1 = HdpOsr::fit(&single, &train).unwrap();
        let m2 = HdpOsr::fit(&voted, &train).unwrap();
        let p1 = m1.classify(&test, &mut StdRng::seed_from_u64(3)).unwrap();
        let p2 = m2.classify(&test, &mut StdRng::seed_from_u64(3)).unwrap();
        // On a trivially separated scene both decide (almost) identically.
        let agree = p1.iter().zip(&p2).filter(|(a, b)| a == b).count();
        assert!(agree * 10 >= p1.len() * 9, "voting changed {} of {}", p1.len() - agree, p1.len());
        // And the voted run is still accurate.
        let correct = p2[..20].iter().filter(|p| **p == Prediction::Known(0)).count();
        assert!(correct >= 18);
    }

    #[test]
    fn zero_decision_sweeps_is_rejected() {
        let train = TrainSet {
            class_ids: vec![0],
            classes: vec![vec![vec![0.0, 0.0], vec![1.0, 1.0]]],
        };
        let bad = HdpOsrConfig { decision_sweeps: 0, ..Default::default() };
        assert!(HdpOsr::fit(&bad, &train).is_err());
    }

    #[test]
    fn multimodal_class_yields_multiple_subclasses() {
        let mut rng = StdRng::seed_from_u64(5);
        // One known class with two distinct modes.
        let mut class0 = blob(&mut rng, -4.0, 0.0, 30, 0.4);
        class0.extend(blob(&mut rng, 4.0, 0.0, 30, 0.4));
        let class1 = blob(&mut rng, 0.0, 8.0, 30, 0.4);
        let train = TrainSet { class_ids: vec![0, 1], classes: vec![class0, class1] };
        let test = blob(&mut rng, -4.0, 0.0, 10, 0.4);
        let model = HdpOsr::fit(&fast_config(), &train).unwrap();
        let out = model.classify_detailed(&test, &mut rng).unwrap();
        assert!(
            out.report.known[0].n_subclasses() >= 2,
            "bimodal class modeled with {} subclass(es)",
            out.report.known[0].n_subclasses()
        );
        // All test points come from class 0's left mode.
        let correct =
            out.predictions.iter().filter(|p| **p == Prediction::Known(0)).count();
        assert!(correct >= 9, "recall {correct}/10");
    }
}
