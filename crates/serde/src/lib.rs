//! Serialization substrate for the `hdp-osr` workspace.
//!
//! This crate is a self-contained stand-in for the subset of the `serde 1.x`
//! API the workspace uses. The build environment has no access to crates.io,
//! so the real `serde` cannot be fetched; shipping a local shim under the
//! same package name keeps every `use serde::…` and
//! `#[derive(Serialize, Deserialize)]` in the workspace unchanged.
//!
//! Instead of serde's visitor machinery, the shim routes everything through
//! one concrete self-describing tree, [`Value`]: serialization lowers a type
//! into a `Value`, deserialization lifts a `Value` back. `serde_json` (also
//! vendored) renders `Value` to JSON text and parses it back, so round-trips
//! are real — the derive macros generate genuine field-by-field code, not
//! no-ops. Enum representation follows serde's externally-tagged default.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialization tree — the common currency between
/// [`Serialize`], [`Deserialize`] and the `serde_json` front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None` and non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number; integers are stored exactly up to 2⁵³.
    Num(f64),
    /// String.
    Str(String),
    /// Sequence (`Vec`, tuples).
    Arr(Vec<Value>),
    /// Map with insertion-ordered string keys (structs, tagged enum variants).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is an [`Value::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements if this is an [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an [`Value::Obj`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lower into the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Lift from the serialization tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error describing the expected shape.
    pub fn expected(what: &str, found: &Value) -> Self {
        let found = match found {
            Value::Null => "null".to_string(),
            Value::Bool(_) => "a boolean".to_string(),
            Value::Num(n) => format!("number {n}"),
            Value::Str(s) => format!("string {s:?}"),
            Value::Arr(a) => format!("an array of {}", a.len()),
            Value::Obj(o) => format!("an object of {}", o.len()),
        };
        Self(format!("expected {what}, found {found}"))
    }

    /// Build an error from a plain message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Fetch and decode one struct field from an object's entries.
///
/// A missing key is an error, as in the real serde derive (even for `Option`
/// fields — the shim's `Serialize` always writes them, as `null` for `None`,
/// so round-trips never hit this).
///
/// # Errors
/// Fails on a missing key or propagates the field type's [`Deserialize`]
/// failure.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::msg(format!("field `{name}`: {e}")))
        }
        None => Err(DeError::msg(format!("missing field `{name}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // JSON has no NaN/∞ literal; serialization emits null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("a number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => {
                        let min = <$t>::MIN as f64;
                        let max = <$t>::MAX as f64;
                        if *n >= min && *n <= max {
                            Ok(*n as $t)
                        } else {
                            Err(DeError::msg(format!(
                                "integer {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError::expected("an integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($n),+].len();
                match v {
                    Value::Arr(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("a fixed-length array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<f64>::from_value(&Value::Num(2.0)).unwrap(), Some(2.0));
    }

    #[test]
    fn tuples_and_vecs_roundtrip() {
        let x = vec![(1usize, 2.5f64), (3, 4.5)];
        let v = x.to_value();
        assert_eq!(Vec::<(usize, f64)>::from_value(&v).unwrap(), x);
        let t = (1usize, 2usize, 0.5f64);
        assert_eq!(<(usize, usize, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn integer_range_is_checked() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn missing_field_is_an_error_but_null_decodes_none() {
        let entries: Vec<(String, Value)> = vec![];
        assert!(field::<Option<f64>>(&entries, "gamma").is_err());
        assert!(field::<f64>(&entries, "gamma").is_err());
        let with_null = vec![("gamma".to_string(), Value::Null)];
        let got: Option<f64> = field(&with_null, "gamma").unwrap();
        assert_eq!(got, None);
    }
}
