//! Thread-local numerical-divergence flag — the sensor half of the serving
//! watchdog.
//!
//! The collapsed Gibbs sampler's inner loops (CRF seating, rank-1 NIW
//! downdates) occasionally hit states that are numerically unrecoverable:
//! every seating weight underflows to `-inf`, or a Cholesky downdate breaks
//! positive-definiteness past the escalating jitter ladder. Panicking there
//! would take down a whole `BatchServer` scope for one hostile batch, and
//! returning `Result` through every seating call would put a branch in the
//! hottest loop of the reproduction.
//!
//! Instead, the deep numerical code *poisons* a thread-local flag and
//! substitutes a deterministic, structurally valid fallback (open a new
//! table/dish, install an identity scale factor). The watchdog in the
//! serving layer polls [`take`] after every sweep; a poisoned sweep makes
//! the whole attempt count as diverged so it can be retried with a fresh
//! seed or degraded to frozen inference. This works because each batch is
//! served on a single thread with a thread-private RNG — the flag can never
//! leak between concurrently served batches.
//!
//! Only the *first* poison reason per sweep is kept: later failures in the
//! same sweep are almost always knock-on effects of the first.

use std::cell::RefCell;

thread_local! {
    static POISON: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Mark the current thread's in-flight sweep as numerically diverged.
///
/// Idempotent per sweep: if a reason is already recorded, the new one is
/// dropped (the first failure is the root cause).
pub fn poison(reason: &str) {
    POISON.with(|p| {
        let mut p = p.borrow_mut();
        if p.is_none() {
            *p = Some(reason.to_string());
        }
    });
}

/// Consume and return the poison reason, clearing the flag.
///
/// The watchdog calls this once per sweep; `None` means the sweep was
/// numerically healthy.
pub fn take() -> Option<String> {
    POISON.with(|p| p.borrow_mut().take())
}

/// Discard any stale poison left on this thread (e.g. by an earlier batch
/// served on a reused worker thread) before starting a fresh attempt.
pub fn clear() {
    let _ = take();
}

/// Whether the current thread has an un-consumed poison flag.
pub fn is_poisoned() -> bool {
    POISON.with(|p| p.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins_and_take_clears() {
        clear();
        assert!(!is_poisoned());
        poison("first");
        poison("second");
        assert!(is_poisoned());
        assert_eq!(take().as_deref(), Some("first"));
        assert!(!is_poisoned());
        assert_eq!(take(), None);
    }

    #[test]
    fn poison_is_thread_local() {
        clear();
        poison("main thread");
        std::thread::spawn(|| {
            assert!(!is_poisoned());
            poison("child thread");
            assert_eq!(take().as_deref(), Some("child thread"));
        })
        .join()
        .unwrap();
        assert_eq!(take().as_deref(), Some("main thread"));
    }
}
