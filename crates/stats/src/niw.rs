//! The Normal–Inverse-Wishart (NIW) conjugate family.
//!
//! The paper places a Gaussian–Wishart prior on the parameters of each
//! mixture component (Eq. 9): `H = N(μ | μ₀, (βΛ)⁻¹) · W(Λ | Σ₀, ν)` on the
//! precision Λ. This module implements the textbook-equivalent
//! parameterization on the covariance, `μ | Σ ~ N(μ₀, Σ/κ₀)`,
//! `Σ ~ IW(Ψ₀, ν₀)` with `κ₀ = β`. Both forms produce the identical
//! multivariate Student-t posterior predictive, which is the only quantity
//! the collapsed Gibbs sampler ever evaluates.
//!
//! [`NiwPosterior`] maintains the posterior after absorbing a set of points
//! with **O(d²) add/remove** via rank-1 Cholesky updates of the posterior
//! scale matrix, using the identity
//!
//! ```text
//! Ψ_{n+1} = Ψ_n + κ_n/(κ_n + 1) · (x − μ_n)(x − μ_n)'
//! ```
//!
//! so moving an observation between mixture components (the inner loop of
//! the sampler) never refactorizes a matrix.

use serde::{Deserialize, Serialize};

use osr_linalg::{vector, Cholesky, LinalgError, Matrix};

use crate::mvn::mvt_logpdf_scaled;
use crate::special::{ln_gamma, ln_multigamma};
use crate::{Result, StatsError};

/// Hyperparameters of the NIW prior (the paper's base distribution `H`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NiwParams {
    /// Prior mean μ₀ (paper: mean of the training samples).
    pub mu0: Vec<f64>,
    /// Prior pseudo-count κ₀ on the mean (paper's scaling constant β).
    pub kappa0: f64,
    /// Prior degrees of freedom ν₀ (must exceed `d − 1`).
    pub nu0: f64,
    /// Prior scale matrix Ψ₀ (paper's Σ₀, Eq. 10: ρ × pooled covariance).
    psi0: Matrix,
    /// Cached Cholesky factor of Ψ₀.
    psi0_chol: Cholesky,
    /// Cached log |Ψ₀|.
    log_det_psi0: f64,
}

impl NiwParams {
    /// Validate and build NIW hyperparameters.
    ///
    /// # Errors
    /// Rejects `kappa0 <= 0`, `nu0 <= d − 1`, shape mismatches, and a
    /// non-SPD scale matrix.
    pub fn new(mu0: Vec<f64>, kappa0: f64, nu0: f64, psi0: Matrix) -> Result<Self> {
        let d = mu0.len();
        if d == 0 {
            return Err(StatsError::InvalidParameter("dimension must be positive".into()));
        }
        if psi0.rows() != d || psi0.cols() != d {
            return Err(StatsError::InvalidParameter(format!(
                "scale matrix is {}x{} but mean has dimension {d}",
                psi0.rows(),
                psi0.cols()
            )));
        }
        if !(kappa0 > 0.0) {
            return Err(StatsError::InvalidParameter(format!("kappa0 must be > 0, got {kappa0}")));
        }
        if !(nu0 > d as f64 - 1.0) {
            return Err(StatsError::InvalidParameter(format!(
                "nu0 must exceed d - 1 = {}, got {nu0}",
                d - 1
            )));
        }
        let psi0_chol = Cholesky::factor(&psi0)?;
        let log_det_psi0 = psi0_chol.log_det();
        Ok(Self { mu0, kappa0, nu0, psi0, psi0_chol, log_det_psi0 })
    }

    /// Feature dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.mu0.len()
    }

    /// Borrow the prior scale matrix Ψ₀.
    #[inline]
    pub fn psi0(&self) -> &Matrix {
        &self.psi0
    }

    /// Cached Cholesky factor of Ψ₀ (the dish bank seeds new slots from it).
    #[inline]
    pub(crate) fn psi0_chol(&self) -> &Cholesky {
        &self.psi0_chol
    }

    /// Cached log |Ψ₀| (used by the bank's closed-form marginal).
    #[inline]
    pub(crate) fn log_det_psi0(&self) -> f64 {
        self.log_det_psi0
    }

    /// Append the canonical state (μ₀, κ₀, ν₀, dense Ψ₀) to a snapshot
    /// payload. The cached factor and log-determinant are *not* written:
    /// [`Self::decode_from`] rebuilds them through the exact
    /// [`NiwParams::new`] sequence, so the round trip is bit-identical.
    pub fn encode_into(&self, enc: &mut crate::snapshot::Enc) {
        enc.put_usize(self.dim());
        enc.put_f64_slice(&self.mu0);
        enc.put_f64(self.kappa0);
        enc.put_f64(self.nu0);
        enc.put_f64_slice(self.psi0.as_slice());
    }

    /// Decode hyperparameters written by [`Self::encode_into`], revalidating
    /// them exactly as [`NiwParams::new`] does.
    ///
    /// # Errors
    /// Typed [`crate::snapshot::SnapshotError`] on truncation or on values
    /// that fail the constructor's validation.
    pub fn decode_from(
        dec: &mut crate::snapshot::Dec<'_>,
    ) -> crate::snapshot::SnapResult<Self> {
        use crate::snapshot::SnapshotError;
        let d = dec.count(8, "NiwParams dim")?;
        let mu0 = dec.f64_vec(d, "NiwParams mu0")?;
        let kappa0 = dec.f64("NiwParams kappa0")?;
        let nu0 = dec.f64("NiwParams nu0")?;
        let dd = d.checked_mul(d).ok_or_else(|| {
            SnapshotError::Malformed(format!("NiwParams dim {d} overflows"))
        })?;
        let psi0 = Matrix::from_vec(d, d, dec.f64_vec(dd, "NiwParams psi0")?);
        Self::new(mu0, kappa0, nu0, psi0)
            .map_err(|e| SnapshotError::Malformed(format!("NiwParams: {e}")))
    }
}

/// NIW posterior state after absorbing `n ≥ 0` observations.
///
/// With `n = 0` this is exactly the prior, and
/// [`predictive_logpdf`](Self::predictive_logpdf) is then the prior
/// predictive `p(x)` that appears in the CRF sampling equations (Eq. 7/8)
/// for new tables and new dishes.
#[derive(Debug, Clone)]
pub struct NiwPosterior {
    n: usize,
    kappa: f64,
    nu: f64,
    mu: Vec<f64>,
    psi_chol: Cholesky,
}

impl NiwPosterior {
    /// Posterior with no observations (the prior itself).
    pub fn from_prior(params: &NiwParams) -> Self {
        Self {
            n: 0,
            kappa: params.kappa0,
            nu: params.nu0,
            mu: params.mu0.clone(),
            psi_chol: params.psi0_chol.clone(),
        }
    }

    /// Posterior absorbing every point in `points` (rows).
    pub fn from_points(params: &NiwParams, points: &[&[f64]]) -> Self {
        let mut post = Self::from_prior(params);
        for p in points {
            post.add(p);
        }
        post
    }

    /// Append the canonical state (n, κₙ, νₙ, μₙ, and the lower-triangular
    /// Cholesky factor L of Ψₙ, row-major) to a snapshot payload. The
    /// factor is the maintained representation — serializing L itself (not a
    /// reconstructed dense Ψₙ) is what makes save→load→re-save bit-identical.
    pub fn encode_into(&self, enc: &mut crate::snapshot::Enc) {
        let d = self.dim();
        enc.put_usize(d);
        enc.put_usize(self.n);
        enc.put_f64(self.kappa);
        enc.put_f64(self.nu);
        enc.put_f64_slice(&self.mu);
        let l = self.psi_chol.factor_l();
        for i in 0..d {
            for j in 0..=i {
                enc.put_f64(l[(i, j)]);
            }
        }
    }

    /// Decode a posterior written by [`Self::encode_into`].
    ///
    /// # Errors
    /// Typed [`crate::snapshot::SnapshotError`] on truncation or on a factor
    /// whose diagonal is not finite and positive.
    pub fn decode_from(
        dec: &mut crate::snapshot::Dec<'_>,
    ) -> crate::snapshot::SnapResult<Self> {
        use crate::snapshot::SnapshotError;
        let d = dec.count(8, "NiwPosterior dim")?;
        let n = dec.usize("NiwPosterior n")?;
        let kappa = dec.f64("NiwPosterior kappa")?;
        let nu = dec.f64("NiwPosterior nu")?;
        let mu = dec.f64_vec(d, "NiwPosterior mu")?;
        let mut l = Matrix::zeros(d, d);
        for i in 0..d {
            for j in 0..=i {
                l[(i, j)] = dec.f64("NiwPosterior chol")?;
            }
        }
        for i in 0..d {
            let diag = l[(i, i)];
            if !(diag.is_finite() && diag > 0.0) {
                return Err(SnapshotError::Malformed(format!(
                    "NiwPosterior: Cholesky diagonal [{i}] = {diag} is not \
                     finite and positive"
                )));
            }
        }
        if !(kappa.is_finite() && kappa > 0.0 && nu.is_finite()) {
            return Err(SnapshotError::Malformed(format!(
                "NiwPosterior: kappa = {kappa}, nu = {nu} out of domain"
            )));
        }
        Ok(Self {
            n,
            kappa,
            nu,
            mu,
            psi_chol: Cholesky::from_factor(l),
        })
    }

    /// Number of absorbed observations.
    #[inline]
    pub fn count(&self) -> usize {
        self.n
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.mu.len()
    }

    /// Posterior mean location μₙ.
    #[inline]
    pub fn mean(&self) -> &[f64] {
        &self.mu
    }

    /// Posterior expectation of the component covariance,
    /// `E[Σ] = Ψₙ / (νₙ − d − 1)` (defined for `νₙ > d + 1`; returns `None`
    /// otherwise).
    pub fn expected_cov(&self) -> Option<Matrix> {
        let d = self.dim() as f64;
        let denom = self.nu - d - 1.0;
        if denom <= 0.0 {
            return None;
        }
        let mut psi = self.psi_chol.reconstruct();
        psi.scale_in_place(1.0 / denom);
        Some(psi)
    }

    /// Absorb one observation (O(d²)).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add(&mut self, x: &[f64]) {
        let d = self.dim();
        assert_eq!(x.len(), d, "NiwPosterior::add: dimension mismatch");
        let kappa_new = self.kappa + 1.0;
        // Rank-1 update direction: sqrt(κ/(κ+1)) (x − μ).
        let coef = (self.kappa / kappa_new).sqrt();
        let mut dir = vector::sub(x, &self.mu);
        vector::scale(coef, &mut dir);
        self.psi_chol.update(&dir);
        for (m, &xi) in self.mu.iter_mut().zip(x) {
            *m = (self.kappa * *m + xi) / kappa_new;
        }
        self.kappa = kappa_new;
        self.nu += 1.0;
        self.n += 1;
    }

    /// Remove one previously absorbed observation (O(d²)).
    ///
    /// The caller is responsible for only removing points that were added;
    /// removing a foreign point corrupts the state. If round-off makes the
    /// Cholesky downdate fail, the factor is rebuilt densely (O(d³)) — the
    /// operation never fails for legitimate removals.
    ///
    /// # Panics
    /// Panics on dimension mismatch or when `count() == 0`.
    pub fn remove(&mut self, x: &[f64]) {
        let d = self.dim();
        assert_eq!(x.len(), d, "NiwPosterior::remove: dimension mismatch");
        assert!(self.n > 0, "NiwPosterior::remove: no observations to remove");
        #[cfg(feature = "fault-inject")]
        if crate::faults::hit(crate::faults::sites::CHOLESKY) == Some(crate::faults::Fault::CholeskyFail)
        {
            crate::divergence::poison("injected: Ψ downdate not SPD past the jitter ladder");
        }
        let kappa_new = self.kappa - 1.0;
        // New mean first: μ' = (κ μ − x) / κ'.
        let mut mu_new = vec![0.0; d];
        for (m_new, (&m, &xi)) in mu_new.iter_mut().zip(self.mu.iter().zip(x)) {
            *m_new = (self.kappa * m - xi) / kappa_new;
        }
        // Downdate direction: sqrt(κ'/κ) (x − μ').
        let coef = (kappa_new / self.kappa).sqrt();
        let mut dir = vector::sub(x, &mu_new);
        vector::scale(coef, &mut dir);
        if self.psi_chol.downdate(&dir).is_err() {
            // Round-off rescue: rebuild the factor densely with a hair of
            // jitter. Ψ' = Ψ − dir dir' is SPD in exact arithmetic.
            let mut psi = self.psi_chol.reconstruct();
            psi.syr(-1.0, &dir);
            psi.symmetrize();
            match factor_spd_with_jitter(&psi) {
                Ok((chol, _)) => self.psi_chol = chol,
                Err(_) => {
                    // Ψ' = Ψ − dir dir' is SPD in exact arithmetic, so only
                    // non-finite input can land here. Poison the divergence
                    // flag (the serving watchdog aborts the sweep and
                    // retries/degrades) and install a structurally valid
                    // stand-in factor so unwinding bookkeeping stays safe.
                    crate::divergence::poison("Ψ downdate not SPD past the jitter ladder");
                    self.psi_chol = Cholesky::factor(&Matrix::identity(d))
                        .expect("identity is SPD");
                }
            }
        }
        self.mu = mu_new;
        self.kappa = kappa_new;
        self.nu -= 1.0;
        self.n -= 1;
    }

    /// Posterior predictive log-density at `x`: multivariate Student-t with
    /// `df = νₙ − d + 1`, location μₙ, scale `Ψₙ (κₙ + 1) / (κₙ df)`.
    pub fn predictive_logpdf(&self, x: &[f64]) -> f64 {
        crate::counters::record_predictive_logpdf();
        let d = self.dim() as f64;
        let df = self.nu - d + 1.0;
        let scale = (self.kappa + 1.0) / (self.kappa * df);
        mvt_logpdf_scaled(x, &self.mu, &self.psi_chol, scale.ln(), df)
    }

    /// Joint predictive log-density of a block of points given the current
    /// state, via the chain rule (the state is restored before returning).
    /// This is the `∏_{i: t_ji = t} p(x_ji | ·)` factor in the dish-sampling
    /// step (Eq. 8).
    pub fn block_predictive_logpdf(&mut self, points: &[&[f64]]) -> f64 {
        let mut acc = 0.0;
        for p in points {
            acc += self.predictive_logpdf(p);
            self.add(p);
        }
        for p in points.iter().rev() {
            self.remove(p);
        }
        acc
    }

    /// Closed-form log marginal likelihood of the `n` absorbed points under
    /// the prior `params`:
    ///
    /// ```text
    /// ln m(X) = −(n d / 2) ln π + ln Γ_d(νₙ/2) − ln Γ_d(ν₀/2)
    ///           + (ν₀/2) ln |Ψ₀| − (νₙ/2) ln |Ψₙ| + (d/2)(ln κ₀ − ln κₙ)
    /// ```
    pub fn log_marginal(&self, params: &NiwParams) -> f64 {
        let d = self.dim();
        let dd = d as f64;
        let n = self.n as f64;
        -(n * dd / 2.0) * std::f64::consts::PI.ln()
            + ln_multigamma(d, self.nu / 2.0)
            - ln_multigamma(d, params.nu0 / 2.0)
            + (params.nu0 / 2.0) * params.log_det_psi0
            - (self.nu / 2.0) * self.psi_chol.log_det()
            + (dd / 2.0) * (params.kappa0.ln() - self.kappa.ln())
    }

    /// Marginal log-density of a single point under the *prior* — the
    /// `p(x_ji)` term in Eq. 7/8 for brand-new tables/dishes. Equivalent to
    /// `NiwPosterior::from_prior(params).predictive_logpdf(x)` but stated
    /// here for discoverability.
    pub fn prior_predictive_logpdf(params: &NiwParams, x: &[f64]) -> f64 {
        Self::from_prior(params).predictive_logpdf(x)
    }
}

/// Factor an SPD-up-to-roundoff matrix, adding exponentially growing jitter
/// to the diagonal when plain factorization fails.
///
/// Returns the factor together with the jitter that had to be added (`0.0`
/// when the matrix factorized as-is), so callers that need the *matrix* —
/// not just its factor — can apply the same repair (e.g. building
/// [`NiwParams`] from a rank-deficient pooled covariance).
///
/// # Errors
/// Fails when no jitter up to `1e7 ×` the mean diagonal magnitude makes the
/// matrix factorizable (non-finite entries, in practice).
pub fn factor_spd_with_jitter(a: &Matrix) -> std::result::Result<(Cholesky, f64), LinalgError> {
    match Cholesky::factor(a) {
        Ok(c) => Ok((c, 0.0)),
        Err(_) => {
            let scale = a.trace().abs().max(1e-300) / a.rows() as f64;
            let mut jitter = 1e-12 * scale;
            for _ in 0..20 {
                let mut aj = a.clone();
                for i in 0..a.rows() {
                    aj[(i, i)] += jitter;
                }
                if let Ok(c) = Cholesky::factor(&aj) {
                    return Ok((c, jitter));
                }
                jitter *= 10.0;
            }
            Err(LinalgError::NotPositiveDefinite { pivot: 0, value: f64::NAN })
        }
    }
}

/// One-dimensional sanity helper used by tests and the docs: the Student-t
/// predictive of a 1-d NIW with parameters (μ, κ, ν, ψ).
#[doc(hidden)]
pub fn univariate_predictive_logpdf(x: f64, mu: f64, kappa: f64, nu: f64, psi: f64) -> f64 {
    let df = nu; // d = 1 ⇒ df = ν − 1 + 1 = ν
    let scale = psi * (kappa + 1.0) / (kappa * df);
    ln_gamma((df + 1.0) / 2.0)
        - ln_gamma(df / 2.0)
        - 0.5 * (df * std::f64::consts::PI * scale).ln()
        - 0.5 * (df + 1.0) * (1.0 + (x - mu) * (x - mu) / (df * scale)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params2() -> NiwParams {
        NiwParams::new(
            vec![0.0, 0.0],
            1.0,
            4.0,
            Matrix::from_rows(&[vec![1.0, 0.2], vec![0.2, 1.5]]),
        )
        .unwrap()
    }

    fn pts() -> Vec<Vec<f64>> {
        vec![
            vec![0.5, -0.3],
            vec![1.2, 0.8],
            vec![-0.7, 0.1],
            vec![0.3, 1.9],
            vec![-1.5, -0.9],
        ]
    }

    #[test]
    fn params_codec_roundtrip_is_bit_identical() {
        let p = params2();
        let mut enc = crate::snapshot::Enc::new();
        p.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        let mut dec = crate::snapshot::Dec::new(&bytes);
        let p2 = NiwParams::decode_from(&mut dec).unwrap();
        dec.finish("params").unwrap();
        assert_eq!(p.mu0, p2.mu0);
        assert_eq!(p.kappa0.to_bits(), p2.kappa0.to_bits());
        assert_eq!(p.log_det_psi0.to_bits(), p2.log_det_psi0.to_bits());

        let mut enc2 = crate::snapshot::Enc::new();
        p2.encode_into(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes(), "re-encode must be byte-identical");
    }

    #[test]
    fn posterior_codec_roundtrip_is_bit_identical() {
        let p = params2();
        let pts = pts();
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let post = NiwPosterior::from_points(&p, &refs);

        let mut enc = crate::snapshot::Enc::new();
        post.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        let mut dec = crate::snapshot::Dec::new(&bytes);
        let post2 = NiwPosterior::decode_from(&mut dec).unwrap();
        dec.finish("posterior").unwrap();
        assert_eq!(post.n, post2.n);
        // Predictives are pure functions of the decoded state: bit-equal.
        let x = [0.4, -0.2];
        assert_eq!(
            post.predictive_logpdf(&x).to_bits(),
            post2.predictive_logpdf(&x).to_bits()
        );

        let mut enc2 = crate::snapshot::Enc::new();
        post2.encode_into(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes(), "re-encode must be byte-identical");
    }

    #[test]
    fn posterior_decode_rejects_bad_factor_diagonal() {
        let p = params2();
        let post = NiwPosterior::from_prior(&p);
        let mut enc = crate::snapshot::Enc::new();
        post.encode_into(&mut enc);
        let mut bytes = enc.into_bytes();
        // The first factor entry L[(0,0)] sits after dim + n + kappa + nu +
        // mu[2], i.e. 8 * 6 bytes in. Overwrite it with -1.0.
        let off = 8 * 6;
        bytes[off..off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        let mut dec = crate::snapshot::Dec::new(&bytes);
        assert!(matches!(
            NiwPosterior::decode_from(&mut dec),
            Err(crate::snapshot::SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let psi = Matrix::identity(2);
        assert!(NiwParams::new(vec![0.0; 2], 0.0, 4.0, psi.clone()).is_err());
        assert!(NiwParams::new(vec![0.0; 2], 1.0, 0.5, psi.clone()).is_err());
        assert!(NiwParams::new(vec![0.0; 3], 1.0, 4.0, psi.clone()).is_err());
        let not_spd = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(NiwParams::new(vec![0.0; 2], 1.0, 4.0, not_spd).is_err());
        assert!(NiwParams::new(vec![], 1.0, 4.0, Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn add_remove_roundtrip_restores_state() {
        let p = params2();
        let mut post = NiwPosterior::from_prior(&p);
        let x = [0.7, -1.1];
        let before_mu = post.mean().to_vec();
        let before_ld = post.psi_chol.log_det();
        post.add(&x);
        post.add(&[2.0, 0.1]);
        post.remove(&[2.0, 0.1]);
        post.remove(&x);
        assert_eq!(post.count(), 0);
        for (a, b) in post.mean().iter().zip(&before_mu) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!((post.psi_chol.log_det() - before_ld).abs() < 1e-9);
    }

    #[test]
    fn chain_rule_equals_closed_form_marginal() {
        let p = params2();
        let data = pts();
        // Sum of sequential predictives…
        let mut post = NiwPosterior::from_prior(&p);
        let mut chain = 0.0;
        for x in &data {
            chain += post.predictive_logpdf(x);
            post.add(x);
        }
        // …must equal the closed-form marginal of the final posterior.
        let closed = post.log_marginal(&p);
        assert!(
            (chain - closed).abs() < 1e-8,
            "chain rule {chain} vs closed form {closed}"
        );
    }

    #[test]
    fn marginal_is_exchangeable() {
        let p = params2();
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let post1 = NiwPosterior::from_points(&p, &refs);
        let mut rev = refs.clone();
        rev.reverse();
        let post2 = NiwPosterior::from_points(&p, &rev);
        assert!((post1.log_marginal(&p) - post2.log_marginal(&p)).abs() < 1e-8);
    }

    #[test]
    fn block_predictive_is_side_effect_free_and_correct() {
        let p = params2();
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let mut post = NiwPosterior::from_prior(&p);
        post.add(&[3.0, 3.0]);
        let before_mu = post.mean().to_vec();
        let before_n = post.count();

        let block = post.block_predictive_logpdf(&refs);

        assert_eq!(post.count(), before_n);
        for (a, b) in post.mean().iter().zip(&before_mu) {
            assert!((a - b).abs() < 1e-9);
        }
        // Cross-check against explicit chain evaluation.
        let mut clone = post.clone();
        let mut expect = 0.0;
        for x in &refs {
            expect += clone.predictive_logpdf(x);
            clone.add(x);
        }
        assert!((block - expect).abs() < 1e-8);
    }

    #[test]
    fn posterior_mean_moves_toward_data() {
        let p = params2();
        let mut post = NiwPosterior::from_prior(&p);
        for _ in 0..50 {
            post.add(&[10.0, -10.0]);
        }
        assert!((post.mean()[0] - 10.0).abs() < 0.25);
        assert!((post.mean()[1] + 10.0).abs() < 0.25);
    }

    #[test]
    fn predictive_prefers_seen_region() {
        let p = params2();
        let mut post = NiwPosterior::from_prior(&p);
        for x in pts() {
            post.add(&x);
        }
        let near = post.predictive_logpdf(&[0.0, 0.2]);
        let far = post.predictive_logpdf(&[25.0, -30.0]);
        assert!(near > far + 10.0, "near {near} should dominate far {far}");
    }

    #[test]
    fn univariate_predictive_matches_module_helper() {
        let p = NiwParams::new(vec![0.5], 2.0, 3.0, Matrix::from_rows(&[vec![1.2]])).unwrap();
        let post = NiwPosterior::from_prior(&p);
        let via_mv = post.predictive_logpdf(&[1.4]);
        let via_uv = univariate_predictive_logpdf(1.4, 0.5, 2.0, 3.0, 1.2);
        assert!((via_mv - via_uv).abs() < 1e-10);
    }

    #[test]
    fn predictive_integrates_to_one_1d() {
        let p = NiwParams::new(vec![0.0], 1.0, 5.0, Matrix::from_rows(&[vec![2.0]])).unwrap();
        let mut post = NiwPosterior::from_prior(&p);
        post.add(&[1.0]);
        post.add(&[-0.5]);
        let step = 0.01;
        let mut acc = 0.0;
        let mut x = -60.0;
        while x <= 60.0 {
            acc += post.predictive_logpdf(&[x]).exp() * step;
            x += step;
        }
        assert!((acc - 1.0).abs() < 5e-3, "predictive integral = {acc}");
    }

    #[test]
    fn expected_cov_requires_enough_dof() {
        let p = params2(); // nu0 = 4, d = 2 ⇒ ν − d − 1 = 1 > 0
        let post = NiwPosterior::from_prior(&p);
        assert!(post.expected_cov().is_some());
        let tight =
            NiwParams::new(vec![0.0, 0.0], 1.0, 2.5, Matrix::identity(2)).unwrap();
        assert!(NiwPosterior::from_prior(&tight).expected_cov().is_none());
    }

    #[test]
    #[should_panic(expected = "no observations to remove")]
    fn remove_from_empty_panics() {
        let p = params2();
        let mut post = NiwPosterior::from_prior(&p);
        post.remove(&[0.0, 0.0]);
    }

    #[test]
    fn jitter_factor_passes_spd_through_unchanged() {
        let a = Matrix::from_rows(&[vec![2.0, 0.3], vec![0.3, 1.5]]);
        let (c, jitter) = factor_spd_with_jitter(&a).unwrap();
        assert_eq!(jitter, 0.0, "SPD input must not be jittered");
        let plain = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - plain.log_det()).abs() < 1e-12);
    }

    #[test]
    fn jitter_factor_repairs_rank_deficient_matrix() {
        // vv' is rank 1 in 3-d: plain factorization must fail, escalating
        // jitter must repair it with a small perturbation.
        let v = [1.0, -2.0, 0.5];
        let mut a = Matrix::zeros(3, 3);
        a.syr(1.0, &v);
        a.symmetrize();
        assert!(Cholesky::factor(&a).is_err());
        let (c, jitter) = factor_spd_with_jitter(&a).unwrap();
        assert!(jitter > 0.0);
        // The repair is tiny relative to the matrix scale…
        assert!(jitter < 1e-3 * a.trace() / 3.0, "jitter {jitter} too large");
        // …and the returned factor reconstructs the jittered matrix.
        let rec = c.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                let expect = a[(i, j)] + if i == j { jitter } else { 0.0 };
                assert!((rec[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn jitter_escalates_until_factorization_succeeds() {
        // A matrix needing more than the first jitter step: rank-1 with a
        // slightly *negative* eigenvalue direction mixed in.
        let v = [1.0, 1.0];
        let mut a = Matrix::zeros(2, 2);
        a.syr(1.0, &v);
        a[(0, 0)] -= 1e-9;
        a.symmetrize();
        let (_, jitter) = factor_spd_with_jitter(&a).unwrap();
        // The escalation scale is trace-relative, so allow a hair under 1e-9.
        assert!(jitter >= 0.9e-9, "needed at least the negative-bump scale, got {jitter}");
    }

    #[test]
    fn jitter_factor_rejects_non_finite_input() {
        let a = Matrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, 1.0]]);
        assert!(factor_spd_with_jitter(&a).is_err());
    }

    #[test]
    fn predictive_calls_are_counted() {
        let p = params2();
        let post = NiwPosterior::from_prior(&p);
        // Other tests may run concurrently, so only the lower bound is exact.
        let before = crate::counters::predictive_logpdf_calls();
        for _ in 0..5 {
            let _ = post.predictive_logpdf(&[0.1, 0.2]);
        }
        assert!(crate::counters::predictive_logpdf_calls() - before >= 5);
    }
}
