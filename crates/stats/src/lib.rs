//! Statistical substrate for the `hdp-osr` workspace.
//!
//! Everything the HDP sampler, the SVM baselines and the evaluation harness
//! need that is "statistics rather than linear algebra" lives here:
//!
//! * [`special`] — log-gamma, digamma, multivariate log-gamma, log-sum-exp,
//! * [`sampling`] — RNG-driven draws from normal / gamma / beta / Dirichlet /
//!   categorical distributions (all hand-rolled on top of `rand`'s uniform
//!   source, since the workspace deliberately avoids `rand_distr`),
//! * [`mvn`] — multivariate normal and multivariate Student-t log-densities
//!   plus Cholesky-based MVN sampling,
//! * [`bank`] — the struct-of-arrays [`DishBank`] of NIW posteriors with
//!   precomputed predictive constants and the two fused predictive kernels
//!   (one-vs-all collective scoring, batch-vs-one block predictives) that
//!   form the sampler's vectorized hot path,
//! * [`niw`] — the Normal–Inverse-Wishart conjugate family with O(d²)
//!   incremental posterior updates; this is the engine room of the collapsed
//!   Gibbs sampler (the paper's Gaussian–Wishart base measure H, Eq. 9, in
//!   its equivalent (μ, Σ) parameterization),
//! * [`weibull`] — Weibull distribution and maximum-likelihood tail fitting,
//!   i.e. the statistical extreme-value-theory machinery behind the W-SVM,
//!   W-OSVM and P_I-SVM baselines,
//! * [`descriptive`] — means, standard deviations and quantiles for the
//!   experiment reports,
//! * [`metrics`] — the lock-free process-wide metrics registry (named
//!   counters, gauges, log2-bucketed histograms) every crate reports into,
//! * [`counters`] — the legacy free-function instrumentation API, now backed
//!   by named metrics in the [`metrics`] registry,
//! * [`diagnostics`] — MCMC convergence diagnostics (split-R̂, effective
//!   sample size, burn-in recommendation) over per-sweep scalar traces,
//! * [`snapshot`] — the deterministic, versioned, CRC-checked snapshot
//!   container format (byte codec, writer/reader, typed corruption errors)
//!   that durable posterior checkpoints are written in,
//! * [`divergence`] — the thread-local numerical-divergence flag polled by
//!   the serving watchdog,
//! * [`faults`] — the deterministic fault-injection harness (only with the
//!   `fault-inject` cargo feature).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bank;
pub mod counters;
pub mod descriptive;
pub mod diagnostics;
pub mod divergence;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod metrics;
pub mod mvn;
pub mod niw;
pub mod sampling;
pub mod snapshot;
pub mod special;
pub mod weibull;

pub use bank::{BlockStats, DishBank, Slot};
pub use niw::{factor_spd_with_jitter, NiwParams, NiwPosterior};
pub use snapshot::{SnapshotError, SNAPSHOT_FORMAT_VERSION};
pub use weibull::{Weibull, WeibullFit};

/// Errors produced by the statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was out of its domain (message explains).
    InvalidParameter(String),
    /// Not enough data points for the requested fit.
    NotEnoughData {
        /// Points required.
        needed: usize,
        /// Points supplied.
        got: usize,
    },
    /// An iterative fit failed to converge.
    NoConvergence(String),
    /// Propagated linear-algebra failure (e.g. singular scale matrix).
    Linalg(osr_linalg::LinalgError),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            Self::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
            Self::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for StatsError {}

impl From<osr_linalg::LinalgError> for StatsError {
    fn from(e: osr_linalg::LinalgError) -> Self {
        Self::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
