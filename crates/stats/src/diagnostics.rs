//! MCMC convergence diagnostics over scalar traces.
//!
//! The collapsed Gibbs sampler exposes its joint log-likelihood once per
//! sweep; this module turns that trace into the three numbers a serving
//! operator actually tunes on:
//!
//! * **split-R̂** ([`split_rhat`]) — the Gelman–Rubin potential scale
//!   reduction factor computed on the two halves of a single chain (or on
//!   the split halves of several chains, [`split_rhat_chains`]). Splitting
//!   makes the statistic sensitive to trends *within* one chain: a still
//!   warming-up sampler has halves with different means and R̂ ≫ 1, while a
//!   stationary chain gives R̂ ≈ 1.
//! * **effective sample size** ([`effective_sample_size`]) — `n / τ` where
//!   `τ = 1 + 2 Σ ρ_k` truncated by Geyer's initial-positive-sequence rule
//!   (stop summing when a consecutive autocorrelation pair `ρ_{2k} +
//!   ρ_{2k+1}` turns non-positive).
//! * **burn-in recommendation** ([`burn_in_recommendation`]) — the first
//!   sweep whose value reaches the band the chain's settled second half
//!   occupies (mean − 2·sd of the last half), capped at `n/2`.
//!
//! Every function is total on finite-or-not inputs: non-finite samples are
//! dropped, degenerate traces (too short, constant) return the neutral
//! values (R̂ = 1, ESS = n, burn-in = 0), and outputs are clamped finite —
//! diagnostics must never take down the serving path they observe.

use serde::{Deserialize, Serialize};

/// R̂ reported for a chain whose halves have split means but (near-)zero
/// within-half variance; also the general upper clamp.
const MAX_RHAT: f64 = 1e6;

/// Traces shorter than this are treated as "no evidence either way".
const MIN_LEN: usize = 4;

fn finite(xs: &[f64]) -> Vec<f64> {
    xs.iter().copied().filter(|x| x.is_finite()).collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n−1) sample variance; 0 for fewer than two points.
fn sample_var(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Split-R̂ of a single scalar chain (split into first and second half).
///
/// Returns 1.0 for chains too short or too degenerate to judge, and a
/// finite value in `[0, 1e6]` otherwise.
pub fn split_rhat(trace: &[f64]) -> f64 {
    let xs = finite(trace);
    if xs.len() < MIN_LEN {
        return 1.0;
    }
    let half = xs.len() / 2;
    rhat_of(&[&xs[..half], &xs[xs.len() - half..]])
}

/// Split-R̂ across several chains: each chain is halved and all halves enter
/// the between/within decomposition, truncated to the shortest half length.
pub fn split_rhat_chains(chains: &[&[f64]]) -> f64 {
    let cleaned: Vec<Vec<f64>> = chains.iter().map(|c| finite(c)).collect();
    let mut halves: Vec<&[f64]> = Vec::new();
    for c in &cleaned {
        if c.len() >= MIN_LEN {
            let half = c.len() / 2;
            halves.push(&c[..half]);
            halves.push(&c[c.len() - half..]);
        }
    }
    if halves.len() < 2 {
        return 1.0;
    }
    rhat_of(&halves)
}

fn rhat_of(subchains: &[&[f64]]) -> f64 {
    let len = subchains.iter().map(|c| c.len()).min().unwrap_or(0);
    if len < 2 {
        return 1.0;
    }
    let truncated: Vec<&[f64]> = subchains.iter().map(|c| &c[..len]).collect();
    let means: Vec<f64> = truncated.iter().map(|c| mean(c)).collect();
    let within = mean(&truncated.iter().map(|c| sample_var(c)).collect::<Vec<_>>());
    let between = sample_var(&means); // = B/n in Gelman–Rubin notation
    if !within.is_finite() || !between.is_finite() {
        return 1.0;
    }
    if within <= f64::EPSILON * (1.0 + means.iter().fold(0.0f64, |a, m| a.max(m.abs()))) {
        // Flat sub-chains: identical means → converged; split means → the
        // clearest possible non-convergence.
        return if between <= f64::EPSILON { 1.0 } else { MAX_RHAT };
    }
    let var_plus = (len as f64 - 1.0) / len as f64 * within + between;
    let rhat = (var_plus / within).sqrt();
    if rhat.is_finite() {
        rhat.clamp(0.0, MAX_RHAT)
    } else {
        1.0
    }
}

/// Effective sample size of a scalar chain via Geyer's initial positive
/// sequence. Always finite, clamped to `[1, n]`; degenerate traces
/// (short, constant) report `n` — autocorrelation evidence is absent, not
/// adverse.
pub fn effective_sample_size(trace: &[f64]) -> f64 {
    let xs = finite(trace);
    let n = xs.len();
    if n < MIN_LEN {
        return n as f64;
    }
    let m = mean(&xs);
    // Biased (1/n) autocovariances, the standard choice for ESS.
    let c0 = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
    if !(c0 > 0.0) || !c0.is_finite() {
        return n as f64;
    }
    let autocov = |lag: usize| -> f64 {
        xs[..n - lag].iter().zip(&xs[lag..]).map(|(a, b)| (a - m) * (b - m)).sum::<f64>()
            / n as f64
    };
    let max_lag = n / 2;
    let mut tau = 1.0;
    let mut k = 1;
    while k < max_lag {
        let pair = (autocov(k) + autocov(k + 1)) / c0;
        if !pair.is_finite() || pair <= 0.0 {
            break;
        }
        tau += 2.0 * pair;
        k += 2;
    }
    let ess = n as f64 / tau.max(1.0 / n as f64);
    if ess.is_finite() {
        ess.clamp(1.0, n as f64)
    } else {
        n as f64
    }
}

/// First sweep index from which the chain sits in the band its settled
/// second half occupies: `trace[i] ≥ mean(last half) − 2·sd(last half)`.
/// Capped at `n/2`; degenerate traces recommend 0.
pub fn burn_in_recommendation(trace: &[f64]) -> usize {
    let xs = finite(trace);
    let n = xs.len();
    if n < MIN_LEN {
        return 0;
    }
    let tail = &xs[n / 2..];
    let mu = mean(tail);
    let sd = sample_var(tail).sqrt();
    // Widen by a relative epsilon so a perfectly flat settled half (sd = 0)
    // still accepts values equal to its mean.
    let threshold = mu - 2.0 * sd - 1e-9 * (1.0 + mu.abs());
    xs.iter().position(|&x| x >= threshold).unwrap_or(n / 2).min(n / 2)
}

/// Summary of one scalar chain, as surfaced by a fit report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainDiagnostics {
    /// Chain length (number of sweeps observed).
    pub n: usize,
    /// Split-R̂ of the chain (1 ≈ converged).
    pub rhat: f64,
    /// Effective sample size in `[1, n]`.
    pub ess: f64,
    /// Recommended number of initial sweeps to discard, `≤ n/2`.
    pub burn_in: usize,
}

impl ChainDiagnostics {
    /// Diagnose a scalar trace (typically the per-sweep joint
    /// log-likelihood).
    pub fn from_trace(trace: &[f64]) -> Self {
        Self {
            n: trace.len(),
            rhat: split_rhat(trace),
            ess: effective_sample_size(trace),
            burn_in: burn_in_recommendation(trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn iid_chain(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| crate::sampling::standard_normal(&mut rng)).collect()
    }

    #[test]
    fn rhat_near_one_on_iid_chain() {
        let r = split_rhat(&iid_chain(7, 2000));
        assert!((r - 1.0).abs() < 0.05, "iid split-R̂ was {r}");
    }

    #[test]
    fn rhat_large_on_split_mean_chain() {
        let mut xs = iid_chain(11, 500);
        xs.extend(iid_chain(12, 500).iter().map(|x| x + 10.0));
        let r = split_rhat(&xs);
        assert!(r > 3.0, "split-mean R̂ was {r}");
    }

    #[test]
    fn rhat_multichain_detects_disagreement() {
        let a = iid_chain(1, 400);
        let b: Vec<f64> = iid_chain(2, 400).iter().map(|x| x + 8.0).collect();
        let agree = split_rhat_chains(&[&a, &iid_chain(3, 400)]);
        let disagree = split_rhat_chains(&[&a, &b]);
        assert!((agree - 1.0).abs() < 0.1, "agreeing chains: {agree}");
        assert!(disagree > 2.0, "disagreeing chains: {disagree}");
    }

    #[test]
    fn ess_near_n_for_iid_and_shrinks_under_autocorrelation() {
        let iid = iid_chain(21, 1000);
        let ess_iid = effective_sample_size(&iid);
        assert!(ess_iid > 600.0, "iid ESS was {ess_iid}");

        // AR(1) with φ = 0.9: theoretical ESS ≈ n·(1−φ)/(1+φ) ≈ n/19.
        let mut rng = StdRng::seed_from_u64(22);
        let mut ar = vec![0.0f64];
        for _ in 1..1000 {
            let prev = *ar.last().unwrap();
            ar.push(0.9 * prev + crate::sampling::standard_normal(&mut rng));
        }
        let ess_ar = effective_sample_size(&ar);
        assert!(ess_ar < ess_iid / 3.0, "AR(1) ESS {ess_ar} vs iid {ess_iid}");
        assert!(ess_ar >= 1.0);
    }

    #[test]
    fn ess_monotone_in_chain_length_for_iid() {
        // More iid samples must not *reduce* information: ESS of a prefix
        // stays (weakly) below ESS of the full chain, up to estimator noise.
        let xs = iid_chain(31, 4000);
        let short = effective_sample_size(&xs[..500]);
        let long = effective_sample_size(&xs);
        assert!(long > short, "ESS(4000)={long} vs ESS(500)={short}");
    }

    #[test]
    fn burn_in_finds_the_ramp() {
        // 20 sweeps climbing from -100, then 180 settled around 0.
        let mut xs: Vec<f64> = (0..20).map(|i| -100.0 + 5.0 * i as f64).collect();
        xs.extend(iid_chain(41, 180));
        let b = burn_in_recommendation(&xs);
        assert!((10..=25).contains(&b), "burn-in was {b}");
    }

    #[test]
    fn degenerate_traces_give_neutral_values() {
        for trace in [&[][..], &[1.0][..], &[2.0, 2.0, 2.0, 2.0, 2.0][..]] {
            let d = ChainDiagnostics::from_trace(trace);
            assert!(d.rhat.is_finite());
            assert!(d.ess.is_finite());
            assert!(d.burn_in <= trace.len() / 2);
        }
        let flat = vec![3.5; 64];
        assert_eq!(split_rhat(&flat), 1.0);
        assert_eq!(effective_sample_size(&flat), 64.0);
        assert_eq!(burn_in_recommendation(&flat), 0);
    }

    #[test]
    fn non_finite_samples_are_dropped_not_propagated() {
        let mut xs = iid_chain(51, 200);
        xs[3] = f64::NAN;
        xs[77] = f64::INFINITY;
        xs[150] = f64::NEG_INFINITY;
        let d = ChainDiagnostics::from_trace(&xs);
        assert!(d.rhat.is_finite());
        assert!(d.ess.is_finite());
    }
}
