//! Lock-free process-wide metrics registry.
//!
//! The registry generalizes the ad-hoc atomics in [`crate::counters`]: named
//! counters, gauges and fixed-bucket histograms that any crate in the
//! workspace can register and update without coordination. The design
//! separates the *cold* path (registration: a `RwLock<BTreeMap>` keyed by
//! metric name, hit once per call-site via `OnceLock` caching) from the *hot*
//! path (updates: relaxed atomic operations on `Arc`-shared cells, no locks,
//! no allocation). A sampler sweep therefore pays a handful of
//! `fetch_add(Relaxed)`s — cheap enough for the CRF inner loop and exact
//! under any thread interleaving.
//!
//! Histograms use 65 fixed log2 buckets: bucket 0 holds the value `0`,
//! bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`. Bucketing a value is one
//! `leading_zeros` instruction, and quantile estimates come back as the upper
//! bound of the bucket containing the requested rank — coarse (a factor-of-2
//! resolution) but entirely allocation- and lock-free to record.
//!
//! Metrics are process-global and monotone; code measuring a region should
//! take a [`MetricsSnapshot`] before and after and diff them with
//! [`MetricsSnapshot::delta_since`] rather than resetting (other threads may
//! be sampling concurrently).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotone counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Overwrite the gauge. Concurrent writers race benignly: the gauge
    /// reports *a* recently written value, which is all a gauge promises.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Most recently written value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` observations (e.g. nanoseconds).
/// Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new() -> Self {
        Self(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Bucket index of a value: 0 for 0, else `64 - leading_zeros`, so
    /// bucket `b` covers `[2^(b-1), 2^b)`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn read(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Frozen histogram state: bucket counts plus running count/sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wraps at `u64::MAX`; irrelevant in
    /// practice for nanosecond timings).
    pub sum: u64,
    /// Per-bucket counts, `HISTOGRAM_BUCKETS` long.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`). Resolution is a factor of two; an empty histogram
    /// reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations recorded since `earlier` (bucketwise saturating
    /// difference, so a mismatched baseline degrades to zeros rather than
    /// wrapping).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }
}

/// Frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every registered metric, in name order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// All `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Value of one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter reading by name (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// Histogram state by name (empty if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => h.clone(),
            _ => HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; HISTOGRAM_BUCKETS] },
        }
    }

    /// Activity since `earlier`: counters and histograms are differenced,
    /// gauges keep their current reading. Metrics absent from `earlier`
    /// (registered in between) are kept whole.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let diffed = match (value, earlier.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(now.delta_since(then))
                    }
                    _ => value.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named registry of counters, gauges and histograms.
///
/// Registration (`counter`/`gauge`/`histogram`) is the only locked
/// operation; the returned handles update shared atomics directly. Asking
/// for an existing name returns a handle to the same cell; asking for an
/// existing name *as a different kind* panics — that is a programming error,
/// not a runtime condition.
pub struct MetricsRegistry {
    slots: RwLock<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry. Most code wants [`global`] instead.
    pub fn new() -> Self {
        Self { slots: RwLock::new(BTreeMap::new()) }
    }

    fn with_slot<T>(&self, name: &str, make: impl FnOnce() -> Slot, pick: impl Fn(&Slot) -> Option<T>) -> T {
        if let Some(slot) = self.slots.read().expect("metrics registry poisoned").get(name) {
            return pick(slot)
                .unwrap_or_else(|| panic!("metric `{name}` already registered as another kind"));
        }
        let mut slots = self.slots.write().expect("metrics registry poisoned");
        let slot = slots.entry(name.to_string()).or_insert_with(make);
        pick(slot).unwrap_or_else(|| panic!("metric `{name}` already registered as another kind"))
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.with_slot(
            name,
            || Slot::Counter(Counter::new()),
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.with_slot(
            name,
            || Slot::Gauge(Gauge::new()),
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.with_slot(
            name,
            || Slot::Histogram(Histogram::new()),
            |s| match s {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Copy every registered metric. The copy is not atomic across metrics
    /// (concurrent updates may land between reads), but each individual
    /// reading is consistent — fine for before/after deltas and reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read().expect("metrics registry poisoned");
        let entries = slots
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.read()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry every workspace crate reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn gauge_reports_last_write() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("alpha");
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(reg.snapshot().get("alpha"), Some(&MetricValue::Gauge(2.5)));
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("dual");
        let _g = reg.gauge("dual");
    }

    #[test]
    fn log2_bucketing_is_exact_at_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_walk_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t");
        for v in [1u64, 1, 1, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = reg.snapshot().histogram("t");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.quantile(0.5), 1);
        // 1000 lands in bucket 10 → upper bound 2^10 - 1.
        assert_eq!(snap.quantile(0.75), 1023);
        // 1_000_000 lands in bucket 20 → upper bound 2^20 - 1.
        assert_eq!(snap.quantile(1.0), (1 << 20) - 1);
        assert_eq!(snap.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let reg = MetricsRegistry::new();
        let _h = reg.histogram("empty");
        assert_eq!(reg.snapshot().histogram("empty").quantile(0.99), 0);
    }

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("calls");
        let h = reg.histogram("lat");
        c.add(10);
        h.record(5);
        let before = reg.snapshot();
        c.add(7);
        h.record(9);
        h.record(9);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.counter("calls"), 7);
        let lat = delta.histogram("lat");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 18);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("metrics.test.global");
        let b = global().counter("metrics.test.global");
        let before = a.get();
        b.inc();
        assert_eq!(a.get(), before + 1);
    }
}
