//! Deterministic, versioned, checksummed snapshot container — the wire
//! format every durable posterior checkpoint is written in.
//!
//! The container is deliberately boring: a fixed preamble followed by
//! length-prefixed, individually CRC-32-checked sections. Every number is
//! little-endian; every `f64` travels as its exact IEEE-754 bit pattern
//! ([`f64::to_bits`]), so encoding is a *pure function of canonical state* —
//! no wall clock, no pointer-dependent ordering, no float formatting. That
//! purity is what the round-trip gate relies on: save → load → re-save is
//! byte-identical, and two replicas loading the same file hold bit-identical
//! posteriors.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic              8 bytes   b"OSRSNAP\0"
//! format version     u32       SNAPSHOT_FORMAT_VERSION
//! dim                u32       feature dimension of the model
//! method tag         u16 len + UTF-8 bytes (e.g. "cdosr")
//! section count      u32
//! header CRC-32      u32       over every preceding byte
//! per section:
//!   section id       u32
//!   payload length   u64
//!   section CRC-32   u32       over id ‖ length ‖ payload
//!   payload          length bytes
//! ```
//!
//! The preamble layout (through the header CRC) is frozen across format
//! versions, so a reader can always distinguish "future version"
//! ([`SnapshotError::VersionSkew`]) from "bit rot" (the header CRC fails
//! first). Loading never panics: truncation, bit-flips, version skew, and
//! shape mismatches each map to a typed [`SnapshotError`].

use std::fmt;

/// Current snapshot container format version. Bump on any layout change;
/// readers reject every other version with [`SnapshotError::VersionSkew`].
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// The 8-byte file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"OSRSNAP\0";

/// Pseudo section id reported when the *header* checksum fails.
pub const HEADER_SECTION: u32 = u32::MAX;

/// Typed failure of snapshot encoding, decoding, or persistence. Never a
/// panic: every corruption mode a disk or a truncated copy can produce has
/// a variant, so callers can log precisely and fall back to last-good state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The file's format version is not the one this build reads.
    VersionSkew {
        /// Version found in the header.
        found: u32,
        /// Version this build supports ([`SNAPSHOT_FORMAT_VERSION`]).
        supported: u32,
    },
    /// The byte stream ended before a declared structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes the structure required.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A CRC-32 mismatch: the bytes of `section` were altered after writing
    /// ([`HEADER_SECTION`] means the preamble itself).
    ChecksumMismatch {
        /// Section id whose checksum failed.
        section: u32,
    },
    /// The snapshot's feature dimension does not match the consumer's.
    DimensionMismatch {
        /// Dimension the consumer expects.
        expected: usize,
        /// Dimension the snapshot carries.
        got: usize,
    },
    /// The snapshot was written by a different method than the consumer.
    MethodMismatch {
        /// Method tag the consumer expects.
        expected: String,
        /// Method tag the snapshot carries.
        got: String,
    },
    /// A section the decoder requires is absent.
    MissingSection {
        /// The absent section's id.
        section: u32,
    },
    /// Structurally invalid payload (checksums passed, but the decoded
    /// values violate a model invariant — message explains).
    Malformed(String),
    /// An I/O failure while persisting or reading (message carries the
    /// OS error; stored as a string so the error stays `Clone + PartialEq`).
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::VersionSkew { found, supported } => {
                write!(f, "snapshot format version {found} is not supported (this build reads version {supported})")
            }
            Self::Truncated { context, expected, got } => {
                write!(f, "snapshot truncated reading {context}: needed {expected} byte(s), had {got}")
            }
            Self::ChecksumMismatch { section } if *section == HEADER_SECTION => {
                write!(f, "snapshot header checksum mismatch (corrupted preamble)")
            }
            Self::ChecksumMismatch { section } => {
                write!(f, "snapshot section {section} checksum mismatch (corrupted payload)")
            }
            Self::DimensionMismatch { expected, got } => {
                write!(f, "snapshot dimension {got} does not match the expected dimension {expected}")
            }
            Self::MethodMismatch { expected, got } => {
                write!(f, "snapshot was written by method `{got}`, expected `{expected}`")
            }
            Self::MissingSection { section } => {
                write!(f, "snapshot lacks required section {section}")
            }
            Self::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            Self::Io(msg) => write!(f, "snapshot I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Crate-internal result alias for snapshot codecs.
pub type SnapResult<T> = std::result::Result<T, SnapshotError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum stamped on every section.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC-32 over the concatenation of `parts` without materializing it —
/// used to stamp a section's id and length together with its payload, so a
/// bit-flip in the section framing is caught exactly like one in the data.
fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder for section payloads. Infallible: it
/// only grows a buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty payload buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit on every host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its exact bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a slice of `f64`s (length is *not* written; callers prefix it
    /// explicitly where the length is not implied by earlier fields).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a bool as one strict `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string (u16 length).
    pub fn put_str(&mut self, s: &str) {
        let len = s.len().min(u16::MAX as usize) as u16;
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&s.as_bytes()[..len as usize]);
    }
}

/// Bounds-checked little-endian cursor over a section payload. Every read
/// that would run past the end returns [`SnapshotError::Truncated`] instead
/// of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Cursor over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes, or a typed truncation error.
    pub fn take(&mut self, n: usize, context: &'static str) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context,
                expected: n,
                got: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> SnapResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> SnapResult<u32> {
        let b = self.take(4, context)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> SnapResult<u64> {
        let b = self.take(8, context)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values the host
    /// cannot index.
    pub fn usize(&mut self, context: &'static str) -> SnapResult<usize> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| {
            SnapshotError::Malformed(format!("{context}: count {v} exceeds the host's usize"))
        })
    }

    /// Read a `usize` that prefixes per-element payloads of `elem_bytes`
    /// bytes each: the declared count must fit in the remaining buffer, so a
    /// corrupted length cannot provoke a huge allocation before the
    /// element reads fail.
    pub fn count(&mut self, elem_bytes: usize, context: &'static str) -> SnapResult<usize> {
        let n = self.usize(context)?;
        let need = n.checked_mul(elem_bytes.max(1)).ok_or_else(|| {
            SnapshotError::Malformed(format!("{context}: count {n} overflows"))
        })?;
        if need > self.remaining() {
            return Err(SnapshotError::Truncated {
                context,
                expected: need,
                got: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn f64(&mut self, context: &'static str) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read `n` `f64`s into a fresh vector.
    pub fn f64_vec(&mut self, n: usize, context: &'static str) -> SnapResult<Vec<f64>> {
        let bytes = self.take(n.checked_mul(8).ok_or_else(|| {
            SnapshotError::Malformed(format!("{context}: length {n} overflows"))
        })?, context)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(a))
            })
            .collect())
    }

    /// Read a strict `0`/`1` bool byte.
    pub fn bool(&mut self, context: &'static str) -> SnapResult<bool> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!(
                "{context}: byte {other} is not a bool"
            ))),
        }
    }

    /// Read a u16-length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> SnapResult<String> {
        let b = self.take(2, context)?;
        let len = u16::from_le_bytes([b[0], b[1]]) as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed(format!("{context}: invalid UTF-8")))
    }

    /// Require the payload to be fully consumed — trailing bytes mean the
    /// writer and reader disagree about the section's shape.
    pub fn finish(&self, context: &'static str) -> SnapResult<()> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{context}: {} trailing byte(s) after the declared payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container writer / reader
// ---------------------------------------------------------------------------

/// Assembles a snapshot container: preamble plus CRC-stamped sections, in
/// the order the caller adds them (which the caller must keep deterministic
/// — section order is part of the byte contract).
#[derive(Debug)]
pub struct SnapshotWriter {
    version: u32,
    method: String,
    dim: usize,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Writer for the current [`SNAPSHOT_FORMAT_VERSION`].
    pub fn new(method: &str, dim: usize) -> Self {
        Self::with_version(SNAPSHOT_FORMAT_VERSION, method, dim)
    }

    /// Writer stamping an explicit format version — exists so compatibility
    /// tests can fabricate future-version headers; production code uses
    /// [`SnapshotWriter::new`].
    pub fn with_version(version: u32, method: &str, dim: usize) -> Self {
        Self { version, method: method.to_string(), dim, sections: Vec::new() }
    }

    /// Append one section. Ids must be unique within a container.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate snapshot section id {id}"
        );
        self.sections.push((id, payload));
    }

    /// Serialize the container to its canonical byte form.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        let tag_len = self.method.len().min(u16::MAX as usize) as u16;
        out.extend_from_slice(&tag_len.to_le_bytes());
        out.extend_from_slice(&self.method.as_bytes()[..tag_len as usize]);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (id, payload) in &self.sections {
            let id_bytes = id.to_le_bytes();
            let len_bytes = (payload.len() as u64).to_le_bytes();
            // The section CRC covers the framing (id, length) and the
            // payload, so a flipped framing byte is caught like any other.
            let crc = crc32_parts(&[&id_bytes, &len_bytes, payload]);
            out.extend_from_slice(&id_bytes);
            out.extend_from_slice(&len_bytes);
            out.extend_from_slice(&crc.to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed, integrity-verified snapshot container. Parsing validates the
/// magic, the format version, the header CRC, every section's bounds, and
/// every section's CRC up front — a [`SnapshotFile`] in hand means the raw
/// bytes are exactly what some writer produced.
#[derive(Debug)]
pub struct SnapshotFile<'a> {
    version: u32,
    method: String,
    dim: usize,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapshotFile<'a> {
    /// Parse and verify `bytes`.
    ///
    /// # Errors
    /// Typed [`SnapshotError`] for every corruption mode: bad magic,
    /// truncation anywhere, header or section checksum mismatch, and
    /// version skew. Never panics.
    pub fn parse(bytes: &'a [u8]) -> SnapResult<Self> {
        let mut dec = Dec::new(bytes);
        let magic = dec.take(8, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = dec.u32("format version")?;
        let dim = dec.u32("dim")? as usize;
        let method = dec.str("method tag")?;
        let n_sections = dec.u32("section count")?;
        // The header CRC covers every preamble byte before it. Verify it
        // before trusting the version: a bit-flip in the preamble reads as
        // corruption, a valid CRC with a different version as skew.
        let header_end = dec.pos;
        let header_crc = dec.u32("header checksum")?;
        if crc32(&bytes[..header_end]) != header_crc {
            return Err(SnapshotError::ChecksumMismatch { section: HEADER_SECTION });
        }
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: version,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let mut sections = Vec::with_capacity(n_sections as usize);
        for _ in 0..n_sections {
            let id = dec.u32("section id")?;
            let len = dec.usize("section length")?;
            let crc = dec.u32("section checksum")?;
            let payload = dec.take(len, "section payload")?;
            let computed = crc32_parts(&[
                &id.to_le_bytes(),
                &(len as u64).to_le_bytes(),
                payload,
            ]);
            // Deterministically falsify this section's verification — the
            // injected equivalent of a bit-flip the CRC catches.
            #[cfg(feature = "fault-inject")]
            let computed = if crate::faults::hit(crate::faults::sites::SNAPSHOT_CHECKSUM)
                == Some(crate::faults::Fault::Corrupt)
            {
                !computed
            } else {
                computed
            };
            if computed != crc {
                return Err(SnapshotError::ChecksumMismatch { section: id });
            }
            sections.push((id, payload));
        }
        dec.finish("container")?;
        Ok(Self { version, method, dim, sections })
    }

    /// The container's format version (always [`SNAPSHOT_FORMAT_VERSION`]
    /// after a successful parse).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The writer's method tag (e.g. `"cdosr"`).
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The model's feature dimension as stamped in the header.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sections present.
    pub fn n_sections(&self) -> usize {
        self.sections.len()
    }

    /// The verified payload of section `id`.
    ///
    /// # Errors
    /// [`SnapshotError::MissingSection`] when absent.
    pub fn section(&self, id: u32) -> SnapResult<&'a [u8]> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, payload)| *payload)
            .ok_or(SnapshotError::MissingSection { section: id })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_container() -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_f64(1.5);
        enc.put_usize(7);
        enc.put_bool(true);
        enc.put_str("hello");
        let mut w = SnapshotWriter::new("cdosr", 16);
        w.section(1, enc.into_bytes());
        w.section(2, vec![9, 9, 9]);
        w.finish()
    }

    #[test]
    fn container_roundtrip_and_determinism() {
        let a = sample_container();
        let b = sample_container();
        assert_eq!(a, b, "encoding must be a pure function of its inputs");
        let file = SnapshotFile::parse(&a).unwrap();
        assert_eq!(file.version(), SNAPSHOT_FORMAT_VERSION);
        assert_eq!(file.method(), "cdosr");
        assert_eq!(file.dim(), 16);
        assert_eq!(file.n_sections(), 2);
        let mut dec = Dec::new(file.section(1).unwrap());
        assert_eq!(dec.f64("x").unwrap(), 1.5);
        assert_eq!(dec.usize("n").unwrap(), 7);
        assert!(dec.bool("b").unwrap());
        assert_eq!(dec.str("s").unwrap(), "hello");
        dec.finish("payload").unwrap();
        assert_eq!(file.section(2).unwrap(), &[9, 9, 9]);
        assert!(matches!(file.section(3), Err(SnapshotError::MissingSection { section: 3 })));
    }

    #[test]
    fn every_truncation_is_typed() {
        let full = sample_container();
        for len in 0..full.len() {
            let err = SnapshotFile::parse(&full[..len])
                .err()
                .unwrap_or_else(|| panic!("prefix of {len} bytes parsed"));
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Malformed(_)
                ),
                "prefix {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let full = sample_container();
        for byte in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[byte] ^= 0x40;
            assert!(
                SnapshotFile::parse(&corrupt).is_err(),
                "bit flip at byte {byte} went unnoticed"
            );
        }
    }

    #[test]
    fn future_version_reads_as_skew_not_corruption() {
        let mut w = SnapshotWriter::with_version(SNAPSHOT_FORMAT_VERSION + 1, "cdosr", 4);
        w.section(1, vec![1, 2, 3]);
        let bytes = w.finish();
        assert_eq!(
            SnapshotFile::parse(&bytes).err().unwrap(),
            SnapshotError::VersionSkew {
                found: SNAPSHOT_FORMAT_VERSION + 1,
                supported: SNAPSHOT_FORMAT_VERSION,
            }
        );
    }

    #[test]
    fn bad_magic_is_its_own_error() {
        let mut bytes = sample_container();
        bytes[0] = b'X';
        assert_eq!(SnapshotFile::parse(&bytes).err().unwrap(), SnapshotError::BadMagic);
    }

    #[test]
    fn corrupt_length_cannot_demand_absurd_allocation() {
        let mut enc = Enc::new();
        enc.put_usize(usize::MAX / 2); // a count with no payload behind it
        let payload = enc.into_bytes();
        let mut dec = Dec::new(&payload);
        assert!(matches!(
            dec.count(8, "items"),
            Err(SnapshotError::Truncated { .. } | SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let dec = Dec::new(&[1, 2, 3]);
        assert!(matches!(dec.finish("p"), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn errors_render_without_panicking() {
        for e in [
            SnapshotError::BadMagic,
            SnapshotError::VersionSkew { found: 9, supported: 1 },
            SnapshotError::Truncated { context: "x", expected: 8, got: 2 },
            SnapshotError::ChecksumMismatch { section: HEADER_SECTION },
            SnapshotError::ChecksumMismatch { section: 3 },
            SnapshotError::DimensionMismatch { expected: 16, got: 4 },
            SnapshotError::MethodMismatch { expected: "cdosr".into(), got: "osnn".into() },
            SnapshotError::MissingSection { section: 5 },
            SnapshotError::Malformed("msg".into()),
            SnapshotError::Io("disk gone".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
