//! Process-wide instrumentation counters.
//!
//! The posterior predictive ([`crate::NiwPosterior::predictive_logpdf`]) is
//! the single hottest call of the whole reproduction — every CRF seating
//! decision evaluates it once per live dish. The harness reports this count
//! next to wall-clock numbers so serving-path optimizations (warm-start
//! batch sessions vs cold transductive runs) can be compared in units that
//! do not depend on the machine.
//!
//! Since the metrics registry ([`crate::metrics`]) landed, these counters
//! are named metrics in the global registry — same relaxed-atomic hot path
//! as before, but now they also appear in [`crate::metrics::global`]
//! snapshots next to the sampler's sweep metrics. The free-function API is
//! kept for existing callers; each function caches its registry handle in a
//! `OnceLock` so the hot path never touches the registry lock.
//!
//! Counters are process-global, so callers measuring a specific region
//! should record a before/after delta rather than resetting (other threads
//! may be sampling concurrently).

use std::sync::OnceLock;

use crate::metrics::{global, Counter, Gauge, Histogram};

/// Registry name of the posterior-predictive evaluation counter.
pub const PREDICTIVE_LOGPDF_CALLS: &str = "stats.predictive_logpdf_calls";
/// Registry name of the one-observation-vs-all-dishes kernel counter
/// (collective-decision scoring passes over the dish bank).
pub const PREDICTIVE_ONE_VS_ALL: &str = "stats.predictive_one_vs_all";
/// Registry name of the batched-observations-vs-one-dish kernel counter
/// (block predictives in the table dish-resampling step).
pub const PREDICTIVE_BATCH_VS_ONE: &str = "stats.predictive_batch_vs_one";
/// Registry name of the predictive-kernel latency histogram (nanoseconds
/// per fused kernel invocation, both kernel shapes pooled).
pub const PREDICTIVE_NS: &str = "stats.predictive_ns";
/// Registry name of the serve-retry counter.
pub const SERVE_RETRIES: &str = "serving.retries";
/// Registry name of the degraded-batch counter.
pub const DEGRADED_BATCHES: &str = "serving.degraded_batches";
/// Registry name of the durable-snapshot save counter.
pub const SNAPSHOT_SAVES: &str = "snapshot.saves";
/// Registry name of the durable-snapshot load counter (successful decodes).
pub const SNAPSHOT_LOADS: &str = "snapshot.loads";
/// Registry name of the durable-snapshot load-failure counter (typed decode
/// or I/O errors surfaced to the caller).
pub const SNAPSHOT_LOAD_FAILURES: &str = "snapshot.load_failures";
/// Registry name of the durable-recovery counter (batches answered by
/// reloading the last-good on-disk snapshot after in-memory state was lost
/// or rejected).
pub const DURABLE_RECOVERIES: &str = "serving.durable_recoveries";
/// Registry name of the front-end enqueue counter (singleton requests
/// admitted into a tenant queue).
pub const FRONTEND_ENQUEUED: &str = "frontend.enqueued";
/// Registry name of the front-end size-flush counter (micro-batches flushed
/// because a tenant queue reached `max_batch`).
pub const FRONTEND_FLUSHES_SIZE: &str = "frontend.flushes_size";
/// Registry name of the front-end deadline-flush counter (micro-batches
/// flushed because the oldest queued request hit the latency SLO).
pub const FRONTEND_FLUSHES_DEADLINE: &str = "frontend.flushes_deadline";
/// Registry name of the front-end shed counter (requests rejected with a
/// typed overload error instead of joining a full tenant queue).
pub const FRONTEND_SHED: &str = "frontend.shed";
/// Registry name of the front-end queue-depth gauge (total requests queued
/// or flushed-but-undispatched across all tenants, updated on every
/// enqueue/flush/dispatch transition).
pub const FRONTEND_QUEUE_DEPTH: &str = "frontend.queue_depth";
/// Registry name of the model-registry cold-load counter (tenants whose
/// warm model was materialized from the durable snapshot store on demand).
pub const FRONTEND_COLD_LOADS: &str = "frontend.cold_loads";
/// Registry name of the model-registry eviction counter (warm models
/// dropped by the LRU bound to admit another tenant).
pub const FRONTEND_EVICTIONS: &str = "frontend.evictions";

fn handle(cell: &'static OnceLock<Counter>, name: &str) -> &'static Counter {
    cell.get_or_init(|| global().counter(name))
}

fn predictive_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, PREDICTIVE_LOGPDF_CALLS)
}

fn one_vs_all_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, PREDICTIVE_ONE_VS_ALL)
}

fn batch_vs_one_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, PREDICTIVE_BATCH_VS_ONE)
}

fn predictive_ns_handle() -> &'static Histogram {
    static CELL: OnceLock<Histogram> = OnceLock::new();
    CELL.get_or_init(|| global().histogram(PREDICTIVE_NS))
}

fn retries_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, SERVE_RETRIES)
}

fn degraded_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, DEGRADED_BATCHES)
}

fn snapshot_saves_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, SNAPSHOT_SAVES)
}

fn snapshot_loads_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, SNAPSHOT_LOADS)
}

fn snapshot_load_failures_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, SNAPSHOT_LOAD_FAILURES)
}

fn durable_recoveries_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, DURABLE_RECOVERIES)
}

fn frontend_enqueued_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, FRONTEND_ENQUEUED)
}

fn frontend_flushes_size_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, FRONTEND_FLUSHES_SIZE)
}

fn frontend_flushes_deadline_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, FRONTEND_FLUSHES_DEADLINE)
}

fn frontend_shed_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, FRONTEND_SHED)
}

fn frontend_queue_depth_handle() -> &'static Gauge {
    static CELL: OnceLock<Gauge> = OnceLock::new();
    CELL.get_or_init(|| global().gauge(FRONTEND_QUEUE_DEPTH))
}

fn frontend_cold_loads_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, FRONTEND_COLD_LOADS)
}

fn frontend_evictions_handle() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    handle(&CELL, FRONTEND_EVICTIONS)
}

#[inline]
pub(crate) fn record_predictive_logpdf() {
    predictive_handle().inc();
}

/// Total posterior-predictive evaluations since process start.
pub fn predictive_logpdf_calls() -> u64 {
    predictive_handle().get()
}

/// Record one one-vs-all kernel invocation that scored `dishes` dishes:
/// bumps the kernel counter, folds the per-dish evaluations into the legacy
/// predictive-call total (so the machine-independent unit of work stays
/// comparable across layouts), and files the kernel wall time.
#[inline]
pub(crate) fn record_predictive_one_vs_all(dishes: u64, elapsed_ns: u64) {
    one_vs_all_handle().inc();
    predictive_handle().add(dishes);
    predictive_ns_handle().record(elapsed_ns);
}

/// Record one batch-vs-one kernel invocation that evaluated `points`
/// observations against a single dish (see
/// [`record_predictive_one_vs_all`] for the accounting contract).
#[inline]
pub(crate) fn record_predictive_batch_vs_one(points: u64, elapsed_ns: u64) {
    batch_vs_one_handle().inc();
    predictive_handle().add(points);
    predictive_ns_handle().record(elapsed_ns);
}

/// Total one-vs-all kernel invocations since process start.
pub fn predictive_one_vs_all_calls() -> u64 {
    one_vs_all_handle().get()
}

/// Total batch-vs-one kernel invocations since process start.
pub fn predictive_batch_vs_one_calls() -> u64 {
    batch_vs_one_handle().get()
}

/// Record one serve-attempt retry (an attempt launched after a divergent
/// previous attempt on the same batch).
#[inline]
pub fn record_serve_retry() {
    retries_handle().inc();
}

/// Total serve-attempt retries since process start.
pub fn serve_retries() -> u64 {
    retries_handle().get()
}

/// Record one batch answered via degraded frozen inference.
#[inline]
pub fn record_degraded_batch() {
    degraded_handle().inc();
}

/// Total batches answered via degraded frozen inference since process start.
pub fn degraded_batches() -> u64 {
    degraded_handle().get()
}

/// Record one durable snapshot persisted to disk.
#[inline]
pub fn record_snapshot_save() {
    snapshot_saves_handle().inc();
}

/// Total durable snapshot saves since process start.
pub fn snapshot_saves() -> u64 {
    snapshot_saves_handle().get()
}

/// Record one durable snapshot successfully loaded and decoded.
#[inline]
pub fn record_snapshot_load() {
    snapshot_loads_handle().inc();
}

/// Total successful durable snapshot loads since process start.
pub fn snapshot_loads() -> u64 {
    snapshot_loads_handle().get()
}

/// Record one durable snapshot load that failed with a typed error.
#[inline]
pub fn record_snapshot_load_failure() {
    snapshot_load_failures_handle().inc();
}

/// Total durable snapshot load failures since process start.
pub fn snapshot_load_failures() -> u64 {
    snapshot_load_failures_handle().get()
}

/// Record one batch answered by recovering the model from the last-good
/// on-disk snapshot.
#[inline]
pub fn record_durable_recovery() {
    durable_recoveries_handle().inc();
}

/// Total durable recoveries since process start.
pub fn durable_recoveries() -> u64 {
    durable_recoveries_handle().get()
}

/// Record one singleton request admitted into a front-end tenant queue.
#[inline]
pub fn record_frontend_enqueued() {
    frontend_enqueued_handle().inc();
}

/// Total front-end enqueues since process start.
pub fn frontend_enqueued() -> u64 {
    frontend_enqueued_handle().get()
}

/// Record one micro-batch flushed because its tenant queue filled up.
#[inline]
pub fn record_frontend_flush_size() {
    frontend_flushes_size_handle().inc();
}

/// Total size-triggered front-end flushes since process start.
pub fn frontend_flushes_size() -> u64 {
    frontend_flushes_size_handle().get()
}

/// Record one micro-batch flushed because its oldest request hit the SLO
/// deadline.
#[inline]
pub fn record_frontend_flush_deadline() {
    frontend_flushes_deadline_handle().inc();
}

/// Total deadline-triggered front-end flushes since process start.
pub fn frontend_flushes_deadline() -> u64 {
    frontend_flushes_deadline_handle().get()
}

/// Record one request shed with a typed overload error.
#[inline]
pub fn record_frontend_shed() {
    frontend_shed_handle().inc();
}

/// Total front-end sheds since process start.
pub fn frontend_shed() -> u64 {
    frontend_shed_handle().get()
}

/// Overwrite the front-end queue-depth gauge (requests admitted but not yet
/// dispatched, across all tenants).
#[inline]
pub fn set_frontend_queue_depth(depth: f64) {
    frontend_queue_depth_handle().set(depth);
}

/// Most recently published front-end queue depth.
pub fn frontend_queue_depth() -> f64 {
    frontend_queue_depth_handle().get()
}

/// Record one tenant model cold-loaded from the durable snapshot store.
#[inline]
pub fn record_frontend_cold_load() {
    frontend_cold_loads_handle().inc();
}

/// Total registry cold loads since process start.
pub fn frontend_cold_loads() -> u64 {
    frontend_cold_loads_handle().get()
}

/// Record one warm model evicted by the registry's LRU bound.
#[inline]
pub fn record_frontend_eviction() {
    frontend_evictions_handle().inc();
}

/// Total registry evictions since process start.
pub fn frontend_evictions() -> u64 {
    frontend_evictions_handle().get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_under_records() {
        let before = predictive_logpdf_calls();
        for _ in 0..3 {
            record_predictive_logpdf();
        }
        assert!(predictive_logpdf_calls() >= before + 3);
    }

    #[test]
    fn counters_are_visible_in_the_global_registry() {
        let before = global().snapshot().counter(SERVE_RETRIES);
        record_serve_retry();
        let after = global().snapshot().counter(SERVE_RETRIES);
        assert!(after > before);
    }

    #[test]
    fn frontend_metrics_reach_the_registry() {
        let before = global().snapshot();
        record_frontend_enqueued();
        record_frontend_flush_size();
        record_frontend_flush_deadline();
        record_frontend_shed();
        record_frontend_cold_load();
        record_frontend_eviction();
        set_frontend_queue_depth(3.0);
        let delta = global().snapshot().delta_since(&before);
        assert!(delta.counter(FRONTEND_ENQUEUED) >= 1);
        assert!(delta.counter(FRONTEND_FLUSHES_SIZE) >= 1);
        assert!(delta.counter(FRONTEND_FLUSHES_DEADLINE) >= 1);
        assert!(delta.counter(FRONTEND_SHED) >= 1);
        assert!(delta.counter(FRONTEND_COLD_LOADS) >= 1);
        assert!(delta.counter(FRONTEND_EVICTIONS) >= 1);
        assert_eq!(frontend_queue_depth(), 3.0);
    }

    #[test]
    fn kernel_records_split_by_shape_and_feed_the_legacy_total() {
        let before = global().snapshot();
        record_predictive_one_vs_all(7, 1_500);
        record_predictive_batch_vs_one(3, 900);
        let delta = global().snapshot().delta_since(&before);
        assert!(delta.counter(PREDICTIVE_ONE_VS_ALL) >= 1);
        assert!(delta.counter(PREDICTIVE_BATCH_VS_ONE) >= 1);
        // Per-evaluation units flow into the legacy machine-independent total.
        assert!(delta.counter(PREDICTIVE_LOGPDF_CALLS) >= 10);
        assert!(delta.histogram(PREDICTIVE_NS).count >= 2);
    }
}
