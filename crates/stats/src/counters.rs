//! Process-wide instrumentation counters.
//!
//! The posterior predictive ([`crate::NiwPosterior::predictive_logpdf`]) is
//! the single hottest call of the whole reproduction — every CRF seating
//! decision evaluates it once per live dish. The harness reports this count
//! next to wall-clock numbers so serving-path optimizations (warm-start
//! batch sessions vs cold transductive runs) can be compared in units that
//! do not depend on the machine.
//!
//! Counters are relaxed atomics: cheap enough for the sampler's inner loop,
//! exact under any thread interleaving. They are process-global, so callers
//! measuring a specific region should record a before/after delta rather
//! than resetting (other threads may be sampling concurrently).

use std::sync::atomic::{AtomicU64, Ordering};

static PREDICTIVE_LOGPDF_CALLS: AtomicU64 = AtomicU64::new(0);
static SERVE_RETRIES: AtomicU64 = AtomicU64::new(0);
static DEGRADED_BATCHES: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn record_predictive_logpdf() {
    PREDICTIVE_LOGPDF_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Total posterior-predictive evaluations since process start (or the last
/// [`reset_predictive_logpdf_calls`]).
pub fn predictive_logpdf_calls() -> u64 {
    PREDICTIVE_LOGPDF_CALLS.load(Ordering::Relaxed)
}

/// Reset the predictive-call counter to zero. Prefer before/after deltas in
/// code that may share the process with other sampling threads.
pub fn reset_predictive_logpdf_calls() {
    PREDICTIVE_LOGPDF_CALLS.store(0, Ordering::Relaxed);
}

/// Record one serve-attempt retry (an attempt launched after a divergent
/// previous attempt on the same batch).
#[inline]
pub fn record_serve_retry() {
    SERVE_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Total serve-attempt retries since process start.
pub fn serve_retries() -> u64 {
    SERVE_RETRIES.load(Ordering::Relaxed)
}

/// Record one batch answered via degraded frozen inference.
#[inline]
pub fn record_degraded_batch() {
    DEGRADED_BATCHES.fetch_add(1, Ordering::Relaxed);
}

/// Total batches answered via degraded frozen inference since process start.
pub fn degraded_batches() -> u64 {
    DEGRADED_BATCHES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_under_records() {
        let before = predictive_logpdf_calls();
        for _ in 0..3 {
            record_predictive_logpdf();
        }
        assert!(predictive_logpdf_calls() >= before + 3);
    }
}
