//! Weibull distribution and maximum-likelihood tail fitting — the statistical
//! extreme-value-theory (EVT) machinery behind the W-SVM, W-OSVM and P_I-SVM
//! baselines (Scheirer et al. 2014, Jain et al. 2014).
//!
//! All three methods calibrate raw SVM decision scores into posterior-like
//! probabilities by fitting a Weibull to a *tail* of training scores:
//! the Fisher–Tippett theorem says the minima/maxima of i.i.d. samples
//! converge to a generalized extreme value distribution, and for bounded
//! tails that is the Weibull family.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Two-parameter Weibull distribution with shape `k > 0` and scale
/// `lambda > 0`, supported on `x ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    /// Shape parameter `k`.
    pub shape: f64,
    /// Scale parameter `λ`.
    pub scale: f64,
}

impl Weibull {
    /// Construct with validation.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite parameters.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(StatsError::InvalidParameter(format!("shape must be > 0, got {shape}")));
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(StatsError::InvalidParameter(format!("scale must be > 0, got {scale}")));
        }
        Ok(Self { shape, scale })
    }

    /// Cumulative distribution function `F(x) = 1 − exp(−(x/λ)^k)` (0 for
    /// `x ≤ 0`).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        1.0 - (-(x / self.scale).powf(self.shape)).exp()
    }

    /// Survival function `1 − F(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        (-(x / self.scale).powf(self.shape)).exp()
    }

    /// Probability density function (0 for `x < 0`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density at the origin: 0 for k > 1, 1/λ for k = 1, +inf for k < 1.
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Greater) => 0.0,
                Some(std::cmp::Ordering::Equal) => 1.0 / self.scale,
                _ => f64::INFINITY,
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    /// Quantile function (inverse CDF) for `p ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics for `p` outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "quantile: p must be in (0,1), got {p}");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    /// Distribution mean `λ Γ(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * crate::special::ln_gamma(1.0 + 1.0 / self.shape).exp()
    }

    /// Maximum-likelihood fit to strictly positive observations.
    ///
    /// Solves the profile-likelihood equation for the shape with a
    /// safeguarded Newton iteration (bisection fallback), then recovers the
    /// scale in closed form. This is the `fit` every EVT-calibrated baseline
    /// calls on its score tails.
    ///
    /// # Errors
    /// * [`StatsError::NotEnoughData`] with fewer than 2 observations,
    /// * [`StatsError::InvalidParameter`] if any observation is `≤ 0` or
    ///   non-finite, or all observations are identical (shape diverges),
    /// * [`StatsError::NoConvergence`] if the iteration stalls (pathological
    ///   inputs only).
    pub fn fit_mle(data: &[f64]) -> Result<Self> {
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData { needed: 2, got: data.len() });
        }
        if data.iter().any(|&x| !(x > 0.0) || !x.is_finite()) {
            return Err(StatsError::InvalidParameter(
                "Weibull fit requires strictly positive finite data".into(),
            ));
        }
        let n = data.len() as f64;
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if (max - min) / max < 1e-12 {
            return Err(StatsError::InvalidParameter(
                "Weibull fit is degenerate on constant data".into(),
            ));
        }
        let mean_ln: f64 = data.iter().map(|x| x.ln()).sum::<f64>() / n;

        // g(k) = Σ x^k ln x / Σ x^k − 1/k − mean(ln x); root in k is the MLE.
        let g = |k: f64| -> f64 {
            let mut sxk = 0.0;
            let mut sxklnx = 0.0;
            for &x in data {
                let xk = x.powf(k);
                sxk += xk;
                sxklnx += xk * x.ln();
            }
            sxklnx / sxk - 1.0 / k - mean_ln
        };

        // Bracket the root: g is increasing in k; g(k→0⁺) → −∞,
        // g(k→∞) → ln max − mean_ln > 0.
        let mut lo = 1e-3;
        let mut hi = 1.0;
        while g(hi) < 0.0 && hi < 1e4 {
            lo = hi;
            hi *= 2.0;
        }
        if g(hi) < 0.0 {
            return Err(StatsError::NoConvergence("Weibull shape bracket failed".into()));
        }
        // Bisection — robust, and 60 iterations give ~1e-18 relative width.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) / hi < 1e-12 {
                break;
            }
        }
        let k = 0.5 * (lo + hi);
        let scale = (data.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
        Self::new(k, scale)
    }
}

/// Direction of the tail handed to [`WeibullFit::fit_tail`]: whether small or
/// large scores are "extreme".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TailSide {
    /// Fit the *low* end — used for the positive-class inclusion model
    /// (scores of positives closest to the decision boundary).
    Low,
    /// Fit the *high* end — used for the reverse-Weibull rejection model on
    /// negative scores.
    High,
}

/// An EVT score calibrator: a Weibull fitted to a shifted tail of raw scores,
/// exposing probabilities over the original score axis. Both sides produce a
/// probability that is monotonically **increasing** in the score:
///
/// * [`TailSide::Low`] — *inclusion* model: fitted on the low tail of a
///   **positive** population's scores (the positives nearest the decision
///   boundary). `probability(s)` ≈ 0 well below the tail and → 1 inside the
///   population. This is P_I-SVM's probability of inclusion and W-SVM's
///   positive CAP model P_η.
/// * [`TailSide::High`] — *exceedance* (reverse-Weibull) model: fitted on
///   the high tail of a **negative** population's scores. `probability(s)`
///   ≈ 0 inside the negative bulk and → 1 for scores beyond its maximum,
///   i.e. the probability that `s` no longer looks negative. This is
///   W-SVM's reverse-Weibull model P_ψ for the negative classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeibullFit {
    weibull: Weibull,
    /// Offset subtracted from raw scores before the Weibull is applied.
    shift: f64,
    side: TailSide,
}

impl WeibullFit {
    /// Fit the extreme `tail_fraction` of `scores` (at least `min_tail`
    /// points, all of them if fewer are available).
    ///
    /// For [`TailSide::Low`] the tail is the smallest scores; each tail score
    /// `s` enters the Weibull as `s − m + ε` where `m` is the tail minimum,
    /// so calibrated probability rises from ~0 at the extreme inward. For
    /// [`TailSide::High`] scores are negated first (the classic
    /// reverse-Weibull trick) and the survival function is used, so the
    /// probability rises from ~0 inside the population to 1 beyond its
    /// maximum.
    ///
    /// # Errors
    /// Propagates [`Weibull::fit_mle`] failures (too little or degenerate
    /// data).
    pub fn fit_tail(
        scores: &[f64],
        side: TailSide,
        tail_fraction: f64,
        min_tail: usize,
    ) -> Result<Self> {
        if scores.len() < 2 {
            return Err(StatsError::NotEnoughData { needed: 2, got: scores.len() });
        }
        assert!(
            (0.0..=1.0).contains(&tail_fraction),
            "tail_fraction must be in [0, 1], got {tail_fraction}"
        );
        let mut s: Vec<f64> = match side {
            TailSide::Low => scores.to_vec(),
            TailSide::High => scores.iter().map(|x| -x).collect(),
        };
        s.sort_by(|a, b| a.partial_cmp(b).expect("scores must not contain NaN"));
        let want = ((scores.len() as f64 * tail_fraction).ceil() as usize)
            .max(min_tail)
            .min(scores.len());
        let tail = &s[..want];
        let m = tail[0];
        let spread = (tail[want - 1] - m).max(1e-9);
        let eps = 1e-3 * spread;
        let shifted: Vec<f64> = tail.iter().map(|x| x - m + eps).collect();
        let weibull = Weibull::fit_mle(&shifted)?;
        Ok(Self { weibull, shift: m - eps, side })
    }

    /// Calibrated probability for a raw score (increasing in the score on
    /// both sides; see the type-level docs for the two interpretations).
    ///
    /// * [`TailSide::Low`]: `F(s − shift)`,
    /// * [`TailSide::High`]: `1 − F(−s − shift)`.
    pub fn probability(&self, score: f64) -> f64 {
        match self.side {
            TailSide::Low => self.weibull.cdf(score - self.shift),
            TailSide::High => self.weibull.sf(-score - self.shift),
        }
    }

    /// The fitted Weibull (for reports and tests).
    pub fn weibull(&self) -> &Weibull {
        &self.weibull
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_weibull<R: Rng>(rng: &mut R, w: &Weibull, n: usize) -> Vec<f64> {
        (0..n).map(|_| w.quantile(rng.gen_range(1e-12..1.0))).collect()
    }

    #[test]
    fn cdf_pdf_quantile_consistency() {
        let w = Weibull::new(1.7, 2.3).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
            let x = w.quantile(p);
            assert!((w.cdf(x) - p).abs() < 1e-12, "quantile/cdf roundtrip at p={p}");
        }
        // pdf is the derivative of cdf.
        let x = 1.4;
        let h = 1e-6;
        let num = (w.cdf(x + h) - w.cdf(x - h)) / (2.0 * h);
        assert!((w.pdf(x) - num).abs() < 1e-6);
    }

    #[test]
    fn exponential_special_case() {
        // k = 1 is Exp(1/λ): F(x) = 1 − e^{−x/λ}.
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!((w.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
        assert!((w.mean() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn mle_recovers_true_parameters() {
        let mut rng = StdRng::seed_from_u64(31);
        let truth = Weibull::new(2.5, 1.8).unwrap();
        let data = sample_weibull(&mut rng, &truth, 8000);
        let fit = Weibull::fit_mle(&data).unwrap();
        assert!((fit.shape - truth.shape).abs() < 0.12, "shape {:.3}", fit.shape);
        assert!((fit.scale - truth.scale).abs() < 0.05, "scale {:.3}", fit.scale);
    }

    #[test]
    fn mle_recovers_sub_one_shape() {
        let mut rng = StdRng::seed_from_u64(77);
        let truth = Weibull::new(0.7, 3.0).unwrap();
        let data = sample_weibull(&mut rng, &truth, 8000);
        let fit = Weibull::fit_mle(&data).unwrap();
        assert!((fit.shape - 0.7).abs() < 0.05, "shape {:.3}", fit.shape);
    }

    #[test]
    fn mle_rejects_bad_inputs() {
        assert!(matches!(
            Weibull::fit_mle(&[1.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(Weibull::fit_mle(&[1.0, -2.0]).is_err());
        assert!(Weibull::fit_mle(&[0.0, 1.0]).is_err());
        assert!(Weibull::fit_mle(&[2.0, 2.0, 2.0]).is_err());
        assert!(Weibull::fit_mle(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -1.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn low_tail_calibration_is_increasing() {
        let mut rng = StdRng::seed_from_u64(5);
        // Positive-class decision scores: mostly around 1.5, tail toward 0.
        let scores: Vec<f64> =
            (0..500).map(|_| 1.5 + 0.5 * sampling::standard_normal(&mut rng)).collect();
        let cal = WeibullFit::fit_tail(&scores, TailSide::Low, 0.25, 5).unwrap();
        let far_below = cal.probability(-2.0);
        let mid = cal.probability(1.0);
        let above = cal.probability(3.0);
        assert!(far_below < 0.05, "deep below tail should be near 0: {far_below}");
        assert!(above > 0.95, "well inside class should be near 1: {above}");
        assert!(far_below < mid && mid < above, "monotonicity {far_below} {mid} {above}");
    }

    #[test]
    fn high_tail_exceedance_is_increasing() {
        let mut rng = StdRng::seed_from_u64(6);
        // Negative-class scores: around −1.5. The exceedance probability is
        // ~0 inside the negative bulk and ~1 for clearly positive scores.
        let scores: Vec<f64> =
            (0..500).map(|_| -1.5 + 0.5 * sampling::standard_normal(&mut rng)).collect();
        let cal = WeibullFit::fit_tail(&scores, TailSide::High, 0.25, 5).unwrap();
        let deep_neg = cal.probability(-4.0);
        let near = cal.probability(-0.5);
        let pos = cal.probability(2.0);
        assert!(deep_neg < 0.05, "deep negative is firmly inside the population: {deep_neg}");
        assert!(pos > 0.95, "strongly positive scores exceed the negative model: {pos}");
        assert!(deep_neg < near && near < pos, "monotonicity {deep_neg} {near} {pos}");
    }

    #[test]
    fn tail_fraction_bounds_are_respected() {
        let scores: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // min_tail larger than the fraction forces at least that many points.
        let cal = WeibullFit::fit_tail(&scores, TailSide::Low, 0.01, 10).unwrap();
        // Should fit fine on 10 points.
        assert!(cal.probability(200.0) > 0.99);
    }

    #[test]
    fn probability_is_a_probability() {
        let scores: Vec<f64> = (1..=50).map(|i| (i as f64).sqrt()).collect();
        let cal = WeibullFit::fit_tail(&scores, TailSide::Low, 0.5, 5).unwrap();
        for s in [-10.0, 0.0, 1.0, 3.0, 100.0] {
            let p = cal.probability(s);
            assert!((0.0..=1.0).contains(&p), "p({s}) = {p} out of range");
        }
    }
}
