//! Multivariate normal and multivariate Student-t log-densities, plus
//! Cholesky-based Gaussian sampling. The Student-t density is the posterior
//! predictive of the Normal–Inverse-Wishart family and therefore the single
//! most frequently evaluated function in the whole HDP sampler.

use rand::Rng;

use osr_linalg::{vector, Cholesky, Matrix};

use crate::special::ln_gamma;
use crate::{Result, StatsError};

/// Log-density of `N(mu, Sigma)` at `x`, given a pre-factored covariance.
///
/// # Panics
/// Panics on dimension mismatch between `x`, `mu` and the factorization.
pub fn mvn_logpdf(x: &[f64], mu: &[f64], cov_chol: &Cholesky) -> f64 {
    let d = mu.len();
    assert_eq!(x.len(), d, "mvn_logpdf: x dimension mismatch");
    assert_eq!(cov_chol.dim(), d, "mvn_logpdf: covariance dimension mismatch");
    let diff = vector::sub(x, mu);
    let maha = cov_chol.inv_quad_form(&diff);
    -0.5 * (d as f64 * (2.0 * std::f64::consts::PI).ln() + cov_chol.log_det() + maha)
}

/// Log-density of the multivariate Student-t with `df` degrees of freedom,
/// location `mu`, and scale matrix factored as `scale_chol`, evaluated at
/// `x`. The `extra_log_scale` argument lets callers reuse one Cholesky for a
/// family of scale matrices `c · Ψ`: pass `ln c` and the quadratic form and
/// log-determinant are adjusted analytically instead of refactorizing.
///
/// # Panics
/// Panics on dimension mismatch or non-positive `df`.
pub fn mvt_logpdf_scaled(
    x: &[f64],
    mu: &[f64],
    scale_chol: &Cholesky,
    extra_log_scale: f64,
    df: f64,
) -> f64 {
    let d = mu.len();
    assert_eq!(x.len(), d, "mvt_logpdf: x dimension mismatch");
    assert_eq!(scale_chol.dim(), d, "mvt_logpdf: scale dimension mismatch");
    assert!(df > 0.0, "mvt_logpdf: df must be positive, got {df}");
    let dd = d as f64;
    let diff = vector::sub(x, mu);
    // Quadratic form under c·Ψ is (1/c) times the form under Ψ.
    let maha = scale_chol.inv_quad_form(&diff) / extra_log_scale.exp();
    let log_det = scale_chol.log_det() + dd * extra_log_scale;
    ln_gamma((df + dd) / 2.0)
        - ln_gamma(df / 2.0)
        - 0.5 * dd * (df * std::f64::consts::PI).ln()
        - 0.5 * log_det
        - 0.5 * (df + dd) * (1.0 + maha / df).ln()
}

/// Log-density of the multivariate Student-t (unscaled convenience wrapper).
pub fn mvt_logpdf(x: &[f64], mu: &[f64], scale_chol: &Cholesky, df: f64) -> f64 {
    mvt_logpdf_scaled(x, mu, scale_chol, 0.0, df)
}

/// Sampler for `N(mu, Sigma)` with a cached Cholesky factor.
#[derive(Debug, Clone)]
pub struct MvnSampler {
    mu: Vec<f64>,
    chol: Cholesky,
}

impl MvnSampler {
    /// Build a sampler from mean and covariance.
    ///
    /// # Errors
    /// Fails when `cov` is not positive definite.
    pub fn new(mu: Vec<f64>, cov: &Matrix) -> Result<Self> {
        if cov.rows() != mu.len() {
            return Err(StatsError::InvalidParameter(format!(
                "covariance is {}x{} but mean has dimension {}",
                cov.rows(),
                cov.cols(),
                mu.len()
            )));
        }
        let chol = Cholesky::factor(cov)?;
        Ok(Self { mu, chol })
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mu.len()
    }

    /// Draw one sample: `mu + L z` with `z` standard normal.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.dim();
        let z: Vec<f64> = (0..d).map(|_| crate::sampling::standard_normal(rng)).collect();
        let l = self.chol.factor_l();
        let mut x = self.mu.clone();
        for r in 0..d {
            for c in 0..=r {
                x[r] += l[(r, c)] * z[c];
            }
        }
        x
    }

    /// Log-density at `x`.
    pub fn logpdf(&self, x: &[f64]) -> f64 {
        mvn_logpdf(x, &self.mu, &self.chol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_mvn_logpdf_at_origin() {
        let chol = Cholesky::factor(&Matrix::identity(3)).unwrap();
        let lp = mvn_logpdf(&[0.0; 3], &[0.0; 3], &chol);
        let expect = -1.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((lp - expect).abs() < 1e-12);
    }

    #[test]
    fn mvn_logpdf_univariate_matches_formula() {
        let sigma2 = 2.5;
        let chol = Cholesky::factor(&Matrix::from_rows(&[vec![sigma2]])).unwrap();
        let (x, mu) = (1.3, 0.4);
        let lp = mvn_logpdf(&[x], &[mu], &chol);
        let expect = -0.5
            * ((2.0 * std::f64::consts::PI * sigma2).ln() + (x - mu) * (x - mu) / sigma2);
        assert!((lp - expect).abs() < 1e-12);
    }

    #[test]
    fn mvt_converges_to_mvn_for_large_df() {
        let cov = Matrix::from_rows(&[vec![1.5, 0.3], vec![0.3, 0.8]]);
        let chol = Cholesky::factor(&cov).unwrap();
        let x = [0.7, -0.4];
        let mu = [0.1, 0.2];
        let t = mvt_logpdf(&x, &mu, &chol, 1e7);
        let n = mvn_logpdf(&x, &mu, &chol);
        assert!((t - n).abs() < 1e-4, "t({t}) should approach normal({n})");
    }

    #[test]
    fn mvt_univariate_matches_standard_t() {
        // Standard t with 3 dof at x = 1: logpdf = ln Γ(2) - ln Γ(1.5)
        //   - 0.5 ln(3π) - 2 ln(1 + 1/3)
        let chol = Cholesky::factor(&Matrix::identity(1)).unwrap();
        let lp = mvt_logpdf(&[1.0], &[0.0], &chol, 3.0);
        let expect = ln_gamma(2.0)
            - ln_gamma(1.5)
            - 0.5 * (3.0 * std::f64::consts::PI).ln()
            - 2.0 * (4.0f64 / 3.0).ln();
        assert!((lp - expect).abs() < 1e-12);
    }

    #[test]
    fn scaled_variant_matches_explicit_scaling() {
        let psi = Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]);
        let c: f64 = 0.37;
        let scaled = &psi * c;
        let chol_psi = Cholesky::factor(&psi).unwrap();
        let chol_scaled = Cholesky::factor(&scaled).unwrap();
        let x = [0.3, -1.2];
        let mu = [0.0, 0.5];
        let df = 5.0;
        let fast = mvt_logpdf_scaled(&x, &mu, &chol_psi, c.ln(), df);
        let direct = mvt_logpdf(&x, &mu, &chol_scaled, df);
        assert!((fast - direct).abs() < 1e-10, "{fast} vs {direct}");
    }

    #[test]
    fn sampler_moments_match_parameters() {
        let mu = vec![1.0, -2.0];
        let cov = Matrix::from_rows(&[vec![2.0, 0.6], vec![0.6, 1.0]]);
        let s = MvnSampler::new(mu.clone(), &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mut mean = [0.0; 2];
        let mut cov_acc = [[0.0; 2]; 2];
        let draws: Vec<Vec<f64>> = (0..n).map(|_| s.sample(&mut rng)).collect();
        for d in &draws {
            mean[0] += d[0];
            mean[1] += d[1];
        }
        mean[0] /= n as f64;
        mean[1] /= n as f64;
        for d in &draws {
            for i in 0..2 {
                for j in 0..2 {
                    cov_acc[i][j] += (d[i] - mean[i]) * (d[j] - mean[j]);
                }
            }
        }
        for row in &mut cov_acc {
            for v in row.iter_mut() {
                *v /= (n - 1) as f64;
            }
        }
        assert!((mean[0] - 1.0).abs() < 0.05 && (mean[1] + 2.0).abs() < 0.05);
        assert!((cov_acc[0][0] - 2.0).abs() < 0.1);
        assert!((cov_acc[0][1] - 0.6).abs() < 0.05);
        assert!((cov_acc[1][1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn sampler_rejects_shape_mismatch() {
        let cov = Matrix::identity(3);
        assert!(MvnSampler::new(vec![0.0; 2], &cov).is_err());
    }

    #[test]
    fn logpdf_integrates_to_one_on_grid() {
        // Crude 1-d Riemann check that normalization is right.
        let chol = Cholesky::factor(&Matrix::from_rows(&[vec![0.7]])).unwrap();
        let step = 0.01;
        let mut acc = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            acc += mvn_logpdf(&[x], &[0.3], &chol).exp() * step;
            x += step;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral = {acc}");
    }
}
