//! Descriptive statistics for experiment reporting: means, standard
//! deviations, quantiles, and the mean ± std summaries the paper's error
//! bars are built from.

/// Arithmetic mean; 0 for an empty slice (callers report counts separately).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (n − 1 denominator); 0 when fewer than
/// two observations.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Linear-interpolation quantile for `q ∈ [0, 1]` on *unsorted* data.
///
/// Returns `None` on empty input.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile: q must be in [0,1], got {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: data must not contain NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median convenience wrapper.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Mean and standard deviation of a set of trial results, the form every
/// figure in the paper reports (line + error bar).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean over trials.
    pub mean: f64,
    /// Unbiased standard deviation over trials.
    pub std: f64,
    /// Number of trials aggregated.
    pub n: usize,
}

impl MeanStd {
    /// Aggregate a slice of trial values.
    pub fn from_values(xs: &[f64]) -> Self {
        Self { mean: mean(xs), std: std_dev(xs), n: xs.len() }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn std_of_singleton_is_zero() {
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [3.0, 1.0, 2.0, 4.0]; // sorted: 1 2 3 4
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 1.0 / 3.0), Some(2.0));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn mean_std_display() {
        let ms = MeanStd::from_values(&[0.5, 0.7]);
        assert_eq!(ms.n, 2);
        assert_eq!(format!("{ms}"), "0.6000 ± 0.1414");
    }
}
