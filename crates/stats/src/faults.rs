//! Deterministic fault-injection harness (compiled only with the
//! `fault-inject` cargo feature).
//!
//! Production code is sprinkled with *named sites* (see [`sites`]) that call
//! [`hit`] and, when a matching [`Injection`] is installed, misbehave in a
//! controlled way: perturb a feature to NaN, poison the divergence flag as if
//! a Cholesky factorization had failed past the jitter ladder, panic, or
//! sleep. With the feature disabled every site compiles to nothing.
//!
//! Determinism comes from *matching*, not randomness: an injection names its
//! site and may pin the batch index and attempt number it fires on. The
//! serving layer publishes that pair through a thread-local context
//! ([`with_context`]), so a plan like "Cholesky failure in batch 2, every
//! attempt" or "divergence in batch 0, attempt 0 only" reproduces exactly,
//! independent of worker count and scheduling.
//!
//! The installed plan is process-global: tests that install plans must be
//! serialized (e.g. behind a shared mutex) so one test's faults cannot leak
//! into another's baseline run. Dropping the [`ActivePlan`] guard returned by
//! [`install`] clears the plan.

use std::cell::Cell;
use std::sync::Mutex;

/// One way a named site can misbehave.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Panic with the given message (exercises `catch_unwind` isolation).
    Panic {
        /// Panic payload message.
        message: String,
    },
    /// Overwrite one coordinate of one point with NaN before admission.
    NanPoint {
        /// Index of the point to perturb.
        point: usize,
        /// Coordinate to overwrite.
        coord: usize,
    },
    /// Pretend a Cholesky factorization failed past the jitter ladder
    /// (poisons the divergence flag at the site).
    CholeskyFail,
    /// Poison the divergence flag directly (a generic retryable divergence).
    Diverge,
    /// Sleep for the given number of milliseconds (exercises deadlines).
    DelayMs(u64),
    /// Corrupt the site's data in a deterministic way: a snapshot save
    /// aborts after partially writing its temp file (a simulated mid-save
    /// crash), a snapshot load flips a payload byte, a checksum
    /// verification reports a false mismatch.
    Corrupt,
}

/// A fault bound to a site, optionally pinned to a batch and attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Site name the fault fires at (one of [`sites`]).
    pub site: &'static str,
    /// Fire only for this batch index (`None` = every batch).
    pub batch: Option<usize>,
    /// Fire only for this attempt number (`None` = every attempt).
    pub attempt: Option<u32>,
    /// The fault itself.
    pub fault: Fault,
}

/// A deterministic set of injections, installed process-wide.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    injections: Vec<Injection>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an injection at `site`, pinned to `batch`/`attempt` when `Some`.
    pub fn inject(
        mut self,
        site: &'static str,
        batch: Option<usize>,
        attempt: Option<u32>,
        fault: Fault,
    ) -> Self {
        self.injections.push(Injection {
            site,
            batch,
            attempt,
            fault,
        });
        self
    }
}

/// Names of every instrumented site, ordered by when serving reaches them.
pub mod sites {
    /// Inside `BatchServer` just before admission control validates a batch.
    pub const ADMISSION: &str = "serving::admission";
    /// Inside a serve attempt, after the `catch_unwind` boundary.
    pub const ATTEMPT: &str = "serving::attempt";
    /// Before each Gibbs sweep of a serve attempt (warm or cold).
    pub const SWEEP: &str = "serving::sweep";
    /// Inside the seating engine's per-sweep body (`BatchSession`/`Hdp`).
    pub const ENGINE_SWEEP: &str = "engine::sweep";
    /// Inside the NIW rank-1 downdate where the jitter-ladder rescue lives.
    pub const CHOLESKY: &str = "stats::cholesky";
    /// Inside a baseline serve adapter's `finish`, before the per-point
    /// predictions are computed (`osr-baselines`' `CollectiveModel` impl).
    pub const BASELINE_CLASSIFY: &str = "baseline::classify";
    /// Inside `SnapshotStore::save`, after the temp file is written but
    /// before the atomic rename (a `Corrupt` here simulates a mid-save
    /// crash: the temp file is truncated and the rename never happens).
    pub const SNAPSHOT_SAVE: &str = "snapshot::save";
    /// Inside `SnapshotStore::load`, after the file's bytes are read but
    /// before decoding (a `Corrupt` here flips one payload byte).
    pub const SNAPSHOT_LOAD: &str = "snapshot::load";
    /// Inside the snapshot container's per-section CRC verification (a
    /// `Corrupt` here falsifies the computed checksum).
    pub const SNAPSHOT_CHECKSUM: &str = "snapshot::checksum";
    /// Inside `Frontend::enqueue`, after per-point admission but before the
    /// request joins its tenant queue. Any installed fault here forces the
    /// shed path: the request is rejected with the typed overload error
    /// exactly as if the tenant's queue were full. The context pair is
    /// `(request_id as usize, 0)`.
    pub const FRONTEND_ENQUEUE: &str = "frontend::enqueue";
    /// Inside a front-end dispatch worker, before a flushed micro-batch is
    /// handed to the batch server (a `Panic` here exercises per-micro-batch
    /// isolation, a `DelayMs` stalls one flush). The context pair is
    /// `(flush_seq as usize, 0)`.
    pub const FRONTEND_FLUSH: &str = "frontend::flush";
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

thread_local! {
    static CONTEXT: Cell<Option<(usize, u32)>> = const { Cell::new(None) };
}

/// Guard for an installed plan; dropping it uninstalls the plan.
#[must_use = "dropping the guard immediately uninstalls the plan"]
pub struct ActivePlan(());

impl Drop for ActivePlan {
    fn drop(&mut self) {
        *lock_plan() = None;
    }
}

fn lock_plan() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    // A panic fault may unwind while the plan lock is held elsewhere; the
    // plan itself is always in a consistent state, so clear the poison.
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install `plan` process-wide, replacing any previous plan.
pub fn install(plan: FaultPlan) -> ActivePlan {
    *lock_plan() = Some(plan);
    ActivePlan(())
}

/// Run `f` with the (batch, attempt) pair published to injection matching on
/// this thread, restoring the previous context afterwards (even on unwind).
pub fn with_context<T>(batch: usize, attempt: u32, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<(usize, u32)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CONTEXT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CONTEXT.with(|c| c.replace(Some((batch, attempt)))));
    f()
}

/// The (batch, attempt) pair published on this thread, if any.
pub fn context() -> Option<(usize, u32)> {
    CONTEXT.with(Cell::get)
}

/// Return the first installed fault matching `site` under the current
/// thread's context. Sites call this and act on the returned fault.
pub fn hit(site: &str) -> Option<Fault> {
    let plan = lock_plan();
    let plan = plan.as_ref()?;
    let ctx = context();
    plan.injections
        .iter()
        .find(|inj| {
            inj.site == site
                && inj.batch.is_none_or(|b| ctx.map(|(cb, _)| cb) == Some(b))
                && inj.attempt.is_none_or(|a| ctx.map(|(_, ca)| ca) == Some(a))
        })
        .map(|inj| inj.fault.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is process-global; this lock serializes the tests below.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn matching_respects_site_batch_and_attempt() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _plan = install(
            FaultPlan::new()
                .inject(sites::SWEEP, Some(2), Some(1), Fault::Diverge)
                .inject(sites::CHOLESKY, None, None, Fault::CholeskyFail),
        );

        // No context: batch/attempt-pinned injections never match.
        assert_eq!(hit(sites::SWEEP), None);
        // Unpinned injections match even without context.
        assert_eq!(hit(sites::CHOLESKY), Some(Fault::CholeskyFail));

        with_context(2, 1, || {
            assert_eq!(hit(sites::SWEEP), Some(Fault::Diverge));
            assert_eq!(hit(sites::ADMISSION), None);
        });
        with_context(2, 0, || assert_eq!(hit(sites::SWEEP), None));
        with_context(1, 1, || assert_eq!(hit(sites::SWEEP), None));
    }

    #[test]
    fn dropping_the_guard_uninstalls_and_context_restores() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _plan = install(FaultPlan::new().inject(
                sites::ATTEMPT,
                None,
                None,
                Fault::Panic {
                    message: "boom".into(),
                },
            ));
            assert!(hit(sites::ATTEMPT).is_some());
            with_context(0, 0, || {
                with_context(7, 3, || assert_eq!(context(), Some((7, 3))));
                assert_eq!(context(), Some((0, 0)));
            });
            assert_eq!(context(), None);
        }
        assert_eq!(hit(sites::ATTEMPT), None);
    }
}
