//! Special functions: log-gamma, digamma, multivariate log-gamma, and
//! numerically safe log-sum-exp. All are accurate to ~1e-12 over the ranges
//! exercised by the sampler (arguments ≥ 1e-6, dimensions ≤ a few hundred).

use std::f64::consts::PI;

/// Lanczos coefficients (g = 7, n = 9), the classic Boost/Numerical-Recipes
/// parameter set — relative error below 1e-13 for positive arguments.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
/// Panics when `x <= 0` (reflection is never needed in this workspace and
/// silently accepting non-positive arguments would hide sampler bugs).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: argument must be positive, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for tiny x.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma (ψ) function for `x > 0`, via the asymptotic series after shifting
/// the argument above 6.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma: argument must be positive, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Log of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Multivariate log-gamma `ln Γ_d(a)`, the normalizer of the Wishart family:
/// `Γ_d(a) = π^{d(d-1)/4} ∏_{j=1}^{d} Γ(a + (1 - j)/2)`.
///
/// # Panics
/// Panics when `a <= (d - 1) / 2` (outside the Wishart domain).
pub fn ln_multigamma(d: usize, a: f64) -> f64 {
    assert!(
        a > (d as f64 - 1.0) / 2.0,
        "ln_multigamma: argument {a} outside domain for dimension {d}"
    );
    let mut acc = (d * (d - 1)) as f64 / 4.0 * PI.ln();
    for j in 1..=d {
        acc += ln_gamma(a + (1.0 - j as f64) / 2.0);
    }
    acc
}

/// Numerically safe `ln Σ exp(x_i)`.
///
/// Returns `-inf` for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m; // empty, all -inf, or contains +inf/NaN — propagate.
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Convert unnormalized log-weights to a normalized probability vector.
///
/// Entries of `-inf` map to probability zero. Returns all-zero when every
/// entry is `-inf`.
pub fn normalize_log_weights(log_w: &[f64]) -> Vec<f64> {
    let z = log_sum_exp(log_w);
    if !z.is_finite() {
        return vec![0.0; log_w.len()];
    }
    log_w.iter().map(|w| (w - z).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!(
                (ln_gamma(n) - f.ln()).abs() < 1e-12,
                "ln_gamma({n}) mismatch"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * PI.ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.1, 0.7, 2.3, 17.9, 123.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "recurrence failed at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn digamma_at_one_is_neg_euler_mascheroni() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + EULER).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.3, 1.0, 4.5, 42.0] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.8, 2.0, 9.5] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!((digamma(x) - numeric).abs() < 1e-6, "derivative check at {x}");
        }
    }

    #[test]
    fn ln_beta_symmetry_and_value() {
        assert!((ln_beta(2.0, 3.0) - ln_beta(3.0, 2.0)).abs() < 1e-14);
        // B(2,3) = 1/12
        assert!((ln_beta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn multigamma_reduces_to_gamma_in_1d() {
        for &a in &[0.7, 1.5, 10.0] {
            assert!((ln_multigamma(1, a) - ln_gamma(a)).abs() < 1e-13);
        }
    }

    #[test]
    fn multigamma_2d_closed_form() {
        // Γ_2(a) = sqrt(pi) Γ(a) Γ(a - 1/2)
        let a = 3.2;
        let expect = 0.5 * PI.ln() + ln_gamma(a) + ln_gamma(a - 0.5);
        assert!((ln_multigamma(2, a) - expect).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_extremes() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        // Huge offsets don't overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-10);
        // ln(e^0 + e^0) = ln 2
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-14);
    }

    #[test]
    fn normalize_log_weights_sums_to_one() {
        let p = normalize_log_weights(&[-1.0, 0.0, 2.5, f64::NEG_INFINITY]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(p[3], 0.0);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn normalize_log_weights_all_neg_inf_is_zero_vector() {
        let p = normalize_log_weights(&[f64::NEG_INFINITY; 3]);
        assert_eq!(p, vec![0.0; 3]);
    }
}
