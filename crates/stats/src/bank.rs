//! Struct-of-arrays bank of NIW posteriors: the vectorized predictive hot
//! path.
//!
//! The collapsed Gibbs sampler evaluates one Student-t posterior predictive
//! per live dish per seating decision. With per-dish [`crate::NiwPosterior`]
//! objects each evaluation re-derives the predictive constants (two
//! `ln_gamma`s, the factor log-determinant, a `ln`/`exp` pair for the scale)
//! and allocates two temporaries — work that only changes when the dish
//! *changes*, not when it is *scored*. [`DishBank`] moves every dish into
//! contiguous struct-of-arrays storage:
//!
//! ```text
//! slot:        0        1        2        ...          (free-list reuses slots)
//! mu:      [── d ──][── d ──][── d ──]                 contiguous means
//! chol:    [─ tri ─][─ tri ─][─ tri ─]                 column-packed lower Cholesky of Ψₙ
//! psi:     [─ tri ─][─ tri ─][─ tri ─]                 column-packed lower triangle of Ψₙ
//! kappa/nu/n/df/exp_ls/base/half_df_dd/log_det:  one f64 (or usize) per slot
//! ```
//!
//! where `tri = d(d+1)/2` and each triangle stores its columns contiguously
//! (column `j` contributes `d − j` entries, diagonal first, at offset
//! `j·d − j(j−1)/2`). Column order is what makes the hot mutations — the
//! Givens rank-1 update/downdate of the factor and the symmetric rank-1
//! update of Ψ — walk contiguous memory with elementwise lane helpers
//! ([`osr_linalg::lanes::givens_update_col`], [`osr_linalg::lanes::axpy4`]),
//! and the forward substitution still visits each accumulator in the same
//! ascending order ([`osr_linalg::lanes::fused_solve_lower_cols`]). The
//! per-dish constants are refreshed once per add/remove (the same
//! transcendental count the legacy path paid per *evaluation*), with the
//! count-dependent transcendentals memoized in a bit-validated lattice cache
//! ([`CountConstants`]); scoring reduces to the fused solve, a sequential
//! squared norm, and a single `ln`.
//!
//! # The two kernels and their numerics contracts
//!
//! **One observation vs. all dishes** ([`score_all`](DishBank::score_all),
//! plus the base-measure companion [`score_prior`](DishBank::score_prior)):
//! every cached constant is computed by the exact operation sequence of
//! [`crate::NiwPosterior::predictive_logpdf`] /
//! [`crate::mvn::mvt_logpdf_scaled`], and the per-evaluation remainder
//! preserves the legacy left-associated order, so bank scores equal the
//! legacy scores *to the bit* (property-tested in
//! `crates/stats/tests/bank_equivalence.rs`). The reassociating lane helper
//! `dot4` is deliberately **not** used on this path — see the
//! `osr_linalg::lanes` module docs.
//!
//! **A batch of observations vs. one dish**
//! ([`block_predictive_stats`](DishBank::block_predictive_stats)): the
//! chain-rule product of per-point Student-t predictives telescopes into a
//! closed-form marginal-likelihood ratio,
//!
//! ```text
//! ln p(X | D) = −(m·d/2) ln π
//!             + ln Γ_d(ν_{n+m}/2) − ln Γ_d(ν_n/2)
//!             + (ν_n/2) ln|Ψ_n| − (ν_{n+m}/2) ln|Ψ_{n+m}|
//!             + (d/2)(ln κ_n − ln κ_{n+m})
//! Ψ_{n+m} = Ψ_n + S + κ_n m/(κ_n+m) · δδ',   δ = x̄ − μ_n,
//! S = Σᵢ (xᵢ−x̄)(xᵢ−x̄)'
//! ```
//!
//! which the bank evaluates with one fresh O(d³/3) Cholesky per candidate
//! dish instead of the legacy `m × (solve + rank-1 update + rank-1 downdate)`
//! cycle — the block stats `(m, x̄, S)` are computed **once per block**
//! ([`compute_block_stats`](DishBank::compute_block_stats)) and reused across
//! every candidate, and the multivariate-gamma difference collapses to `2m`
//! lookups in a lazily grown `ln Γ((ν₀+j)/2)` lattice table. This form is
//! mathematically identical to the chain rule but **not bit-identical** to
//! it; the golden traces were deliberately re-pinned when it landed (see
//! DESIGN.md, "Posterior bank layout and vectorized predictive" — numerics
//! note). Determinism is preserved: the result is a pure function of the
//! posterior state and the block, with fixed accumulation order everywhere.
//!
//! Slots are dense and reused through a free-list; the sampler's stable,
//! monotone `DishId`s live one layer up (`osr-hdp`) and map onto slots, so
//! retirement never moves another dish's data.

use osr_linalg::lanes::{axpy4, fused_solve_lower_cols, givens_downdate_col, givens_update_col};
use osr_linalg::{vector, Cholesky, Matrix};

use crate::niw::{factor_spd_with_jitter, NiwParams};
use crate::special::{ln_gamma, ln_multigamma};

/// Index of a dish's storage slot inside a [`DishBank`].
pub type Slot = usize;

/// Sufficient statistics of one observation block — everything the
/// batch-vs-one kernel needs that does not depend on the candidate dish:
/// the count `m`, the block mean `x̄`, and the centered scatter
/// `S = Σ (xᵢ−x̄)(xᵢ−x̄)'` (column-packed lower triangle).
///
/// Compute once per block with
/// [`DishBank::compute_block_stats`], then score the same block against any
/// number of candidate dishes with
/// [`DishBank::block_predictive_stats`] — the stats are shared, the O(d³)
/// per-candidate work is not recomputed per point.
#[derive(Debug, Clone, Default)]
pub struct BlockStats {
    /// Number of points in the block.
    pub m: usize,
    /// Block mean `x̄`, length `d`.
    pub xbar: Vec<f64>,
    /// Centered scatter `S`, column-packed lower triangle, length
    /// `d(d+1)/2`.
    pub scatter: Vec<f64>,
    /// Internal centering scratch, length `d`.
    dev: Vec<f64>,
}

impl BlockStats {
    /// Stats buffers sized for dimension `d` (avoids first-use growth).
    pub fn new(d: usize) -> Self {
        Self {
            m: 0,
            xbar: vec![0.0; d],
            scatter: vec![0.0; d * (d + 1) / 2],
            dev: vec![0.0; d],
        }
    }
}

/// Struct-of-arrays storage for every live dish's NIW posterior plus the
/// precomputed predictive constants. See the module docs for layout and the
/// per-kernel numerics contracts.
#[derive(Debug, Clone)]
pub struct DishBank {
    d: usize,
    /// `d (d + 1) / 2`: packed lower-triangle length per slot.
    tri: usize,

    // Prior template a fresh slot is stamped from, plus the prior's own
    // predictive constants (the base measure is scored like a dish that
    // absorbed nothing).
    prior_kappa: f64,
    prior_nu: f64,
    prior_mu: Vec<f64>,
    prior_chol: Vec<f64>,
    prior_psi: Vec<f64>,
    prior_log_det: f64,
    prior_df: f64,
    prior_half_df_dd: f64,
    prior_exp_ls: f64,
    prior_base: f64,

    // Per-slot posterior state (SoA).
    n: Vec<usize>,
    kappa: Vec<f64>,
    nu: Vec<f64>,
    /// Posterior means, `slots × d`.
    mu: Vec<f64>,
    /// Column-packed lower-triangular Cholesky factors of Ψₙ,
    /// `slots × tri` (column `j` at offset `j·d − j(j−1)/2`, diagonal
    /// first).
    chol: Vec<f64>,
    /// Column-packed lower triangles of Ψₙ itself, `slots × tri`, maintained
    /// by the same rank-1 steps as the factor. The block kernel reads Ψₙ
    /// directly when forming the rank-m updated scale.
    psi: Vec<f64>,

    // Per-slot predictive constants (refreshed on every add/remove).
    /// Student-t degrees of freedom `νₙ − d + 1`.
    df: Vec<f64>,
    /// `0.5 (df + d)` — the multiplier of the per-evaluation `ln` term.
    half_df_dd: Vec<f64>,
    /// `exp(ln c)` for the scale `c = (κ+1)/(κ df)`, dividing the quadratic
    /// form exactly as the legacy scaled evaluation does.
    exp_ls: Vec<f64>,
    /// The observation-independent prefix of the log-density.
    base: Vec<f64>,
    /// `ln |Ψₙ|` of the packed factor (legacy `Cholesky::log_det` order).
    log_det_chol: Vec<f64>,

    live: Vec<bool>,
    free: Vec<Slot>,

    /// Memoized count-dependent transcendentals, indexed by observation
    /// count `n` (see [`CountConstants`]).
    count_cache: Vec<CountConstants>,
    /// Lazily grown lattice table `T[idx] = ln Γ((ν₀ + idx − (d−1)) / 2)`,
    /// shared by every slot: νₙ walks `ν₀ + n` by exact `±1.0` steps, so the
    /// multivariate-gamma difference in the block ratio reduces to `2m`
    /// table lookups (see [`DishBank::block_predictive_stats`]).
    ln_gamma_nu: Vec<f64>,

    // Update/evaluation scratch (never observable; cloned banks just carry
    // capacity).
    scratch_dir: Vec<f64>,
    scratch_mu: Vec<f64>,
    scratch_w: Vec<f64>,
    /// Rank-m updated scale `Ψ_{n+m}` workspace for the block kernel.
    scratch_a: Vec<f64>,
    /// Factorization workspace for the rank-m attach/detach state updates.
    scratch_f: Vec<f64>,
    /// Block-stats workspace backing the allocation-free
    /// [`block_predictive`](DishBank::block_predictive) convenience wrapper.
    scratch_stats: BlockStats,
}

/// Memoized transcendentals of the predictive constants that depend only on
/// the observation count `n` (through `κₙ = κ₀ + n` and `νₙ = ν₀ + n`, both
/// accumulated by exact `± 1.0` steps).
///
/// The cache is *validated, not trusted*: each entry stores the exact
/// `(κ, ν)` bit patterns it was computed from, and [`DishBank`] recomputes on
/// any mismatch. A hit therefore returns values produced by the identical
/// operation sequence on identical input bits — bit-identity holds by
/// construction, and a hypothetical `+1.0`/`−1.0` round-trip that failed to
/// restore `κ` exactly would merely miss the cache, never corrupt a score.
#[derive(Debug, Clone, Copy)]
struct CountConstants {
    valid: bool,
    kappa_bits: u64,
    nu_bits: u64,
    /// `ln Γ((df + d) / 2)`.
    g1: f64,
    /// `ln Γ(df / 2)`.
    g2: f64,
    /// `ln(df π)`.
    ln_pi_df: f64,
    /// `ln c` for the scale `c = (κ+1)/(κ df)`.
    els: f64,
    /// `exp(ln c)`.
    exp_ls: f64,
}

impl CountConstants {
    const EMPTY: Self = Self {
        valid: false,
        kappa_bits: 0,
        nu_bits: 0,
        g1: 0.0,
        g2: 0.0,
        ln_pi_df: 0.0,
        els: 0.0,
        exp_ls: 0.0,
    };
}

impl DishBank {
    /// Empty bank over the base measure `params`.
    pub fn new(params: &NiwParams) -> Self {
        let d = params.dim();
        let dd = d as f64;
        let tri = d * (d + 1) / 2;
        let l = params.psi0_chol().factor_l();
        let mut prior_chol = Vec::with_capacity(tri);
        for j in 0..d {
            for i in j..d {
                prior_chol.push(l[(i, j)]);
            }
        }
        let psi0 = params.psi0();
        let mut prior_psi = Vec::with_capacity(tri);
        for j in 0..d {
            for i in j..d {
                prior_psi.push(psi0[(i, j)]);
            }
        }
        // Prior predictive constants, by the exact sequence of
        // `refresh_constants` on a fresh slot.
        let mut ln_sum = 0.0;
        let mut off = 0;
        for j in 0..d {
            ln_sum += prior_chol[off].ln();
            off += d - j;
        }
        let prior_log_det = ln_sum * 2.0;
        let df = params.nu0 - dd + 1.0;
        let scale = (params.kappa0 + 1.0) / (params.kappa0 * df);
        let els = scale.ln();
        let log_det = prior_log_det + dd * els;
        let prior_base = ln_gamma((df + dd) / 2.0)
            - ln_gamma(df / 2.0)
            - 0.5 * dd * (df * std::f64::consts::PI).ln()
            - 0.5 * log_det;
        Self {
            d,
            tri,
            prior_kappa: params.kappa0,
            prior_nu: params.nu0,
            prior_mu: params.mu0.clone(),
            prior_chol,
            prior_psi,
            prior_log_det,
            prior_df: df,
            prior_half_df_dd: 0.5 * (df + dd),
            prior_exp_ls: els.exp(),
            prior_base,
            n: Vec::new(),
            kappa: Vec::new(),
            nu: Vec::new(),
            mu: Vec::new(),
            chol: Vec::new(),
            psi: Vec::new(),
            df: Vec::new(),
            half_df_dd: Vec::new(),
            exp_ls: Vec::new(),
            base: Vec::new(),
            log_det_chol: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            count_cache: Vec::new(),
            ln_gamma_nu: Vec::new(),
            scratch_dir: vec![0.0; d],
            scratch_mu: vec![0.0; d],
            scratch_w: vec![0.0; d],
            scratch_a: vec![0.0; tri],
            scratch_f: vec![0.0; tri],
            scratch_stats: BlockStats::new(d),
        }
    }

    /// Feature dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of storage slots (live plus free).
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.live.len()
    }

    /// Number of live slots.
    pub fn n_live(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// True when `slot` currently holds a dish.
    #[inline]
    pub fn is_live(&self, slot: Slot) -> bool {
        self.live.get(slot).copied().unwrap_or(false)
    }

    /// Observations absorbed by the dish at `slot`.
    #[inline]
    pub fn count(&self, slot: Slot) -> usize {
        self.n[slot]
    }

    /// Posterior mean location μₙ of the dish at `slot`.
    #[inline]
    pub fn mean(&self, slot: Slot) -> &[f64] {
        &self.mu[slot * self.d..(slot + 1) * self.d]
    }

    /// Allocate a slot initialized to the prior posterior (reusing a freed
    /// slot when one exists) and return its index.
    pub fn alloc(&mut self) -> Slot {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.live.len();
                self.n.push(0);
                self.kappa.push(0.0);
                self.nu.push(0.0);
                self.mu.extend(std::iter::repeat_n(0.0, self.d));
                self.chol.extend(std::iter::repeat_n(0.0, self.tri));
                self.psi.extend(std::iter::repeat_n(0.0, self.tri));
                self.df.push(0.0);
                self.half_df_dd.push(0.0);
                self.exp_ls.push(0.0);
                self.base.push(0.0);
                self.log_det_chol.push(0.0);
                self.live.push(false);
                s
            }
        };
        self.n[slot] = 0;
        self.kappa[slot] = self.prior_kappa;
        self.nu[slot] = self.prior_nu;
        self.mu[slot * self.d..(slot + 1) * self.d].copy_from_slice(&self.prior_mu);
        self.chol[slot * self.tri..(slot + 1) * self.tri].copy_from_slice(&self.prior_chol);
        self.psi[slot * self.tri..(slot + 1) * self.tri].copy_from_slice(&self.prior_psi);
        self.live[slot] = true;
        self.refresh_constants(slot);
        slot
    }

    /// Release a slot back to the free-list.
    ///
    /// # Panics
    /// Panics when the slot is already free — that is a bookkeeping bug in
    /// the caller's id → slot registry.
    pub fn release(&mut self, slot: Slot) {
        assert!(self.live[slot], "DishBank::release: slot {slot} is not live");
        self.live[slot] = false;
        self.free.push(slot);
    }

    /// Append the bank's canonical state to a snapshot payload: layout,
    /// per-slot live flags with the live slots' posterior state (n, κₙ, νₙ,
    /// μₙ, packed factor, packed Ψₙ), and the free-list in its exact order
    /// (slot allocation pops the list back-to-front, so the order is part of
    /// the deterministic replay contract).
    ///
    /// Dead slots contribute only their flag — their stale array contents
    /// are unobservable (every `alloc` re-stamps the full slot), so omitting
    /// them makes the byte stream a pure function of observable state and
    /// save→load→re-save byte-identical. Derived constants (`df`, `base`,
    /// `exp_ls`, caches, scratch) are never written: [`Self::decode_from`]
    /// rebuilds them via the exact `refresh_constants` sequence.
    pub fn encode_into(&self, enc: &mut crate::snapshot::Enc) {
        enc.put_usize(self.d);
        enc.put_usize(self.live.len());
        for slot in 0..self.live.len() {
            enc.put_bool(self.live[slot]);
            if !self.live[slot] {
                continue;
            }
            enc.put_usize(self.n[slot]);
            enc.put_f64(self.kappa[slot]);
            enc.put_f64(self.nu[slot]);
            enc.put_f64_slice(&self.mu[slot * self.d..(slot + 1) * self.d]);
            enc.put_f64_slice(&self.chol[slot * self.tri..(slot + 1) * self.tri]);
            enc.put_f64_slice(&self.psi[slot * self.tri..(slot + 1) * self.tri]);
        }
        enc.put_usize(self.free.len());
        for &slot in &self.free {
            enc.put_usize(slot);
        }
    }

    /// Decode a bank written by [`Self::encode_into`], rebuilding the prior
    /// template and every derived constant from `params` and the decoded
    /// canonical state.
    ///
    /// # Errors
    /// [`crate::snapshot::SnapshotError::DimensionMismatch`] when the
    /// payload's dimension disagrees with `params`, and typed errors for
    /// truncation, non-finite posterior state, or an inconsistent free-list.
    pub fn decode_from(
        dec: &mut crate::snapshot::Dec<'_>,
        params: &NiwParams,
    ) -> crate::snapshot::SnapResult<Self> {
        use crate::snapshot::SnapshotError;
        let mut bank = Self::new(params);
        let d = dec.count(1, "DishBank dim")?;
        if d != params.dim() {
            return Err(SnapshotError::DimensionMismatch {
                expected: params.dim(),
                got: d,
            });
        }
        let tri = bank.tri;
        // Each slot contributes at least its one-byte live flag.
        let n_slots = dec.count(1, "DishBank slots")?;
        bank.n = vec![0; n_slots];
        bank.kappa = vec![0.0; n_slots];
        bank.nu = vec![0.0; n_slots];
        bank.mu = vec![0.0; n_slots * d];
        bank.chol = vec![0.0; n_slots * tri];
        bank.psi = vec![0.0; n_slots * tri];
        bank.df = vec![0.0; n_slots];
        bank.half_df_dd = vec![0.0; n_slots];
        bank.exp_ls = vec![0.0; n_slots];
        bank.base = vec![0.0; n_slots];
        bank.log_det_chol = vec![0.0; n_slots];
        bank.live = vec![false; n_slots];
        for slot in 0..n_slots {
            if !dec.bool("DishBank live flag")? {
                continue;
            }
            bank.live[slot] = true;
            bank.n[slot] = dec.usize("DishBank n")?;
            let kappa = dec.f64("DishBank kappa")?;
            let nu = dec.f64("DishBank nu")?;
            if !(kappa.is_finite() && kappa > 0.0 && nu.is_finite()) {
                return Err(SnapshotError::Malformed(format!(
                    "DishBank slot {slot}: kappa = {kappa}, nu = {nu} out of \
                     domain"
                )));
            }
            bank.kappa[slot] = kappa;
            bank.nu[slot] = nu;
            let mu = dec.f64_vec(d, "DishBank mu")?;
            bank.mu[slot * d..(slot + 1) * d].copy_from_slice(&mu);
            let chol = dec.f64_vec(tri, "DishBank chol")?;
            // Column-packed diagonals lead their columns; the predictive
            // constants take their lns, so they must be finite and positive.
            let mut off = 0;
            for j in 0..d {
                let diag = chol[off];
                if !(diag.is_finite() && diag > 0.0) {
                    return Err(SnapshotError::Malformed(format!(
                        "DishBank slot {slot}: factor diagonal [{j}] = {diag} \
                         is not finite and positive"
                    )));
                }
                off += d - j;
            }
            bank.chol[slot * tri..(slot + 1) * tri].copy_from_slice(&chol);
            let psi = dec.f64_vec(tri, "DishBank psi")?;
            bank.psi[slot * tri..(slot + 1) * tri].copy_from_slice(&psi);
        }
        let n_free = dec.count(8, "DishBank free-list")?;
        let n_dead = n_slots - bank.live.iter().filter(|&&l| l).count();
        if n_free != n_dead {
            return Err(SnapshotError::Malformed(format!(
                "DishBank free-list has {n_free} entries but {n_dead} slots \
                 are dead"
            )));
        }
        let mut seen = vec![false; n_slots];
        bank.free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let slot = dec.usize("DishBank free-list entry")?;
            if slot >= n_slots || bank.live[slot] || seen[slot] {
                return Err(SnapshotError::Malformed(format!(
                    "DishBank free-list entry {slot} is out of range, live, \
                     or duplicated"
                )));
            }
            seen[slot] = true;
            bank.free.push(slot);
        }
        for slot in 0..n_slots {
            if bank.live[slot] {
                bank.refresh_constants(slot);
            }
        }
        Ok(bank)
    }

    /// Absorb one observation into the dish at `slot` (O(d²) rank-1 update
    /// of both the factor and Ψ, plus an O(d) constants refresh). The factor
    /// path mirrors [`crate::NiwPosterior::add`] operation for operation.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add_obs(&mut self, slot: Slot, x: &[f64]) {
        let d = self.d;
        assert_eq!(x.len(), d, "DishBank::add_obs: dimension mismatch");
        let kappa = self.kappa[slot];
        let kappa_new = kappa + 1.0;
        let coef = (kappa / kappa_new).sqrt();
        let mu = &self.mu[slot * d..(slot + 1) * d];
        for ((dst, &xi), &m) in self.scratch_dir.iter_mut().zip(x).zip(mu) {
            *dst = xi - m;
        }
        vector::scale(coef, &mut self.scratch_dir);
        // Ψ ← Ψ + w w' first — the Givens update below consumes `w`.
        packed_syr(&mut self.psi[slot * self.tri..(slot + 1) * self.tri], d, 1.0, &self.scratch_dir);
        // Rank-1 update of the packed factor; scratch_dir doubles as the
        // working vector `w` (the dense implementation copies it first —
        // the arithmetic on each element is identical).
        packed_rank1_update(&mut self.chol[slot * self.tri..(slot + 1) * self.tri], d, &mut self.scratch_dir);
        let mu = &mut self.mu[slot * d..(slot + 1) * d];
        for (m, &xi) in mu.iter_mut().zip(x) {
            *m = (kappa * *m + xi) / kappa_new;
        }
        self.kappa[slot] = kappa_new;
        self.nu[slot] += 1.0;
        self.n[slot] += 1;
        self.refresh_constants(slot);
    }

    /// Remove one previously absorbed observation (O(d²)), mirroring
    /// [`crate::NiwPosterior::remove`] on the factor — including the dense
    /// downdate-rescue and divergence-poison fallback paths — and keeping
    /// the Ψ triangle in step (after a rescue, Ψ is re-derived from the
    /// repaired factor).
    ///
    /// # Panics
    /// Panics on dimension mismatch or when `count(slot) == 0`.
    pub fn remove_obs(&mut self, slot: Slot, x: &[f64]) {
        let d = self.d;
        assert_eq!(x.len(), d, "DishBank::remove_obs: dimension mismatch");
        assert!(self.n[slot] > 0, "DishBank::remove_obs: no observations to remove");
        #[cfg(feature = "fault-inject")]
        if crate::faults::hit(crate::faults::sites::CHOLESKY)
            == Some(crate::faults::Fault::CholeskyFail)
        {
            crate::divergence::poison("injected: Ψ downdate not SPD past the jitter ladder");
        }
        let kappa = self.kappa[slot];
        let kappa_new = kappa - 1.0;
        // New mean first: μ' = (κ μ − x) / κ'.
        {
            let mu = &self.mu[slot * d..(slot + 1) * d];
            for ((m_new, &m), &xi) in self.scratch_mu.iter_mut().zip(mu).zip(x) {
                *m_new = (kappa * m - xi) / kappa_new;
            }
        }
        // Downdate direction: sqrt(κ'/κ) (x − μ').
        let coef = (kappa_new / kappa).sqrt();
        for ((dst, &xi), &m_new) in self.scratch_dir.iter_mut().zip(x).zip(&self.scratch_mu) {
            *dst = xi - m_new;
        }
        vector::scale(coef, &mut self.scratch_dir);
        // The working vector is a copy so the direction survives a failed
        // downdate for the dense rescue below (as in the dense API, which
        // copies internally).
        self.scratch_w.copy_from_slice(&self.scratch_dir);
        let packed = &mut self.chol[slot * self.tri..(slot + 1) * self.tri];
        let psi_packed = &mut self.psi[slot * self.tri..(slot + 1) * self.tri];
        if packed_rank1_downdate(packed, d, &mut self.scratch_w).is_ok() {
            packed_syr(psi_packed, d, -1.0, &self.scratch_dir);
        } else {
            // Round-off rescue, operation-for-operation the legacy path:
            // re-enter the dense API on the (possibly partially downdated)
            // factor, form Ψ − dir dir', and refactor with the jitter ladder.
            let dense = Cholesky::from_factor(unpack_lower(packed, d));
            let mut psi = dense.reconstruct();
            psi.syr(-1.0, &self.scratch_dir);
            psi.symmetrize();
            match factor_spd_with_jitter(&psi) {
                Ok((chol, _)) => pack_lower(chol.factor_l(), packed),
                Err(_) => {
                    // Ψ' = Ψ − dir dir' is SPD in exact arithmetic, so only
                    // non-finite input can land here. Poison the divergence
                    // flag (the serving watchdog aborts the sweep and
                    // retries/degrades) and install a structurally valid
                    // stand-in factor so unwinding bookkeeping stays safe.
                    crate::divergence::poison("Ψ downdate not SPD past the jitter ladder");
                    packed.fill(0.0);
                    let mut off = 0;
                    for i in 0..d {
                        packed[off + i] = 1.0;
                        off += i + 1;
                    }
                }
            }
            // Whatever factor the rescue settled on is now the posterior;
            // re-derive the Ψ triangle from it so the block kernel and the
            // scoring kernels agree on the same repaired state.
            packed_psi_from_factor(packed, d, psi_packed);
        }
        self.mu[slot * d..(slot + 1) * d].copy_from_slice(&self.scratch_mu);
        self.kappa[slot] = kappa_new;
        self.nu[slot] -= 1.0;
        self.n[slot] -= 1;
        self.refresh_constants(slot);
    }

    /// Recompute the cached predictive constants of `slot` from its
    /// posterior state, with the exact operation sequence of the legacy
    /// per-evaluation derivation (see the module docs).
    fn refresh_constants(&mut self, slot: Slot) {
        let d = self.d;
        let dd = d as f64;
        // Legacy `Cholesky::log_det`: sum of diagonal lns (ascending, the
        // column-packed diagonals lead their columns), then × 2.
        let packed = &self.chol[slot * self.tri..(slot + 1) * self.tri];
        let mut ln_sum = 0.0;
        let mut off = 0;
        for j in 0..d {
            ln_sum += packed[off].ln();
            off += d - j;
        }
        let log_det_psi = ln_sum * 2.0;
        self.log_det_chol[slot] = log_det_psi;

        // The transcendentals depend only on (κ, ν), which walk the count
        // lattice — memoize them per count, validated against the exact
        // input bits so a hit is bit-identical to recomputation.
        let kappa = self.kappa[slot];
        let nu = self.nu[slot];
        let n = self.n[slot];
        if self.count_cache.len() <= n {
            self.count_cache.resize(n + 1, CountConstants::EMPTY);
        }
        let entry = &mut self.count_cache[n];
        if !entry.valid
            || entry.kappa_bits != kappa.to_bits()
            || entry.nu_bits != nu.to_bits()
        {
            let df = nu - dd + 1.0;
            let scale = (kappa + 1.0) / (kappa * df);
            let els = scale.ln();
            *entry = CountConstants {
                valid: true,
                kappa_bits: kappa.to_bits(),
                nu_bits: nu.to_bits(),
                g1: ln_gamma((df + dd) / 2.0),
                g2: ln_gamma(df / 2.0),
                ln_pi_df: (df * std::f64::consts::PI).ln(),
                els,
                exp_ls: els.exp(),
            };
        }
        let consts = self.count_cache[n];

        let df = nu - dd + 1.0;
        let log_det = log_det_psi + dd * consts.els;
        self.df[slot] = df;
        self.half_df_dd[slot] = 0.5 * (df + dd);
        self.exp_ls[slot] = consts.exp_ls;
        self.base[slot] =
            consts.g1 - consts.g2 - 0.5 * dd * consts.ln_pi_df - 0.5 * log_det;
    }

    /// Grow the shared `ln Γ((ν₀ + idx − (d−1)) / 2)` lattice table to at
    /// least `len` entries. Entries are appended in index order, so the
    /// table contents are a pure function of `(ν₀, d, len)`.
    fn ensure_ln_gamma_nu(&mut self, len: usize) {
        while self.ln_gamma_nu.len() < len {
            let j = self.ln_gamma_nu.len() as f64 - (self.d as f64 - 1.0);
            self.ln_gamma_nu.push(ln_gamma((self.prior_nu + j) / 2.0));
        }
    }

    /// **Hot kernel 1 — one observation vs. all dishes** (the collective
    /// decision scoring pass). Appends to `out` one predictive log-density
    /// per entry of `slots`, in order. `scratch` is the caller's solve
    /// buffer of length `slots.len() × d` — one lane per dish — so repeated
    /// calls (one per seating decision) allocate nothing.
    ///
    /// The forward substitutions of all dishes advance **column by column
    /// together**: a triangular solve is a serial chain of divisions, but
    /// the chains of different dishes are independent, so interleaving them
    /// lets the CPU overlap their latency. Per dish the operation sequence
    /// is exactly [`osr_linalg::lanes::fused_solve_lower_cols`], so the
    /// result stays **bit-identical** to calling the legacy
    /// [`crate::NiwPosterior::predictive_logpdf`] on each slot's posterior.
    ///
    /// # Panics
    /// Panics when `x` does not have length `d` or `scratch` does not have
    /// length `slots.len() × d`.
    pub fn score_all(&self, slots: &[Slot], x: &[f64], scratch: &mut [f64], out: &mut Vec<f64>) {
        let started = std::time::Instant::now();
        let d = self.d;
        assert_eq!(x.len(), d, "DishBank::score_all: dimension mismatch");
        assert_eq!(
            scratch.len(),
            slots.len() * d,
            "DishBank::score_all: scratch must hold slots.len() × d lanes"
        );
        out.reserve(slots.len());
        for (lane, &slot) in scratch.chunks_exact_mut(d).zip(slots) {
            let mu = &self.mu[slot * d..(slot + 1) * d];
            for ((yi, &xi), &mi) in lane.iter_mut().zip(x).zip(mu) {
                *yi = xi - mi;
            }
        }
        let mut off = 0;
        for j in 0..d {
            let mut lanes = scratch.chunks_exact_mut(d);
            for (lane, &slot) in lanes.by_ref().zip(slots) {
                let col = &self.chol[slot * self.tri + off..slot * self.tri + off + (d - j)];
                let (head, tail) = lane.split_at_mut(j + 1);
                let yj = head[j] / col[0];
                head[j] = yj;
                axpy4(-yj, &col[1..], tail);
            }
            off += d - j;
        }
        for (lane, &slot) in scratch.chunks_exact(d).zip(slots) {
            let maha = vector::dot(lane, lane) / self.exp_ls[slot];
            let df = self.df[slot];
            out.push(self.base[slot] - self.half_df_dd[slot] * (1.0 + maha / df).ln());
        }
        crate::counters::record_predictive_one_vs_all(
            slots.len() as u64,
            started.elapsed().as_nanos() as u64,
        );
    }

    /// Predictive log-density of `x` under the **base measure** (a dish that
    /// absorbed nothing) — bit-identical to
    /// [`crate::NiwPosterior::predictive_logpdf`] on a fresh prior
    /// posterior, evaluated from constants precomputed at construction.
    /// `scratch` is the caller's `d`-length solve buffer.
    ///
    /// # Panics
    /// Panics when `x` or `scratch` do not have length `d`.
    pub fn score_prior(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        let started = std::time::Instant::now();
        assert_eq!(x.len(), self.d, "DishBank::score_prior: dimension mismatch");
        assert_eq!(scratch.len(), self.d, "DishBank::score_prior: scratch length mismatch");
        fused_solve_lower_cols(&self.prior_chol, x, &self.prior_mu, scratch);
        let maha = vector::dot(scratch, scratch) / self.prior_exp_ls;
        let lp = self.prior_base - self.prior_half_df_dd * (1.0 + maha / self.prior_df).ln();
        crate::counters::record_predictive_one_vs_all(1, started.elapsed().as_nanos() as u64);
        lp
    }

    /// Reduce a block of observations to the dish-independent sufficient
    /// statistics `(m, x̄, S)` the batch-vs-one kernel consumes. O(m·d²),
    /// paid **once per block** no matter how many candidate dishes are then
    /// scored against it. Reuses the buffers inside `stats` (growing them on
    /// first use).
    ///
    /// # Panics
    /// Panics when any point's dimension mismatches the bank's.
    pub fn compute_block_stats(&self, points: &[&[f64]], stats: &mut BlockStats) {
        let d = self.d;
        stats.m = points.len();
        stats.xbar.clear();
        stats.xbar.resize(d, 0.0);
        stats.scatter.clear();
        stats.scatter.resize(self.tri, 0.0);
        stats.dev.clear();
        stats.dev.resize(d, 0.0);
        if points.is_empty() {
            return;
        }
        for p in points {
            assert_eq!(p.len(), d, "DishBank::compute_block_stats: dimension mismatch");
            for (acc, &xi) in stats.xbar.iter_mut().zip(*p) {
                *acc += xi;
            }
        }
        let mf = points.len() as f64;
        for v in stats.xbar.iter_mut() {
            *v /= mf;
        }
        for p in points {
            for ((dev, &xi), &xb) in stats.dev.iter_mut().zip(*p).zip(&stats.xbar) {
                *dev = xi - xb;
            }
            packed_syr(&mut stats.scatter, d, 1.0, &stats.dev);
        }
    }

    /// **Hot kernel 2 — a batch of observations vs. one dish**: the joint
    /// predictive of the block summarized by `stats` under the dish at
    /// `slot`, evaluated as a closed-form marginal-likelihood ratio (one
    /// O(d³/3) Cholesky of the rank-m updated scale — see the module docs
    /// for the formula and the numerics note). Leaves the slot untouched.
    ///
    /// Returns `-inf` (and poisons the divergence flag) when the updated
    /// scale fails to factor, which only non-finite posterior state can
    /// cause.
    pub fn block_predictive_stats(&mut self, slot: Slot, stats: &BlockStats) -> f64 {
        let started = std::time::Instant::now();
        if stats.m == 0 {
            crate::counters::record_predictive_batch_vs_one(
                0,
                started.elapsed().as_nanos() as u64,
            );
            return 0.0;
        }
        let d = self.d;
        let n = self.n[slot];
        self.ensure_ln_gamma_nu(n + stats.m + d);
        let lp = block_ratio(
            d,
            &self.psi[slot * self.tri..(slot + 1) * self.tri],
            &self.mu[slot * d..(slot + 1) * d],
            self.kappa[slot],
            self.nu[slot],
            n,
            self.log_det_chol[slot],
            stats,
            &self.ln_gamma_nu,
            &mut self.scratch_dir,
            &mut self.scratch_a,
        );
        crate::counters::record_predictive_batch_vs_one(
            stats.m as u64,
            started.elapsed().as_nanos() as u64,
        );
        lp
    }

    /// The batch-vs-one kernel against the **base measure** (Eq. 8's
    /// new-dish factor `∏ p(x)`): identical to
    /// [`block_predictive_stats`](Self::block_predictive_stats) on a dish
    /// that absorbed nothing, without materializing one.
    pub fn block_predictive_prior(&mut self, stats: &BlockStats) -> f64 {
        let started = std::time::Instant::now();
        if stats.m == 0 {
            crate::counters::record_predictive_batch_vs_one(
                0,
                started.elapsed().as_nanos() as u64,
            );
            return 0.0;
        }
        self.ensure_ln_gamma_nu(stats.m + self.d);
        let lp = block_ratio(
            self.d,
            &self.prior_psi,
            &self.prior_mu,
            self.prior_kappa,
            self.prior_nu,
            0,
            self.prior_log_det,
            stats,
            &self.ln_gamma_nu,
            &mut self.scratch_dir,
            &mut self.scratch_a,
        );
        crate::counters::record_predictive_batch_vs_one(
            stats.m as u64,
            started.elapsed().as_nanos() as u64,
        );
        lp
    }

    /// Absorb a whole block into the dish at `slot` in **one rank-m step**:
    /// `Ψ ← Ψ + S + κₙm/(κₙ+m)·δδ'` followed by a single fresh O(d³/3)
    /// factorization, instead of `m` rank-1 Givens walks. O(d³/3 + d²)
    /// given precomputed [`BlockStats`] — the engine's table-dish move
    /// computes them once and shares them between scoring and state update.
    ///
    /// Falls back to per-point [`add_obs`](Self::add_obs) (which carries the
    /// full rescue machinery) when the updated scale fails to factor, which
    /// only non-finite state can cause; `points` must be the block `stats`
    /// was computed from.
    pub fn attach_block(&mut self, slot: Slot, stats: &BlockStats, points: &[&[f64]]) {
        if stats.m == 0 {
            return;
        }
        let d = self.d;
        let mf = stats.m as f64;
        let kappa = self.kappa[slot];
        let kappa_new = kappa + mf;
        {
            let mu = &self.mu[slot * d..(slot + 1) * d];
            for ((dst, &xb), &m) in self.scratch_dir.iter_mut().zip(&stats.xbar).zip(mu) {
                *dst = xb - m;
            }
        }
        let c = kappa * mf / kappa_new;
        build_rank_m_scale(
            d,
            &self.psi[slot * self.tri..(slot + 1) * self.tri],
            &stats.scatter,
            1.0,
            c,
            &self.scratch_dir,
            &mut self.scratch_a,
        );
        self.scratch_f.copy_from_slice(&self.scratch_a);
        if packed_cholesky_log_det(&mut self.scratch_f, d).is_none() {
            for p in points {
                self.add_obs(slot, p);
            }
            return;
        }
        self.psi[slot * self.tri..(slot + 1) * self.tri].copy_from_slice(&self.scratch_a);
        self.chol[slot * self.tri..(slot + 1) * self.tri].copy_from_slice(&self.scratch_f);
        let mu = &mut self.mu[slot * d..(slot + 1) * d];
        for (m, &xb) in mu.iter_mut().zip(&stats.xbar) {
            *m = (kappa * *m + mf * xb) / kappa_new;
        }
        self.kappa[slot] = kappa_new;
        self.nu[slot] += mf;
        self.n[slot] += stats.m;
        self.refresh_constants(slot);
    }

    /// Remove a whole previously absorbed block from the dish at `slot` in
    /// one rank-m step — the exact inverse of
    /// [`attach_block`](Self::attach_block): recover `μₙ`, subtract
    /// `S + κₙm/(κₙ+m)·δδ'` from Ψ, refactor once. Falls back to per-point
    /// [`remove_obs`](Self::remove_obs) (jitter rescue, divergence poison)
    /// when the downdated scale is not SPD.
    ///
    /// # Panics
    /// Panics when the slot holds fewer than `stats.m` observations.
    pub fn detach_block(&mut self, slot: Slot, stats: &BlockStats, points: &[&[f64]]) {
        if stats.m == 0 {
            return;
        }
        assert!(
            self.n[slot] >= stats.m,
            "DishBank::detach_block: removing more observations than absorbed"
        );
        let d = self.d;
        let mf = stats.m as f64;
        let kappa = self.kappa[slot];
        let kappa_new = kappa - mf;
        // Pre-block mean μₙ, then δ = x̄ − μₙ against it.
        {
            let mu = &self.mu[slot * d..(slot + 1) * d];
            for ((m_old, &m), &xb) in self.scratch_mu.iter_mut().zip(mu).zip(&stats.xbar) {
                *m_old = (kappa * m - mf * xb) / kappa_new;
            }
        }
        for ((dst, &xb), &m_old) in self.scratch_dir.iter_mut().zip(&stats.xbar).zip(&self.scratch_mu)
        {
            *dst = xb - m_old;
        }
        let c = kappa_new * mf / kappa;
        build_rank_m_scale(
            d,
            &self.psi[slot * self.tri..(slot + 1) * self.tri],
            &stats.scatter,
            -1.0,
            -c,
            &self.scratch_dir,
            &mut self.scratch_a,
        );
        self.scratch_f.copy_from_slice(&self.scratch_a);
        if packed_cholesky_log_det(&mut self.scratch_f, d).is_none() {
            // Round-off (or hostile input) pushed the downdate outside SPD:
            // take the per-point path, which rescues or poisons per policy.
            for p in points {
                self.remove_obs(slot, p);
            }
            return;
        }
        self.psi[slot * self.tri..(slot + 1) * self.tri].copy_from_slice(&self.scratch_a);
        self.chol[slot * self.tri..(slot + 1) * self.tri].copy_from_slice(&self.scratch_f);
        self.mu[slot * d..(slot + 1) * d].copy_from_slice(&self.scratch_mu);
        self.kappa[slot] = kappa_new;
        self.nu[slot] -= mf;
        self.n[slot] -= stats.m;
        self.refresh_constants(slot);
    }

    /// Convenience wrapper chaining
    /// [`compute_block_stats`](Self::compute_block_stats) into
    /// [`block_predictive_stats`](Self::block_predictive_stats) for a
    /// single `(block, dish)` pair, running on bank-owned stats scratch.
    /// Callers scoring one block against many dishes should compute the
    /// stats once themselves instead.
    pub fn block_predictive(&mut self, slot: Slot, points: &[&[f64]]) -> f64 {
        let mut stats = std::mem::take(&mut self.scratch_stats);
        self.compute_block_stats(points, &mut stats);
        let lp = self.block_predictive_stats(slot, &stats);
        self.scratch_stats = stats;
        lp
    }

    /// Predictive log-density of `x` under the single dish at `slot`
    /// (allocating convenience wrapper over the one-vs-all kernel, for
    /// accessors and audits off the hot path).
    pub fn predictive_one(&self, slot: Slot, x: &[f64]) -> f64 {
        let mut scratch = vec![0.0; self.d];
        let mut out = Vec::with_capacity(1);
        self.score_all(&[slot], x, &mut scratch, &mut out);
        out[0]
    }

    /// Closed-form log marginal likelihood of the `n` points absorbed by
    /// `slot` under the prior `params` — the banked
    /// [`crate::NiwPosterior::log_marginal`].
    pub fn log_marginal(&self, slot: Slot, params: &NiwParams) -> f64 {
        let d = self.d;
        let dd = d as f64;
        let n = self.n[slot] as f64;
        -(n * dd / 2.0) * std::f64::consts::PI.ln()
            + ln_multigamma(d, self.nu[slot] / 2.0)
            - ln_multigamma(d, params.nu0 / 2.0)
            + (params.nu0 / 2.0) * params.log_det_psi0()
            - (self.nu[slot] / 2.0) * self.log_det_chol[slot]
            + (dd / 2.0) * (params.kappa0.ln() - self.kappa[slot].ln())
    }
}

/// The marginal-likelihood-ratio block predictive (module docs formula) of
/// the block `stats` under the posterior `(Ψₙ, μₙ, κₙ, νₙ, n)`. `delta` and
/// `a` are `d`- and `tri`-length scratch; `lngamma` is the ν-lattice table
/// (offset `d−1`), already grown to cover `n + m + d` entries.
#[allow(clippy::too_many_arguments)]
fn block_ratio(
    d: usize,
    psi: &[f64],
    mu: &[f64],
    kappa_n: f64,
    nu_n: f64,
    n: usize,
    log_det_n: f64,
    stats: &BlockStats,
    lngamma: &[f64],
    delta: &mut [f64],
    a: &mut [f64],
) -> f64 {
    let dd = d as f64;
    let mf = stats.m as f64;
    for ((dst, &xb), &m) in delta.iter_mut().zip(&stats.xbar).zip(mu) {
        *dst = xb - m;
    }
    let c = kappa_n * mf / (kappa_n + mf);
    // Ψ_{n+m} = Ψₙ + S + c δδ' (column-packed lower triangle).
    build_rank_m_scale(d, psi, &stats.scatter, 1.0, c, delta, a);
    let Some(log_det_a) = packed_cholesky_log_det(a, d) else {
        crate::divergence::poison("block predictive: rank-m updated scale not SPD");
        return f64::NEG_INFINITY;
    };
    // ln Γ_d(ν_{n+m}/2) − ln Γ_d(ν_n/2): the multivariate gammas share all
    // but m terms on each side of the ν lattice, so the difference is 2m
    // table reads (ascending, fixed accumulation order).
    let off_t = d - 1;
    let mut g_top = 0.0;
    let mut g_bot = 0.0;
    for j in (n + 1)..=(n + stats.m) {
        g_top += lngamma[j + off_t];
        g_bot += lngamma[j - 1];
    }
    -(mf * dd / 2.0) * std::f64::consts::PI.ln()
        + (g_top - g_bot)
        + 0.5 * nu_n * log_det_n
        - 0.5 * (nu_n + mf) * log_det_a
        + 0.5 * dd * (kappa_n.ln() - (kappa_n + mf).ln())
}

/// Build the rank-m-updated scale `A = Ψ + sign·S + c·δδ'` into `a`
/// (column-packed lower triangles throughout). `sign` is `±1.0` and `c`
/// carries its own sign, so the same loop serves attach (+) and detach (−).
fn build_rank_m_scale(
    d: usize,
    psi: &[f64],
    scatter: &[f64],
    sign: f64,
    c: f64,
    delta: &[f64],
    a: &mut [f64],
) {
    let mut off = 0;
    for j in 0..d {
        let cdj = c * delta[j];
        let (pj, sj) = (&psi[off..off + (d - j)], &scatter[off..off + (d - j)]);
        let out = &mut a[off..off + (d - j)];
        for (i, o) in out.iter_mut().enumerate() {
            *o = pj[i] + sign * sj[i] + cdj * delta[j + i];
        }
        off += d - j;
    }
}

/// In-place left-looking Cholesky of a column-packed SPD lower triangle;
/// returns `ln |A|` (2 × the ascending sum of diagonal lns) or `None` when a
/// pivot is non-positive or non-finite. O(d³/3); the per-column inner axpy
/// runs on contiguous column tails.
fn packed_cholesky_log_det(a: &mut [f64], d: usize) -> Option<f64> {
    let mut off_j = 0;
    for j in 0..d {
        let mut off_k = 0;
        for k in 0..j {
            let ljk = a[off_k + (j - k)];
            let (head, tail) = a.split_at_mut(off_j);
            let colk = &head[off_k + (j - k)..off_k + (d - k)];
            let colj = &mut tail[..d - j];
            axpy4(-ljk, colk, colj);
            off_k += d - k;
        }
        let diag = a[off_j];
        if !(diag > 0.0) || !diag.is_finite() {
            return None;
        }
        let l = diag.sqrt();
        a[off_j] = l;
        for v in a[off_j + 1..off_j + (d - j)].iter_mut() {
            *v /= l;
        }
        off_j += d - j;
    }
    let mut ln_sum = 0.0;
    let mut off = 0;
    for j in 0..d {
        ln_sum += a[off].ln();
        off += d - j;
    }
    Some(ln_sum * 2.0)
}

/// Symmetric rank-1 update `A ← A + α w w'` of a column-packed lower
/// triangle. Each column's segment is contiguous, so the inner loop is the
/// elementwise [`osr_linalg::lanes::axpy4`].
fn packed_syr(packed: &mut [f64], d: usize, alpha: f64, w: &[f64]) {
    let mut off = 0;
    for j in 0..d {
        let aw = alpha * w[j];
        axpy4(aw, &w[j..], &mut packed[off..off + (d - j)]);
        off += d - j;
    }
}

/// Recompute the column-packed lower triangle of `Ψ = L L'` from a
/// column-packed factor (used after a downdate rescue replaced the factor
/// wholesale).
fn packed_psi_from_factor(l: &[f64], d: usize, psi: &mut [f64]) {
    // Ψ[i,j] = Σ_{k ≤ j} L[i,k] · L[j,k] for i ≥ j.
    let mut off_j = 0;
    for j in 0..d {
        for i in j..d {
            let mut acc = 0.0;
            let mut off_k = 0;
            for k in 0..=j {
                acc += l[off_k + (i - k)] * l[off_k + (j - k)];
                off_k += d - k;
            }
            psi[off_j + (i - j)] = acc;
        }
        off_j += d - j;
    }
}

/// Rank-1 update `A ← A + w w'` of a column-packed lower Cholesky factor,
/// the Givens recurrence of `Cholesky::update` on column storage (`w` is
/// consumed). Each column's below-diagonal tail is contiguous, so the
/// per-element work runs through the vectorizable
/// [`osr_linalg::lanes::givens_update_col`] lane helper.
fn packed_rank1_update(packed: &mut [f64], d: usize, w: &mut [f64]) {
    let mut off = 0;
    for j in 0..d {
        let col = &mut packed[off..off + (d - j)];
        let ljj = col[0];
        let wj = w[j];
        let r = (ljj * ljj + wj * wj).sqrt();
        let c = r / ljj;
        let s = wj / ljj;
        col[0] = r;
        givens_update_col(&mut col[1..], &mut w[j + 1..], c, s);
        off += d - j;
    }
}

/// Rank-1 downdate `A ← A − w w'`; fails (leaving the factor partially
/// mutated, exactly like the dense implementation) when the result would
/// not be SPD.
fn packed_rank1_downdate(packed: &mut [f64], d: usize, w: &mut [f64]) -> Result<(), ()> {
    let mut off = 0;
    for j in 0..d {
        let col = &mut packed[off..off + (d - j)];
        let ljj = col[0];
        let wj = w[j];
        let dsq = ljj * ljj - wj * wj;
        if !(dsq > 0.0) || !dsq.is_finite() {
            return Err(());
        }
        let r = dsq.sqrt();
        let c = r / ljj;
        let s = wj / ljj;
        col[0] = r;
        givens_downdate_col(&mut col[1..], &mut w[j + 1..], c, s);
        off += d - j;
    }
    Ok(())
}

/// Expand a column-packed lower factor to a dense `Matrix` (zeros above the
/// diagonal).
fn unpack_lower(packed: &[f64], d: usize) -> Matrix {
    let mut l = Matrix::zeros(d, d);
    let mut off = 0;
    for j in 0..d {
        for i in j..d {
            l[(i, j)] = packed[off + (i - j)];
        }
        off += d - j;
    }
    l
}

/// Pack a dense lower-triangular factor into `packed`.
fn pack_lower(l: &Matrix, packed: &mut [f64]) {
    let d = l.rows();
    let mut off = 0;
    for j in 0..d {
        for i in j..d {
            packed[off + (i - j)] = l[(i, j)];
        }
        off += d - j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NiwPosterior;

    fn params2() -> NiwParams {
        NiwParams::new(
            vec![0.0, 0.0],
            1.0,
            4.0,
            Matrix::from_rows(&[vec![1.0, 0.2], vec![0.2, 1.5]]),
        )
        .unwrap()
    }

    fn pts() -> Vec<Vec<f64>> {
        vec![
            vec![0.5, -0.3],
            vec![1.2, 0.8],
            vec![-0.7, 0.1],
            vec![0.3, 1.9],
            vec![-1.5, -0.9],
        ]
    }

    #[test]
    fn bank_codec_roundtrip_is_bit_identical_and_normalizes_dead_slots() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let data = pts();
        // Three slots: slot 0 with 2 points, slot 1 released (dead, stale
        // contents), slot 2 with 3 points. The free-list holds slot 1.
        let s0 = bank.alloc();
        let s1 = bank.alloc();
        let s2 = bank.alloc();
        bank.add_obs(s0, &data[0]);
        bank.add_obs(s0, &data[1]);
        bank.add_obs(s1, &data[2]);
        bank.release(s1);
        for x in &data[2..] {
            bank.add_obs(s2, x);
        }

        let mut enc = crate::snapshot::Enc::new();
        bank.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        let mut dec = crate::snapshot::Dec::new(&bytes);
        let mut bank2 = DishBank::decode_from(&mut dec, &p).unwrap();
        dec.finish("bank").unwrap();

        assert_eq!(bank2.n_slots(), 3);
        assert_eq!(bank2.n_live(), 2);
        assert!(!bank2.is_live(s1));
        // Predictives over the decoded bank are bit-identical.
        let probe = [0.4, -0.2];
        for slot in [s0, s2] {
            assert_eq!(
                bank.predictive_one(slot, &probe).to_bits(),
                bank2.predictive_one(slot, &probe).to_bits()
            );
        }
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        assert_eq!(
            bank.block_predictive(s0, &refs).to_bits(),
            bank2.block_predictive(s0, &refs).to_bits()
        );

        // Re-encode is byte-identical even though the source bank carried
        // stale bits in the dead slot and the decoded one carries zeros.
        let mut enc2 = crate::snapshot::Enc::new();
        bank2.encode_into(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes());

        // Allocation replays deterministically: both banks hand out the
        // freed slot next.
        assert_eq!(bank.alloc(), bank2.alloc());
    }

    #[test]
    fn bank_codec_rejects_dimension_mismatch_and_bad_free_list() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let s = bank.alloc();
        bank.add_obs(s, &pts()[0]);
        let mut enc = crate::snapshot::Enc::new();
        bank.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        // Dimension disagreement with the caller's prior is typed.
        let p3 = NiwParams::new(vec![0.0; 3], 1.0, 5.0, Matrix::identity(3)).unwrap();
        let mut dec = crate::snapshot::Dec::new(&bytes);
        assert!(matches!(
            DishBank::decode_from(&mut dec, &p3),
            Err(crate::snapshot::SnapshotError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));

        // A free-list pointing at a live slot is rejected, not trusted.
        let mut tampered = bytes.clone();
        let len = tampered.len();
        // Overwrite the trailing free-list count (0) with 1 plus a bogus
        // entry naming the live slot 0.
        tampered[len - 8..].copy_from_slice(&1u64.to_le_bytes());
        tampered.extend_from_slice(&0u64.to_le_bytes());
        let mut dec = crate::snapshot::Dec::new(&tampered);
        assert!(matches!(
            DishBank::decode_from(&mut dec, &p),
            Err(crate::snapshot::SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn fresh_slot_scores_bit_identically_to_the_prior_posterior() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        let legacy = NiwPosterior::from_prior(&p);
        for x in pts() {
            assert_eq!(
                bank.predictive_one(slot, &x).to_bits(),
                legacy.predictive_logpdf(&x).to_bits()
            );
        }
    }

    #[test]
    fn score_prior_is_bit_identical_to_the_legacy_prior_predictive() {
        let p = params2();
        let bank = DishBank::new(&p);
        let legacy = NiwPosterior::from_prior(&p);
        let mut scratch = vec![0.0; 2];
        for x in pts() {
            assert_eq!(
                bank.score_prior(&x, &mut scratch).to_bits(),
                legacy.predictive_logpdf(&x).to_bits()
            );
        }
    }

    #[test]
    fn add_remove_tracks_legacy_bit_for_bit() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        let mut legacy = NiwPosterior::from_prior(&p);
        let data = pts();
        for x in &data {
            bank.add_obs(slot, x);
            legacy.add(x);
        }
        let probe = [0.4, -0.2];
        assert_eq!(
            bank.predictive_one(slot, &probe).to_bits(),
            legacy.predictive_logpdf(&probe).to_bits()
        );
        assert_eq!(bank.log_marginal(slot, &p).to_bits(), legacy.log_marginal(&p).to_bits());
        for (a, b) in bank.mean(slot).iter().zip(legacy.mean()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for x in data.iter().rev() {
            bank.remove_obs(slot, x);
            legacy.remove(x);
        }
        assert_eq!(bank.count(slot), 0);
        assert_eq!(
            bank.predictive_one(slot, &probe).to_bits(),
            legacy.predictive_logpdf(&probe).to_bits()
        );
    }

    #[test]
    fn block_predictive_matches_the_chain_rule_closely_and_preserves_state() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        let mut legacy = NiwPosterior::from_prior(&p);
        bank.add_obs(slot, &[3.0, 3.0]);
        legacy.add(&[3.0, 3.0]);
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let banked = bank.block_predictive(slot, &refs);
        // The chain rule runs on a clone: its unwind is not bit-exact, while
        // the ratio kernel leaves the bank untouched by construction.
        let chain = legacy.clone().block_predictive_logpdf(&refs);
        // Same quantity, different factorization of the arithmetic: the
        // telescoped marginal ratio agrees with the chain rule to rounding.
        assert!(
            (banked - chain).abs() <= 1e-9 * chain.abs().max(1.0),
            "ratio {banked} vs chain {chain}"
        );
        assert_eq!(bank.count(slot), 1);
        let probe = [0.1, 0.9];
        assert_eq!(
            bank.predictive_one(slot, &probe).to_bits(),
            legacy.predictive_logpdf(&probe).to_bits()
        );
    }

    #[test]
    fn block_predictive_is_deterministic_and_shared_stats_match_the_wrapper() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        bank.add_obs(slot, &[0.5, -0.5]);
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let a = bank.block_predictive(slot, &refs);
        let b = bank.block_predictive(slot, &refs);
        assert_eq!(a.to_bits(), b.to_bits(), "block kernel must be deterministic");
        let mut stats = BlockStats::new(2);
        bank.compute_block_stats(&refs, &mut stats);
        let c = bank.block_predictive_stats(slot, &stats);
        assert_eq!(a.to_bits(), c.to_bits(), "wrapper and shared-stats paths must agree");
    }

    #[test]
    fn block_predictive_prior_matches_a_fresh_slot_bit_for_bit() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let mut stats = BlockStats::new(2);
        bank.compute_block_stats(&refs, &mut stats);
        let prior = bank.block_predictive_prior(&stats);
        let slot = bank.alloc();
        let fresh = bank.block_predictive_stats(slot, &stats);
        assert_eq!(prior.to_bits(), fresh.to_bits());
    }

    #[test]
    fn attach_block_matches_sequential_adds_closely() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let fast = bank.alloc();
        let slow = bank.alloc();
        bank.add_obs(fast, &[0.4, -0.6]);
        bank.add_obs(slow, &[0.4, -0.6]);
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let mut stats = BlockStats::new(2);
        bank.compute_block_stats(&refs, &mut stats);
        bank.attach_block(fast, &stats, &refs);
        for x in &data {
            bank.add_obs(slow, x);
        }
        assert_eq!(bank.count(fast), bank.count(slow));
        let probe = [0.7, -0.1];
        let (a, b) = (bank.predictive_one(fast, &probe), bank.predictive_one(slow, &probe));
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "rank-m {a} vs sequential {b}");
        for (x, y) in bank.mean(fast).iter().zip(bank.mean(slow)) {
            assert!((x - y).abs() <= 1e-12, "means diverged: {x} vs {y}");
        }
    }

    #[test]
    fn detach_block_inverts_attach_block_closely() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        bank.add_obs(slot, &[1.0, -1.0]);
        bank.add_obs(slot, &[-0.5, 0.25]);
        let before = bank.predictive_one(slot, &[0.2, 0.2]);
        let data = pts();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let mut stats = BlockStats::new(2);
        bank.compute_block_stats(&refs, &mut stats);
        bank.attach_block(slot, &stats, &refs);
        bank.detach_block(slot, &stats, &refs);
        assert_eq!(bank.count(slot), 2);
        let after = bank.predictive_one(slot, &[0.2, 0.2]);
        assert!(
            (before - after).abs() <= 1e-9 * before.abs().max(1.0),
            "attach/detach round trip drifted: {before} vs {after}"
        );
    }

    #[test]
    fn detach_block_falls_back_per_point_when_downdate_leaves_spd() {
        // Detaching a block that was never attached can push Ψ outside SPD;
        // the fallback must land on the same state as per-point removal
        // (bit-for-bit, since it *is* the per-point path).
        let p = params2();
        let mut bank = DishBank::new(&p);
        let fast = bank.alloc();
        let slow = bank.alloc();
        for s in [fast, slow] {
            bank.add_obs(s, &[0.1, 0.1]);
            bank.add_obs(s, &[-0.1, 0.2]);
        }
        let foreign = [[35.0_f64, -30.0], [28.0, 33.0]];
        let refs: Vec<&[f64]> = foreign.iter().map(|x| x.as_slice()).collect();
        let mut stats = BlockStats::new(2);
        bank.compute_block_stats(&refs, &mut stats);
        bank.detach_block(fast, &stats, &refs);
        for x in &refs {
            bank.remove_obs(slow, x);
        }
        let _ = crate::divergence::take();
        let probe = [0.3, -0.3];
        assert_eq!(
            bank.predictive_one(fast, &probe).to_bits(),
            bank.predictive_one(slow, &probe).to_bits()
        );
    }

    #[test]
    fn empty_block_scores_zero() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        assert_eq!(bank.block_predictive(slot, &[]), 0.0);
        let stats = BlockStats::new(2);
        assert_eq!(bank.block_predictive_prior(&stats), 0.0);
    }

    #[test]
    fn score_all_orders_outputs_by_slot_argument() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let a = bank.alloc();
        let b = bank.alloc();
        bank.add_obs(b, &[2.0, 2.0]);
        let x = [0.5, 0.5];
        let mut scratch = vec![0.0; 4];
        let mut out = Vec::new();
        bank.score_all(&[a, b], &x, &mut scratch, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].to_bits(), bank.predictive_one(a, &x).to_bits());
        assert_eq!(out[1].to_bits(), bank.predictive_one(b, &x).to_bits());
    }

    #[test]
    fn free_list_reuses_slots_and_reset_is_complete() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let a = bank.alloc();
        for x in pts() {
            bank.add_obs(a, &x);
        }
        let x = [0.3, 0.3];
        let fresh_score = {
            let b = bank.alloc();
            let s = bank.predictive_one(b, &x);
            bank.release(b);
            s
        };
        bank.release(a);
        let reused = bank.alloc();
        assert_eq!(reused, a, "free-list should hand back the last released slot");
        assert_eq!(bank.count(reused), 0);
        assert_eq!(
            bank.predictive_one(reused, &x).to_bits(),
            fresh_score.to_bits(),
            "a reused slot must be indistinguishable from a fresh prior slot"
        );
    }

    #[test]
    #[should_panic(expected = "no observations to remove")]
    fn remove_from_empty_slot_panics() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        bank.remove_obs(slot, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_release_panics() {
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        bank.release(slot);
        bank.release(slot);
    }

    #[test]
    fn downdate_rescue_path_matches_legacy_bit_for_bit() {
        // Removing a point that was never added drives the factor outside
        // SPD and exercises the dense rescue; legacy and bank must agree on
        // the repaired state (same reconstruct/syr/jitter sequence).
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        let mut legacy = NiwPosterior::from_prior(&p);
        bank.add_obs(slot, &[0.1, 0.1]);
        legacy.add(&[0.1, 0.1]);
        let foreign = [40.0, -35.0];
        bank.remove_obs(slot, &foreign);
        legacy.remove(&foreign);
        let probe = [0.2, -0.2];
        assert_eq!(
            bank.predictive_one(slot, &probe).to_bits(),
            legacy.predictive_logpdf(&probe).to_bits()
        );
    }

    #[test]
    fn block_kernel_stays_usable_after_a_downdate_rescue() {
        // After the rescue re-derives Ψ from the repaired factor, the ratio
        // kernel must keep agreeing with the chain rule on the same state.
        let p = params2();
        let mut bank = DishBank::new(&p);
        let slot = bank.alloc();
        let mut legacy = NiwPosterior::from_prior(&p);
        for x in pts() {
            bank.add_obs(slot, &x);
            legacy.add(&x);
        }
        let foreign = [40.0, -35.0];
        bank.remove_obs(slot, &foreign);
        legacy.remove(&foreign);
        let _ = crate::divergence::take();
        let block = [[0.2_f64, 0.4], [-0.3, 0.6]];
        let refs: Vec<&[f64]> = block.iter().map(|p| p.as_slice()).collect();
        let banked = bank.block_predictive(slot, &refs);
        let chain = legacy.block_predictive_logpdf(&refs);
        assert!(
            (banked - chain).abs() <= 1e-6 * chain.abs().max(1.0),
            "post-rescue ratio {banked} vs chain {chain}"
        );
    }
}
