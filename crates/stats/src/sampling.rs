//! Random-variate generation on top of `rand`'s uniform source.
//!
//! The workspace avoids `rand_distr` so the entire sampling stack is
//! auditable in one place: Box–Muller normals, Marsaglia–Tsang gammas,
//! gamma-ratio betas and Dirichlets, and categorical draws from both linear
//! and log-space weights. Every function takes an explicit `&mut impl Rng`,
//! keeping all experiments deterministic under a fixed seed.

use rand::Rng;

use crate::special::log_sum_exp;

/// Draw a standard normal variate (Box–Muller, polar-free variant).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller with freshly drawn uniforms; u1 is kept away from zero so
    // the log is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw `N(mu, sigma²)`.
///
/// # Panics
/// Panics when `sigma < 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "normal: sigma must be non-negative, got {sigma}");
    mu + sigma * standard_normal(rng)
}

/// Draw `Gamma(shape, rate)` with the **rate** (inverse-scale)
/// parameterization: mean = shape / rate.
///
/// Uses Marsaglia & Tsang's squeeze method for `shape >= 1` and the boost
/// `Gamma(a) = Gamma(a + 1) · U^{1/a}` for `shape < 1`.
///
/// # Panics
/// Panics when `shape <= 0` or `rate <= 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, rate: f64) -> f64 {
    assert!(shape > 0.0, "gamma: shape must be positive, got {shape}");
    assert!(rate > 0.0, "gamma: rate must be positive, got {rate}");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0, rate) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v3 + v3.ln()) {
            return d * v3 / rate;
        }
    }
}

/// Draw `Beta(a, b)` via the gamma ratio.
///
/// # Panics
/// Panics when `a <= 0` or `b <= 0`.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a, 1.0);
    let y = gamma(rng, b, 1.0);
    x / (x + y)
}

/// Draw from a Dirichlet distribution with concentration vector `alpha`.
///
/// # Panics
/// Panics when `alpha` is empty or has a non-positive entry.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(!alpha.is_empty(), "dirichlet: alpha must be non-empty");
    let mut draws: Vec<f64> = alpha.iter().map(|&a| gamma(rng, a, 1.0)).collect();
    let sum: f64 = draws.iter().sum();
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Sample an index proportional to the (non-negative, not necessarily
/// normalized) `weights`.
///
/// # Panics
/// Panics when `weights` is empty, contains a negative or non-finite entry,
/// or sums to zero.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical: weights must be non-empty");
    let mut total = 0.0;
    for &w in weights {
        assert!(w >= 0.0 && w.is_finite(), "categorical: bad weight {w}");
        total += w;
    }
    assert!(total > 0.0, "categorical: weights sum to zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1 // round-off fallthrough
}

/// Sample an index proportional to `exp(log_weights)`, stably.
///
/// Entries of `-inf` have probability zero.
///
/// # Panics
/// Panics when all entries are `-inf` (no valid outcome) or the slice is
/// empty.
pub fn categorical_log<R: Rng + ?Sized>(rng: &mut R, log_weights: &[f64]) -> usize {
    try_categorical_log(rng, log_weights)
        .expect("categorical_log: no finite log-weights (log normalizer not finite)")
}

/// Fallible variant of [`categorical_log`]: returns `None` instead of
/// panicking when the log normalizer is not finite (all entries `-inf`, or
/// any `NaN`/`+inf`), so samplers facing hostile inputs can substitute a
/// deterministic fallback and flag the sweep as diverged.
pub fn try_categorical_log<R: Rng + ?Sized>(rng: &mut R, log_weights: &[f64]) -> Option<usize> {
    let z = log_sum_exp(log_weights);
    if !z.is_finite() {
        return None;
    }
    let weights: Vec<f64> = log_weights.iter().map(|w| (w - z).exp()).collect();
    Some(categorical(rng, &weights))
}

/// Fisher–Yates shuffle of a slice of indices (thin wrapper so callers don't
/// need the `SliceRandom` trait in scope).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Reservoir-free sample of `k` distinct indices from `0..n`, in random
/// order (partial Fisher–Yates).
///
/// # Panics
/// Panics when `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k = {k} exceeds n = {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    fn sample_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0);
        (m, v)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut r)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!(m.abs() < 0.03, "mean drift: {m}");
        assert!((v - 1.0).abs() < 0.05, "variance drift: {v}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut r = rng();
        let (shape, rate) = (4.0, 2.0);
        let xs: Vec<f64> = (0..20_000).map(|_| gamma(&mut r, shape, rate)).collect();
        let (m, v) = sample_mean_var(&xs);
        assert!((m - shape / rate).abs() < 0.05, "gamma mean drift: {m}");
        assert!((v - shape / (rate * rate)).abs() < 0.1, "gamma var drift: {v}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut r = rng();
        let (shape, rate) = (0.5, 1.0);
        let xs: Vec<f64> = (0..20_000).map(|_| gamma(&mut r, shape, rate)).collect();
        let (m, _) = sample_mean_var(&xs);
        assert!((m - 0.5).abs() < 0.05, "sub-one-shape gamma mean drift: {m}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn beta_moments() {
        let mut r = rng();
        let (a, b) = (2.0, 5.0);
        let xs: Vec<f64> = (0..20_000).map(|_| beta(&mut r, a, b)).collect();
        let (m, v) = sample_mean_var(&xs);
        let em = a / (a + b);
        let ev = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((m - em).abs() < 0.01, "beta mean drift: {m} vs {em}");
        assert!((v - ev).abs() < 0.01, "beta var drift: {v} vs {ev}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut r = rng();
        let alpha = [1.0, 2.0, 7.0];
        let mut acc = [0.0; 3];
        for _ in 0..5000 {
            let d = dirichlet(&mut r, &alpha);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            for (a, x) in acc.iter_mut().zip(&d) {
                *a += x;
            }
        }
        let total: f64 = alpha.iter().sum();
        for (i, &a) in alpha.iter().enumerate() {
            let mean = acc[i] / 5000.0;
            assert!((mean - a / total).abs() < 0.02, "component {i} drift: {mean}");
        }
    }

    #[test]
    fn categorical_frequencies_track_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[categorical(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "frequency ratio drift: {ratio}");
    }

    #[test]
    fn categorical_log_matches_linear() {
        let mut r = rng();
        // log-weights shifted by a huge constant must not change frequencies.
        let lw = [1000.0, 1000.0 + (3.0f64).ln()];
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            counts[categorical_log(&mut r, &lw)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "log-space frequency drift: {ratio}");
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn categorical_rejects_all_zero() {
        let mut r = rng();
        let _ = categorical(&mut r, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no finite log-weights")]
    fn categorical_log_rejects_all_neg_inf() {
        let mut r = rng();
        let _ = categorical_log(&mut r, &[f64::NEG_INFINITY; 2]);
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_indices(&mut r, 10, 4);
            assert_eq!(s.len(), 4);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "indices must be distinct: {s:?}");
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_indices_full_permutation() {
        let mut r = rng();
        let mut s = sample_indices(&mut r, 5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut r = rng();
        let mut v = vec![1, 2, 3, 4, 5];
        shuffle(&mut r, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
