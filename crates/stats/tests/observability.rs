//! Tests for the observability substrate: totality of the convergence
//! diagnostics on hostile traces, and exactness of the lock-free metrics
//! registry under concurrent hammering.

use osr_stats::diagnostics::{
    burn_in_recommendation, effective_sample_size, split_rhat, split_rhat_chains,
    ChainDiagnostics,
};
use osr_stats::metrics::MetricsRegistry;
use proptest::prelude::*;

proptest! {
    /// Diagnostics are total: whatever finite trace comes in — constant,
    /// tiny, huge dynamic range, near-degenerate — nothing panics and every
    /// output is finite and in its documented range.
    #[test]
    fn diagnostics_never_panic_or_go_non_finite(
        xs in prop::collection::vec(-1e12..1e12f64, 0..300),
    ) {
        let d = ChainDiagnostics::from_trace(&xs);
        prop_assert!(d.rhat.is_finite(), "rhat = {}", d.rhat);
        prop_assert!((0.0..=1e6).contains(&d.rhat));
        prop_assert!(d.ess.is_finite(), "ess = {}", d.ess);
        prop_assert!(d.ess <= xs.len().max(1) as f64 + 1e-9);
        prop_assert!(d.burn_in <= xs.len() / 2);
    }

    /// Constant traces (zero variance everywhere) are the classic division
    /// hazard; they must report the neutral values.
    #[test]
    fn constant_traces_are_neutral(value in -1e9..1e9f64, n in 0usize..128) {
        let xs = vec![value; n];
        prop_assert_eq!(split_rhat(&xs), 1.0);
        let ess = effective_sample_size(&xs);
        prop_assert!(ess.is_finite());
        prop_assert_eq!(burn_in_recommendation(&xs), 0);
    }

    /// Traces polluted with non-finite samples never leak them into the
    /// outputs.
    #[test]
    fn non_finite_pollution_is_contained(
        xs in prop::collection::vec(-1e6..1e6f64, 8..64),
        poison_at in prop::collection::vec(0usize..64, 0..8),
    ) {
        let mut xs = xs;
        for (j, &i) in poison_at.iter().enumerate() {
            let i = i % xs.len();
            xs[i] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][j % 3];
        }
        let d = ChainDiagnostics::from_trace(&xs);
        prop_assert!(d.rhat.is_finite());
        prop_assert!(d.ess.is_finite());
        let refs: Vec<&[f64]> = vec![&xs, &xs];
        prop_assert!(split_rhat_chains(&refs).is_finite());
    }
}

/// Hammer the registry from many scoped threads and assert the *exact* sum:
/// relaxed atomics lose nothing, and handle registration racing with updates
/// still lands every increment on the same cell.
#[test]
fn registry_counts_exactly_under_concurrency() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let reg = MetricsRegistry::new();
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = &reg;
            s.spawn(move |_| {
                // Every thread re-registers by name: handles must alias.
                let c = reg.counter("hammer.count");
                let h = reg.histogram("hammer.values");
                let g = reg.gauge("hammer.last");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i % 1024);
                    g.set(t as f64);
                }
            });
        }
    })
    .expect("no panics");

    let snap = reg.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(snap.counter("hammer.count"), total, "counter lost increments");
    let hist = snap.histogram("hammer.values");
    assert_eq!(hist.count, total, "histogram lost observations");
    assert_eq!(
        hist.buckets.iter().sum::<u64>(),
        total,
        "bucket totals disagree with the observation count"
    );
    let expected_sum = THREADS as u64 * (0..PER_THREAD).map(|i| i % 1024).sum::<u64>();
    assert_eq!(hist.sum, expected_sum, "histogram sum drifted");
    let last = match snap.get("hammer.last") {
        Some(osr_stats::metrics::MetricValue::Gauge(v)) => *v,
        other => panic!("gauge missing: {other:?}"),
    };
    assert!((0.0..THREADS as f64).contains(&last), "gauge holds a written value");
}
