//! Property-based tests for the statistical substrate: conjugacy identities
//! of the NIW family, invariants of the special functions, and calibration
//! monotonicity of the EVT fits.

use osr_linalg::Matrix;
use osr_stats::special::{ln_gamma, log_sum_exp, normalize_log_weights};
use osr_stats::weibull::{TailSide, Weibull, WeibullFit};
use osr_stats::{NiwParams, NiwPosterior};
use proptest::prelude::*;

fn entry() -> impl Strategy<Value = f64> {
    -2.0..2.0f64
}

prop_compose! {
    fn niw_setup()(d in 1usize..4)(
        d in Just(d),
        mu0 in prop::collection::vec(entry(), d),
        kappa0 in 0.3..5.0f64,
        nu_extra in 0.5..6.0f64,
        diag in prop::collection::vec(0.5..2.0f64, d),
        points in prop::collection::vec(prop::collection::vec(entry(), d), 1..8),
    ) -> (NiwParams, Vec<Vec<f64>>) {
        let nu0 = d as f64 - 1.0 + nu_extra;
        let psi0 = Matrix::from_diag(&diag);
        (NiwParams::new(mu0, kappa0, nu0, psi0).unwrap(), points)
    }
}

proptest! {
    #[test]
    fn niw_chain_rule_matches_closed_form((params, points) in niw_setup()) {
        let mut post = NiwPosterior::from_prior(&params);
        let mut chain = 0.0;
        for p in &points {
            chain += post.predictive_logpdf(p);
            post.add(p);
        }
        let closed = post.log_marginal(&params);
        prop_assert!(
            (chain - closed).abs() < 1e-6 * chain.abs().max(1.0),
            "chain {chain} vs closed {closed}"
        );
    }

    #[test]
    fn niw_add_remove_is_identity((params, points) in niw_setup()) {
        let mut post = NiwPosterior::from_prior(&params);
        let probe = vec![0.3; params.dim()];
        let before = post.predictive_logpdf(&probe);
        for p in &points {
            post.add(p);
        }
        for p in points.iter().rev() {
            post.remove(p);
        }
        let after = post.predictive_logpdf(&probe);
        prop_assert!((before - after).abs() < 1e-7, "{before} vs {after}");
        prop_assert_eq!(post.count(), 0);
    }

    #[test]
    fn niw_marginal_order_invariant((params, points) in niw_setup()) {
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let fwd = NiwPosterior::from_points(&params, &refs).log_marginal(&params);
        let mut rev = refs.clone();
        rev.reverse();
        let bwd = NiwPosterior::from_points(&params, &rev).log_marginal(&params);
        prop_assert!((fwd - bwd).abs() < 1e-6 * fwd.abs().max(1.0));
    }

    #[test]
    fn niw_predictive_is_finite((params, points) in niw_setup()) {
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let post = NiwPosterior::from_points(&params, &refs);
        for x in &points {
            prop_assert!(post.predictive_logpdf(x).is_finite());
        }
    }

    #[test]
    fn ln_gamma_recurrence_holds(x in 0.05..50.0f64) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn log_sum_exp_shift_invariance(
        xs in prop::collection::vec(-30.0..30.0f64, 1..10),
        shift in -500.0..500.0f64,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let a = log_sum_exp(&xs) + shift;
        let b = log_sum_exp(&shifted);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn normalized_log_weights_form_distribution(
        xs in prop::collection::vec(-40.0..40.0f64, 1..12),
    ) {
        let p = normalize_log_weights(&xs);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn weibull_cdf_quantile_roundtrip(
        shape in 0.3..6.0f64,
        scale in 0.1..10.0f64,
        p in 0.001..0.999f64,
    ) {
        let w = Weibull::new(shape, scale).unwrap();
        let x = w.quantile(p);
        prop_assert!((w.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn weibull_cdf_is_monotone(
        shape in 0.3..6.0f64,
        scale in 0.1..10.0f64,
        a in 0.0..20.0f64,
        b in 0.0..20.0f64,
    ) {
        let w = Weibull::new(shape, scale).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(w.cdf(lo) <= w.cdf(hi) + 1e-15);
    }

    #[test]
    fn fitted_calibrator_outputs_probabilities(
        base in 0.5..3.0f64,
        spread in 0.2..2.0f64,
        n in 20usize..200,
    ) {
        // Deterministic pseudo-random scores.
        let scores: Vec<f64> = (0..n)
            .map(|i| base + spread * (((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        for side in [TailSide::Low, TailSide::High] {
            if let Ok(cal) = WeibullFit::fit_tail(&scores, side, 0.5, 5) {
                for s in [-5.0, 0.0, base, base + 10.0] {
                    let p = cal.probability(s);
                    prop_assert!((0.0..=1.0).contains(&p), "p({s}) = {p}");
                }
                // Monotone increasing on both sides.
                prop_assert!(cal.probability(-5.0) <= cal.probability(base) + 1e-12);
                prop_assert!(cal.probability(base) <= cal.probability(base + 10.0) + 1e-12);
            }
        }
    }
}
