//! AoS ↔ SoA equivalence: the [`DishBank`] one-vs-all scoring path must
//! reproduce the legacy per-dish [`NiwPosterior`] arithmetic **to exact bit
//! equality**, and the batch-vs-one path (the marginal-likelihood-ratio
//! kernel — see DESIGN.md, "Posterior bank layout and vectorized
//! predictive") must agree with the legacy chain rule to floating-point
//! rounding while being deterministic and leaving the dish state untouched.
//!
//! Every property drives a randomized interleaving of dish creation,
//! observation add/remove, dish retirement (free-list slot reuse), and
//! predictive evaluation through both representations and compares raw
//! `f64::to_bits` (or a tight relative tolerance for the ratio kernel). The
//! divergence-poison fallback of the downdate rescue is exercised too
//! (removing a never-added far-away point).

use osr_linalg::Matrix;
use osr_stats::{BlockStats, DishBank, NiwParams, NiwPosterior};
use proptest::prelude::*;

fn entry() -> impl Strategy<Value = f64> {
    -2.0..2.0f64
}

/// One step of the randomized dish-lifecycle script. Indices are taken
/// modulo the number of live dishes / absorbed points at replay time, so any
/// random byte string is a valid script.
#[derive(Debug, Clone)]
enum Op {
    /// Open a new dish.
    Create,
    /// Absorb point `point % points.len()` into dish `dish % live`.
    Add { dish: usize, point: usize },
    /// Remove the most recently absorbed point of dish `dish % live`.
    RemoveLast { dish: usize },
    /// Retire dish `dish % live` after stripping its observations (frees
    /// its bank slot for reuse by a later `Create`).
    Retire { dish: usize },
    /// Score point `point % points.len()` under every live dish, both ways.
    Score { point: usize },
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored proptest shim's `prop_oneof!` is unweighted; listing
    // `Add` twice biases scripts toward dishes that hold observations.
    prop_oneof![
        Just(Op::Create),
        (0usize..64, 0usize..64).prop_map(|(dish, point)| Op::Add { dish, point }),
        (0usize..64, 0usize..64).prop_map(|(dish, point)| Op::Add { dish, point }),
        (0usize..64).prop_map(|dish| Op::RemoveLast { dish }),
        (0usize..64).prop_map(|dish| Op::Retire { dish }),
        (0usize..64).prop_map(|point| Op::Score { point }),
    ]
}

prop_compose! {
    fn scripted_setup()(d in 1usize..5)(
        d in Just(d),
        mu0 in prop::collection::vec(entry(), d),
        kappa0 in 0.3..5.0f64,
        nu_extra in 0.5..6.0f64,
        diag in prop::collection::vec(0.5..2.0f64, d),
        points in prop::collection::vec(prop::collection::vec(entry(), d), 1..10),
        script in prop::collection::vec(op(), 1..40),
    ) -> (NiwParams, Vec<Vec<f64>>, Vec<Op>) {
        let nu0 = d as f64 - 1.0 + nu_extra;
        let psi0 = Matrix::from_diag(&diag);
        (NiwParams::new(mu0, kappa0, nu0, psi0).unwrap(), points, script)
    }
}

/// A dish materialized both ways: the legacy object and the bank slot, plus
/// the stack of points it absorbed (so RemoveLast stays a legal removal).
struct Mirror {
    legacy: NiwPosterior,
    slot: usize,
    absorbed: Vec<usize>,
}

fn assert_dish_bits_equal(bank: &DishBank, m: &Mirror, params: &NiwParams, probe: &[f64]) {
    assert_eq!(
        bank.predictive_one(m.slot, probe).to_bits(),
        m.legacy.predictive_logpdf(probe).to_bits(),
        "predictive diverged from legacy"
    );
    assert_eq!(bank.count(m.slot), m.legacy.count(), "count diverged");
    for (a, b) in bank.mean(m.slot).iter().zip(m.legacy.mean()) {
        assert_eq!(a.to_bits(), b.to_bits(), "posterior mean diverged");
    }
    assert_eq!(
        bank.log_marginal(m.slot, params).to_bits(),
        m.legacy.log_marginal(params).to_bits(),
        "log marginal diverged"
    );
}

proptest! {
    /// Replay a random create/add/remove/retire/score script through both
    /// representations; every observable must agree bit-for-bit at every
    /// scoring step and at the end.
    #[test]
    fn bank_replays_legacy_bit_for_bit((params, points, script) in scripted_setup()) {
        let mut bank = DishBank::new(&params);
        let mut dishes: Vec<Mirror> = Vec::new();
        for step in script {
            match step {
                Op::Create => {
                    dishes.push(Mirror {
                        legacy: NiwPosterior::from_prior(&params),
                        slot: bank.alloc(),
                        absorbed: Vec::new(),
                    });
                }
                Op::Add { dish, point } if !dishes.is_empty() => {
                    let idx = dish % dishes.len();
                    let m = &mut dishes[idx];
                    let p = point % points.len();
                    bank.add_obs(m.slot, &points[p]);
                    m.legacy.add(&points[p]);
                    m.absorbed.push(p);
                }
                Op::RemoveLast { dish } if !dishes.is_empty() => {
                    let idx = dish % dishes.len();
                    let m = &mut dishes[idx];
                    if let Some(p) = m.absorbed.pop() {
                        bank.remove_obs(m.slot, &points[p]);
                        m.legacy.remove(&points[p]);
                    }
                }
                Op::Retire { dish } if !dishes.is_empty() => {
                    let mut m = dishes.swap_remove(dish % dishes.len());
                    while let Some(p) = m.absorbed.pop() {
                        bank.remove_obs(m.slot, &points[p]);
                        m.legacy.remove(&points[p]);
                    }
                    assert_dish_bits_equal(&bank, &m, &params, &points[0]);
                    bank.release(m.slot);
                }
                Op::Score { point } if !dishes.is_empty() => {
                    let x = &points[point % points.len()];
                    let slots: Vec<usize> = dishes.iter().map(|m| m.slot).collect();
                    let mut scratch = vec![0.0; slots.len() * params.dim()];
                    let mut scores = Vec::with_capacity(slots.len());
                    bank.score_all(&slots, x, &mut scratch, &mut scores);
                    for (m, got) in dishes.iter().zip(&scores) {
                        prop_assert_eq!(
                            got.to_bits(),
                            m.legacy.predictive_logpdf(x).to_bits(),
                            "one-vs-all kernel diverged from legacy predictive"
                        );
                    }
                }
                // Ops addressed at dishes while none are live are no-ops.
                _ => {}
            }
        }
        for m in &dishes {
            assert_dish_bits_equal(&bank, m, &params, &points[0]);
        }
    }

    /// The batch-vs-one kernel (joint block predictive as a telescoped
    /// marginal-likelihood ratio) agrees with the legacy chain-rule product
    /// to rounding, is bit-deterministic across repeat calls and the
    /// shared-stats entry points, and leaves the dish state untouched.
    #[test]
    fn block_kernel_matches_legacy_and_preserves_state((params, points, _) in scripted_setup()) {
        let mut bank = DishBank::new(&params);
        let slot = bank.alloc();
        let mut legacy = NiwPosterior::from_prior(&params);
        // Seed the dish with the first half of the points…
        let (seed, block) = points.split_at(points.len() / 2);
        for p in seed {
            bank.add_obs(slot, p);
            legacy.add(p);
        }
        // …and evaluate the second half as a block (Eq. 8 factor). The
        // chain rule runs on a clone: its unwind is not bit-exact.
        let refs: Vec<&[f64]> = block.iter().map(Vec::as_slice).collect();
        let banked = bank.block_predictive(slot, &refs);
        let expect = legacy.clone().block_predictive_logpdf(&refs);
        prop_assert!(
            (banked - expect).abs() <= 1e-8 * expect.abs().max(1.0),
            "ratio kernel {} strayed from chain rule {}", banked, expect
        );
        // Deterministic, and identical through every entry point.
        prop_assert_eq!(bank.block_predictive(slot, &refs).to_bits(), banked.to_bits());
        let mut stats = BlockStats::new(params.dim());
        bank.compute_block_stats(&refs, &mut stats);
        prop_assert_eq!(bank.block_predictive_stats(slot, &stats).to_bits(), banked.to_bits());
        // The prior kernel equals a freshly allocated (empty) dish.
        let fresh = bank.alloc();
        let on_fresh = bank.block_predictive_stats(fresh, &stats);
        prop_assert_eq!(bank.block_predictive_prior(&stats).to_bits(), on_fresh.to_bits());
        bank.release(fresh);
        // The ratio kernel never touched the dish: still bit-equal to the
        // legacy posterior that never saw the block.
        assert_dish_bits_equal(
            &bank,
            &Mirror { legacy, slot, absorbed: Vec::new() },
            &params,
            &points[0],
        );
    }

    /// Forcing the downdate past SPD (removing a never-added far-away point)
    /// drives both representations through the dense rescue — and, when the
    /// refactorization also fails, the divergence-poison identity fallback.
    /// The repaired states must still agree bit-for-bit.
    #[test]
    fn downdate_rescue_stays_bit_identical(
        (params, points, _) in scripted_setup(),
        magnitude in 20.0..60.0f64,
    ) {
        let mut bank = DishBank::new(&params);
        let slot = bank.alloc();
        let mut legacy = NiwPosterior::from_prior(&params);
        for p in &points {
            bank.add_obs(slot, p);
            legacy.add(p);
        }
        let foreign: Vec<f64> = (0..params.dim())
            .map(|i| if i % 2 == 0 { magnitude } else { -magnitude })
            .collect();
        bank.remove_obs(slot, &foreign);
        legacy.remove(&foreign);
        // Clear any poison this deliberately hostile removal raised, so the
        // flag does not leak into other proptest cases on this thread.
        let _ = osr_stats::divergence::take();
        assert_dish_bits_equal(
            &bank,
            &Mirror { legacy, slot, absorbed: Vec::new() },
            &params,
            &points[0],
        );
    }

    /// Slot reuse is complete: retiring a dish and allocating a new one must
    /// give a posterior bit-identical to a genuinely fresh prior dish.
    #[test]
    fn recycled_slots_are_indistinguishable_from_fresh((params, points, _) in scripted_setup()) {
        let mut bank = DishBank::new(&params);
        let slot = bank.alloc();
        for p in &points {
            bank.add_obs(slot, p);
        }
        for p in points.iter().rev() {
            bank.remove_obs(slot, p);
        }
        bank.release(slot);
        let reused = bank.alloc();
        prop_assert_eq!(reused, slot, "free-list should reuse the released slot");
        let fresh = NiwPosterior::from_prior(&params);
        for x in &points {
            prop_assert_eq!(
                bank.predictive_one(reused, x).to_bits(),
                fresh.predictive_logpdf(x).to_bits()
            );
        }
    }
}
