//! Derive macros for the vendored `serde` shim.
//!
//! The real `serde_derive` (and its `syn`/`quote` stack) is unreachable in
//! this offline build, so these macros parse the item's token stream by hand.
//! That is tractable because the shim only has to cover the shapes this
//! workspace actually derives on: non-generic structs with named fields and
//! non-generic enums with unit, tuple, or struct variants. Anything else is
//! rejected with a compile-time panic naming the unsupported construct.
//!
//! Generated code targets the shim's [`Value`] tree (`serde::Value`) and uses
//! serde's externally-tagged enum representation: unit variants serialize as
//! a bare string, payload variants as a single-key object.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derive the shim's `serde::Serialize` for a named-field struct or an enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item.shape {
        Shape::Struct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec::Vec::from([{entries}]))\n\
                     }}\n\
                 }}",
                name = item.name,
            );
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "Self::{v} => ::serde::Value::Str(\
                                 ::std::string::String::from(\"{v}\")),",
                            v = v.name
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let vals: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Arr(::std::vec::Vec::from([{}]))",
                                vals.join(",")
                            )
                        };
                        let _ = write!(
                            arms,
                            "Self::{v}({binds}) => ::serde::Value::Obj(\
                                 ::std::vec::Vec::from([(\
                                     ::std::string::String::from(\"{v}\"), {payload})])),",
                            v = v.name,
                            binds = binders.join(","),
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "Self::{v} {{ {binds} }} => ::serde::Value::Obj(\
                                 ::std::vec::Vec::from([(\
                                     ::std::string::String::from(\"{v}\"), \
                                     ::serde::Value::Obj(::std::vec::Vec::from([{entries}])))])),",
                            v = v.name,
                            binds = fields.join(","),
                            entries = entries.join(","),
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                name = item.name,
            );
        }
    }
    out.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive the shim's `serde::Deserialize` for a named-field struct or an enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let mut out = String::new();
    match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__entries, \"{f}\")?"))
                .collect();
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Obj(__entries) => \
                                 ::std::result::Result::Ok(Self {{ {inits} }}),\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"struct {name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits = inits.join(","),
            );
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{v}\" => ::std::result::Result::Ok(Self::{v}),",
                            v = v.name
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{v}\" => ::std::result::Result::Ok(\
                                 Self::{v}(::serde::Deserialize::from_value(__payload)?)),",
                            v = v.name
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{v}\" => match __payload {{\n\
                                 ::serde::Value::Arr(__items) if __items.len() == {arity} => \
                                     ::std::result::Result::Ok(Self::{v}({elems})),\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\
                                         \"a {arity}-element array for {name}::{v}\", __other)),\n\
                             }},",
                            v = v.name,
                            elems = elems.join(","),
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__fields, \"{f}\")?"))
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{v}\" => match __payload {{\n\
                                 ::serde::Value::Obj(__fields) => \
                                     ::std::result::Result::Ok(Self::{v} {{ {inits} }}),\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\
                                         \"an object for {name}::{v}\", __other)),\n\
                             }},",
                            v = v.name,
                            inits = inits.join(","),
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                         ::std::format!(\
                                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum {name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
            );
        }
    }
    out.parse().expect("serde_derive: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the shim");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => panic!(
            "serde_derive: `{name}` must have a braced body \
             (tuple/unit structs are not supported by the shim)"
        ),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(&body)),
        "enum" => Shape::Enum(parse_variants(&body)),
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    };
    Item { name, shape }
}

/// Skip any number of `#[…]` (including doc comments, which arrive as
/// `#[doc = "…"]`).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            _ => panic!("serde_derive: malformed attribute"),
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in …)`, …
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Advance past one type (or expression), stopping at a `,` that sits outside
/// every `<…>` pair. Groups are single tokens, so only angle brackets need
/// explicit depth tracking.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found `{other}`"),
        }
        skip_to_top_level_comma(tokens, &mut i);
        i += 1; // the comma itself (or one past the end)
        fields.push(name);
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_elements(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported by the shim");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of types in a tuple-variant payload: top-level commas + 1. A
/// trailing comma contributes no extra slot because the scan stops at the end
/// of the token list.
fn count_tuple_elements(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        panic!("serde_derive: empty tuple variants are not supported by the shim");
    }
    let mut slots = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_to_top_level_comma(tokens, &mut i);
        slots += 1;
        i += 1;
    }
    slots
}
