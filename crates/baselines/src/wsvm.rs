//! W-SVM and W-OSVM (Scheirer et al. 2014; paper §2.2).
//!
//! Both methods calibrate raw SVM scores with statistical extreme value
//! theory instead of trusting them directly:
//!
//! * **W-OSVM** — per class, a one-class ν-SVM CAP model whose decision
//!   scores are Weibull-calibrated into `P_O(y|x)`; a sample is rejected
//!   outright when even the best class has `P_O ≤ δ_τ` (fixed at 0.001).
//! * **W-SVM** — adds a binary one-vs-rest C-SVC per class. Its positive
//!   training scores' lower tail yields the Weibull inclusion model `P_η`,
//!   its negative scores' upper tail the reverse-Weibull exceedance model
//!   `P_ψ`; the fused posterior is `P_η(y|x) · P_ψ(y|x)`, gated by the
//!   one-class conditioner ι_y and accepted only above δ_R (paper Eq. 2,
//!   with δ_R either grid-searched or set to `0.5 × openness`).

use serde::{Deserialize, Serialize};

use osr_dataset::protocol::{Prediction, TrainSet};
use osr_stats::weibull::{TailSide, WeibullFit};
use osr_svm::{BinarySvm, Kernel, OneClassSvm, SvmParams};

use crate::{validate_training, OpenSetClassifier, Result};

/// Tail fraction used for every Weibull fit (fraction of scores treated as
/// the extreme-value tail).
const TAIL_FRACTION: f64 = 0.5;
/// Minimum tail size for a stable MLE.
const MIN_TAIL: usize = 8;

/// An EVT calibrator with a degenerate fallback for pathological score sets
/// (e.g. all identical), so grid searches never abort mid-sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Calibrator {
    Evt(WeibullFit),
    /// Step calibrator at a threshold: probability 1 above, 0 below
    /// (`rising = true`) or the reverse.
    Step { threshold: f64, rising: bool },
}

impl Calibrator {
    fn fit(scores: &[f64], side: TailSide) -> Self {
        match WeibullFit::fit_tail(scores, side, TAIL_FRACTION, MIN_TAIL) {
            Ok(fit) => Self::Evt(fit),
            Err(_) => {
                let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
                Self::Step { threshold: mean, rising: true }
            }
        }
    }

    fn probability(&self, score: f64) -> f64 {
        match self {
            Self::Evt(fit) => fit.probability(score),
            Self::Step { threshold, rising } => {
                let above = score >= *threshold;
                if above == *rising {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Shared per-class one-class CAP model with Weibull calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OneClassCap {
    svm: OneClassSvm,
    calibrator: Calibrator,
}

impl OneClassCap {
    fn train(class_points: &[&[f64]], nu: f64, kernel: Kernel) -> Result<Self> {
        let params = osr_svm::OneClassParams::new(nu, kernel);
        let svm = OneClassSvm::train(class_points, &params)?;
        let scores: Vec<f64> = class_points.iter().map(|p| svm.decision_value(p)).collect();
        let calibrator = Calibrator::fit(&scores, TailSide::Low);
        Ok(Self { svm, calibrator })
    }

    /// `P_O(y|x)`: calibrated one-class membership probability.
    fn probability(&self, x: &[f64]) -> f64 {
        self.calibrator.probability(self.svm.decision_value(x))
    }
}

// ---------------------------------------------------------------------------
// W-OSVM
// ---------------------------------------------------------------------------

/// W-OSVM hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WOsvmParams {
    /// One-class ν.
    pub nu: f64,
    /// RBF bandwidth γ (`None` ⇒ 1/d heuristic).
    pub gamma: Option<f64>,
    /// Rejection threshold δ_τ on the calibrated probability. Paper: 0.001.
    pub delta_tau: f64,
}

impl Default for WOsvmParams {
    fn default() -> Self {
        Self { nu: 0.1, gamma: None, delta_tau: 0.001 }
    }
}

/// Trained W-OSVM (one-class CAP model per class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WOsvm {
    caps: Vec<OneClassCap>,
    delta_tau: f64,
}

impl WOsvm {
    /// Train one calibrated one-class SVM per class.
    ///
    /// # Errors
    /// Fails on malformed training data or SVM training failure.
    pub fn train(train: &TrainSet, params: &WOsvmParams) -> Result<Self> {
        let (points, labels) = train.flattened();
        validate_training(&points, &labels, train.n_classes())?;
        let kernel = match params.gamma {
            Some(g) => Kernel::Rbf { gamma: g },
            None => Kernel::rbf_for_data(&points),
        };
        let mut caps = Vec::with_capacity(train.n_classes());
        for class in &train.classes {
            let refs: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
            caps.push(OneClassCap::train(&refs, params.nu, kernel)?);
        }
        Ok(Self { caps, delta_tau: params.delta_tau })
    }
}

impl OpenSetClassifier for WOsvm {
    fn name(&self) -> &'static str {
        "W-OSVM"
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let probs: Vec<f64> = self.caps.iter().map(|c| c.probability(x)).collect();
        let best = osr_linalg::vector::argmax(&probs).expect("≥1 class");
        if probs[best] > self.delta_tau {
            Prediction::Known(best)
        } else {
            Prediction::Unknown
        }
    }
}

// ---------------------------------------------------------------------------
// W-SVM
// ---------------------------------------------------------------------------

/// W-SVM hyperparameters (§4.1.2: C and γ grid-searched, δ_τ fixed at
/// 0.001, δ_R grid-searched in 10⁻⁷…10⁻¹ or set to 0.5 × openness).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WSvmParams {
    /// Binary C-SVC soft margin.
    pub c: f64,
    /// RBF bandwidth γ (`None` ⇒ 1/d heuristic), shared by both SVM stages.
    pub gamma: Option<f64>,
    /// One-class ν for the conditioner.
    pub nu: f64,
    /// One-class rejection threshold δ_τ. Paper: 0.001.
    pub delta_tau: f64,
    /// Acceptance threshold δ_R on the fused posterior.
    pub delta_r: f64,
}

impl Default for WSvmParams {
    fn default() -> Self {
        Self { c: 1.0, gamma: None, nu: 0.1, delta_tau: 0.001, delta_r: 0.05 }
    }
}

/// One class's calibrated binary CAP model.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinaryCap {
    svm: BinarySvm,
    /// `P_η`: Weibull inclusion model on positive scores.
    eta: Calibrator,
    /// `P_ψ`: reverse-Weibull exceedance model on negative scores.
    psi: Calibrator,
}

/// Trained W-SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WSvm {
    caps: Vec<OneClassCap>,
    binaries: Vec<BinaryCap>,
    delta_tau: f64,
    delta_r: f64,
}

impl WSvm {
    /// Train the full two-stage model.
    ///
    /// # Errors
    /// Fails on malformed training data or SVM training failure.
    pub fn train(train: &TrainSet, params: &WSvmParams) -> Result<Self> {
        let (points, labels) = train.flattened();
        let n_classes = train.n_classes();
        validate_training(&points, &labels, n_classes)?;
        if n_classes < 2 {
            return Err(crate::BaselineError::InvalidTrainingSet(
                "W-SVM's one-vs-rest stage needs ≥ 2 classes".into(),
            ));
        }
        let kernel = match params.gamma {
            Some(g) => Kernel::Rbf { gamma: g },
            None => Kernel::rbf_for_data(&points),
        };
        let svm_params = SvmParams::new(params.c, kernel);

        let mut caps = Vec::with_capacity(n_classes);
        let mut binaries = Vec::with_capacity(n_classes);
        for class in 0..n_classes {
            let class_refs: Vec<&[f64]> =
                train.classes[class].iter().map(Vec::as_slice).collect();
            caps.push(OneClassCap::train(&class_refs, params.nu, kernel)?);

            let positive: Vec<bool> = labels.iter().map(|&l| l == class).collect();
            let svm = BinarySvm::train(&points, &positive, &svm_params)?;
            let pos_scores: Vec<f64> = points
                .iter()
                .zip(&positive)
                .filter(|&(_, &p)| p)
                .map(|(x, _)| svm.decision_value(x))
                .collect();
            let neg_scores: Vec<f64> = points
                .iter()
                .zip(&positive)
                .filter(|&(_, &p)| !p)
                .map(|(x, _)| svm.decision_value(x))
                .collect();
            let eta = Calibrator::fit(&pos_scores, TailSide::Low);
            let psi = Calibrator::fit(&neg_scores, TailSide::High);
            binaries.push(BinaryCap { svm, eta, psi });
        }
        Ok(Self { caps, binaries, delta_tau: params.delta_tau, delta_r: params.delta_r })
    }

    /// The fused posterior `P_η(y|x) · P_ψ(y|x) · ι_y` for every class.
    pub fn posteriors(&self, x: &[f64]) -> Vec<f64> {
        self.binaries
            .iter()
            .zip(&self.caps)
            .map(|(b, cap)| {
                // ι_y: one-class conditioner.
                if cap.probability(x) <= self.delta_tau {
                    return 0.0;
                }
                let f = b.svm.decision_value(x);
                b.eta.probability(f) * b.psi.probability(f)
            })
            .collect()
    }
}

impl OpenSetClassifier for WSvm {
    fn name(&self) -> &'static str {
        "W-SVM"
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let probs = self.posteriors(x);
        let best = osr_linalg::vector::argmax(&probs).expect("≥2 classes");
        if probs[best] >= self.delta_r && probs[best] > 0.0 {
            Prediction::Known(best)
        } else {
            Prediction::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + 0.5 * sampling::standard_normal(rng),
                    cy + 0.5 * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    fn train_set(rng: &mut StdRng) -> TrainSet {
        TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(rng, -4.0, 0.0, 60), blob(rng, 4.0, 0.0, 60)],
        }
    }

    #[test]
    fn wosvm_accepts_knowns_rejects_far_unknowns() {
        let mut rng = StdRng::seed_from_u64(1);
        let ts = train_set(&mut rng);
        let m = WOsvm::train(&ts, &WOsvmParams::default()).unwrap();
        assert_eq!(m.predict(&[-4.0, 0.0]), Prediction::Known(0));
        assert_eq!(m.predict(&[4.0, 0.0]), Prediction::Known(1));
        assert_eq!(m.predict(&[0.0, 50.0]), Prediction::Unknown);
        assert_eq!(m.predict(&[40.0, -40.0]), Prediction::Unknown);
    }

    #[test]
    fn wsvm_accepts_knowns_rejects_far_unknowns() {
        let mut rng = StdRng::seed_from_u64(2);
        let ts = train_set(&mut rng);
        let m = WSvm::train(&ts, &WSvmParams::default()).unwrap();
        assert_eq!(m.predict(&[-4.0, 0.0]), Prediction::Known(0));
        assert_eq!(m.predict(&[4.1, -0.2]), Prediction::Known(1));
        assert_eq!(m.predict(&[0.0, 50.0]), Prediction::Unknown);
    }

    #[test]
    fn wsvm_posteriors_are_probability_products() {
        let mut rng = StdRng::seed_from_u64(3);
        let ts = train_set(&mut rng);
        let m = WSvm::train(&ts, &WSvmParams::default()).unwrap();
        for x in [[-4.0, 0.0], [4.0, 0.0], [0.0, 10.0]] {
            for p in m.posteriors(&x) {
                assert!((0.0..=1.0).contains(&p), "posterior {p} out of range at {x:?}");
            }
        }
        // At a class center, that class's posterior dominates.
        let p = m.posteriors(&[-4.0, 0.0]);
        assert!(p[0] > p[1], "class 0 should dominate at its center: {p:?}");
    }

    #[test]
    fn wsvm_delta_r_trades_acceptance_for_rejection() {
        let mut rng = StdRng::seed_from_u64(4);
        let ts = train_set(&mut rng);
        let strict = WSvm::train(&ts, &WSvmParams { delta_r: 0.9, ..Default::default() }).unwrap();
        let lenient =
            WSvm::train(&ts, &WSvmParams { delta_r: 1e-7, ..Default::default() }).unwrap();
        // A borderline point near (but not at) a class boundary.
        let probe = [-2.4, 0.6];
        let strict_rejects = strict.predict(&probe) == Prediction::Unknown;
        let lenient_accepts = matches!(lenient.predict(&probe), Prediction::Known(_));
        assert!(
            strict_rejects || lenient_accepts,
            "thresholds should span the borderline point"
        );
        // Lenient accepts everything strict accepts.
        for x in [[-4.0, 0.0], [4.0, 0.0]] {
            if matches!(strict.predict(&x), Prediction::Known(_)) {
                assert!(matches!(lenient.predict(&x), Prediction::Known(_)));
            }
        }
    }

    #[test]
    fn wosvm_delta_tau_gates_acceptance() {
        let mut rng = StdRng::seed_from_u64(5);
        let ts = train_set(&mut rng);
        // δ_τ close to 1 rejects nearly everything.
        let strict =
            WOsvm::train(&ts, &WOsvmParams { delta_tau: 0.999, ..Default::default() }).unwrap();
        let rejected = (0..20)
            .map(|i| strict.predict(&[-4.0 + i as f64 * 0.4, 0.0]))
            .filter(|p| *p == Prediction::Unknown)
            .count();
        assert!(rejected >= 15, "high δ_τ should reject most points, kept {}", 20 - rejected);
    }

    #[test]
    fn wsvm_conditioner_zeroes_distant_posteriors() {
        let mut rng = StdRng::seed_from_u64(6);
        let ts = train_set(&mut rng);
        let m = WSvm::train(&ts, &WSvmParams::default()).unwrap();
        let p = m.posteriors(&[0.0, 80.0]);
        assert!(p.iter().all(|&v| v == 0.0), "far point must be zeroed by ι: {p:?}");
    }

    #[test]
    fn training_rejects_bad_inputs() {
        let ts = TrainSet { class_ids: vec![], classes: vec![] };
        assert!(WOsvm::train(&ts, &WOsvmParams::default()).is_err());
        assert!(WSvm::train(&ts, &WSvmParams::default()).is_err());
        let one_class = TrainSet {
            class_ids: vec![0],
            classes: vec![vec![vec![0.0, 0.0], vec![1.0, 1.0]]],
        };
        // W-OSVM works with one class; W-SVM needs two for its binary stage.
        assert!(WOsvm::train(&one_class, &WOsvmParams::default()).is_ok());
        assert!(WSvm::train(&one_class, &WSvmParams::default()).is_err());
    }
}
