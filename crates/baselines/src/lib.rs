//! The paper's open-set recognition baselines, re-implemented from their
//! source publications:
//!
//! * [`OneVsSet`] — the 1-vs-Set machine (Scheirer et al. 2013): a linear
//!   SVM refined into a *slab* between two parallel hyperplanes chosen to
//!   minimize the open-space-risk objective (Eq. 1 of the paper).
//! * [`WOsvm`] — W-OSVM: the one-class SVM CAP model of W-SVM alone, with
//!   EVT (Weibull) score calibration and the fixed δ_τ = 0.001 threshold.
//! * [`WSvm`] — the Weibull-calibrated SVM (Scheirer et al. 2014): one-class
//!   conditioner plus a binary one-vs-rest SVM whose positive scores get a
//!   Weibull inclusion model `P_η` and whose negative scores get a
//!   reverse-Weibull exceedance model `P_ψ`; accept `argmax P_η·P_ψ` when
//!   the product clears δ_R (Eq. 2).
//! * [`PiSvm`] — P_I-SVM (Jain et al. 2014): one-vs-rest binary SVMs with a
//!   Weibull *probability-of-inclusion* model fitted on each class's
//!   positive decision scores; reject when the best posterior is below δ.
//! * [`Osnn`] — OSNN, the nearest-neighbour distance-ratio classifier
//!   (Júnior et al. 2017, Eq. 3).
//!
//! Every baseline implements [`OpenSetClassifier`], takes the paper's
//! grid-searchable hyperparameters explicitly, and produces the shared
//! [`Prediction`] type scored by `osr-eval`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod one_vs_set;
mod osnn;
mod pisvm;
pub mod serve;
mod wsvm;

pub use one_vs_set::{OneVsSet, OneVsSetParams};
pub use osnn::{Osnn, OsnnParams};
pub use pisvm::{PiSvm, PiSvmParams};
pub use serve::{BaselineSpec, ServedBaseline};
pub use wsvm::{WOsvm, WOsvmParams, WSvm, WSvmParams};

pub use osr_dataset::protocol::Prediction;

/// Errors produced while training baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Training data unusable for this method.
    InvalidTrainingSet(String),
    /// Invalid hyperparameter.
    InvalidParameter(String),
    /// Propagated SVM failure.
    Svm(osr_svm::SvmError),
    /// Propagated EVT/statistics failure.
    Stats(osr_stats::StatsError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidTrainingSet(m) => write!(f, "invalid training set: {m}"),
            Self::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            Self::Svm(e) => write!(f, "svm failure: {e}"),
            Self::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<osr_svm::SvmError> for BaselineError {
    fn from(e: osr_svm::SvmError) -> Self {
        Self::Svm(e)
    }
}

impl From<osr_stats::StatsError> for BaselineError {
    fn from(e: osr_stats::StatsError) -> Self {
        Self::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Common interface of every open-set baseline (and, via an adapter in
/// `osr-eval`, of HDP-OSR itself).
pub trait OpenSetClassifier {
    /// Method name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Classify one test point.
    fn predict(&self, x: &[f64]) -> Prediction;

    /// Classify a batch (default: point-wise).
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Validate a flattened training set: non-empty, consistent dimensions,
/// labels within `0..n_classes`, every class inhabited. Returns the feature
/// dimension.
pub(crate) fn validate_training(
    points: &[&[f64]],
    labels: &[usize],
    n_classes: usize,
) -> Result<usize> {
    if points.is_empty() {
        return Err(BaselineError::InvalidTrainingSet("no training points".into()));
    }
    if points.len() != labels.len() {
        return Err(BaselineError::InvalidTrainingSet(format!(
            "{} labels for {} points",
            labels.len(),
            points.len()
        )));
    }
    if n_classes == 0 {
        return Err(BaselineError::InvalidTrainingSet("zero classes".into()));
    }
    let d = points[0].len();
    if points.iter().any(|p| p.len() != d) {
        return Err(BaselineError::InvalidTrainingSet("inconsistent dimensions".into()));
    }
    let mut seen = vec![false; n_classes];
    for &l in labels {
        if l >= n_classes {
            return Err(BaselineError::InvalidTrainingSet(format!(
                "label {l} out of range for {n_classes} classes"
            )));
        }
        seen[l] = true;
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(BaselineError::InvalidTrainingSet(format!("class {missing} has no samples")));
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_training_accepts_good_input() {
        let pts = [vec![0.0, 1.0], vec![1.0, 0.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        assert_eq!(validate_training(&refs, &[0, 1], 2).unwrap(), 2);
    }

    #[test]
    fn validate_training_rejects_problems() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        assert!(validate_training(&[], &[], 1).is_err());
        assert!(validate_training(&refs, &[0], 2).is_err());
        assert!(validate_training(&refs, &[0, 5], 2).is_err());
        assert!(validate_training(&refs, &[0, 0], 2).is_err()); // class 1 empty
        assert!(validate_training(&refs, &[0, 1], 0).is_err());
        let ragged = [vec![0.0], vec![1.0, 2.0]];
        let rr: Vec<&[f64]> = ragged.iter().map(Vec::as_slice).collect();
        assert!(validate_training(&rr, &[0, 1], 2).is_err());
    }
}
