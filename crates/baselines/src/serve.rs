//! Serve adapter: every baseline behind the production
//! [`CollectiveModel`] trait, so W-SVM/PI-SVM/OSNN/1-vs-Set classify
//! through the same [`hdp_osr_core::BatchServer`] stack as CD-OSR —
//! admission, retry, degradation, metrics, and method-tagged JSONL traces
//! included.
//!
//! The baselines are *per-instance* recognizers: deterministic, sweep-free,
//! no sampler to diverge. The adapter maps them onto the collective-serving
//! contract honestly:
//!
//! * sessions plan **zero sweeps** and answer in
//!   [`CollectiveSession::finish`];
//! * `reseedable` is `false` — a retry replays the identical computation, so
//!   the server reuses the first attempt's seed instead of pretending a new
//!   seed explores anything;
//! * the frozen fallback **is** the normal per-point prediction (there is no
//!   cheaper approximation to fall back to), so degraded answers differ only
//!   in their `served_via` stamp.
//!
//! Outcomes use a degenerate subclass vocabulary so downstream consumers of
//! [`ClassifyOutcome`] keep working: class `c` is "dish" `c` (one subclass
//! per known class, sized by its training count), and every rejected point
//! pools into the single pseudo-dish `n_classes`.

use std::collections::BTreeMap;

use rand::rngs::StdRng;

use hdp_osr_core::collective::{
    AttemptError, CollectiveModel, CollectiveSession, ModelCapabilities,
};
use hdp_osr_core::discovery::{estimate_unknown_classes, GroupSubclasses, SubclassReport};
use hdp_osr_core::{ClassifyOutcome, DegradeReason, DishId, OsrError, ServedVia, SweepTrace};
use osr_dataset::protocol::{Prediction, TrainSet};

use crate::{
    OneVsSet, OneVsSetParams, OpenSetClassifier, Osnn, OsnnParams, PiSvm, PiSvmParams, Result,
    WOsvm, WOsvmParams, WSvm, WSvmParams,
};

/// A fully parameterized baseline, ready to train into a [`ServedBaseline`].
#[derive(Debug, Clone, Copy)]
pub enum BaselineSpec {
    /// 1-vs-Set machine (method tag `"onevset"`).
    OneVsSet(OneVsSetParams),
    /// W-OSVM, the one-class CAP model alone (method tag `"wosvm"`).
    WOsvm(WOsvmParams),
    /// Weibull-calibrated SVM (method tag `"wsvm"`).
    WSvm(WSvmParams),
    /// Probability-of-inclusion SVM (method tag `"pisvm"`).
    PiSvm(PiSvmParams),
    /// Nearest-neighbour distance ratio (method tag `"osnn"`).
    Osnn(OsnnParams),
}

impl BaselineSpec {
    /// Stable lower-case method tag used in traces, outcomes, and bench
    /// reports.
    pub fn method(&self) -> &'static str {
        match self {
            Self::OneVsSet(_) => "onevset",
            Self::WOsvm(_) => "wosvm",
            Self::WSvm(_) => "wsvm",
            Self::PiSvm(_) => "pisvm",
            Self::Osnn(_) => "osnn",
        }
    }

    /// Every baseline under its default hyperparameters, in the paper's
    /// figure-legend order.
    pub fn default_lineup() -> Vec<BaselineSpec> {
        vec![
            Self::OneVsSet(OneVsSetParams::default()),
            Self::WOsvm(WOsvmParams::default()),
            Self::WSvm(WSvmParams::default()),
            Self::PiSvm(PiSvmParams::default()),
            Self::Osnn(OsnnParams::default()),
        ]
    }
}

/// The trained model behind a [`ServedBaseline`].
#[derive(Debug)]
enum Fitted {
    OneVsSet(OneVsSet),
    WOsvm(WOsvm),
    WSvm(WSvm),
    PiSvm(PiSvm),
    Osnn(Osnn),
}

impl Fitted {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        match self {
            Self::OneVsSet(m) => m.predict_batch(xs),
            Self::WOsvm(m) => m.predict_batch(xs),
            Self::WSvm(m) => m.predict_batch(xs),
            Self::PiSvm(m) => m.predict_batch(xs),
            Self::Osnn(m) => m.predict_batch(xs),
        }
    }
}

/// A fitted baseline serving through the production stack: implements
/// [`CollectiveModel`], so a [`hdp_osr_core::BatchServer`] can hold it
/// exactly like CD-OSR.
#[derive(Debug)]
pub struct ServedBaseline {
    spec: BaselineSpec,
    model: Fitted,
    dim: usize,
    /// Training item count per class, frozen at fit time — the degenerate
    /// "subclass" vocabulary of the outcome reports.
    class_counts: Vec<usize>,
}

impl ServedBaseline {
    /// Train `spec` on `train`.
    ///
    /// # Errors
    /// Propagates the baseline's training failure.
    pub fn train(spec: BaselineSpec, train: &TrainSet) -> Result<Self> {
        let model = match &spec {
            BaselineSpec::OneVsSet(p) => Fitted::OneVsSet(OneVsSet::train(train, p)?),
            BaselineSpec::WOsvm(p) => Fitted::WOsvm(WOsvm::train(train, p)?),
            BaselineSpec::WSvm(p) => Fitted::WSvm(WSvm::train(train, p)?),
            BaselineSpec::PiSvm(p) => Fitted::PiSvm(PiSvm::train(train, p)?),
            BaselineSpec::Osnn(p) => {
                let (points, labels) = train.flattened();
                Fitted::Osnn(Osnn::train(&points, &labels, train.n_classes(), p)?)
            }
        };
        // Training succeeded, so the set is non-empty and rectangular.
        let dim = train
            .classes
            .iter()
            .flat_map(|c| c.iter())
            .next()
            .map_or(0, Vec::len);
        let class_counts = train.classes.iter().map(Vec::len).collect();
        Ok(Self { spec, model, dim, class_counts })
    }

    /// The spec this model was trained from.
    pub fn spec(&self) -> &BaselineSpec {
        &self.spec
    }

    /// Assemble a [`ClassifyOutcome`] around per-point predictions, mapping
    /// them onto the degenerate dish vocabulary (class `c` → dish `c`,
    /// `Unknown` → pseudo-dish `n_classes`).
    fn outcome(
        &self,
        predictions: Vec<Prediction>,
        served_via: ServedVia,
        attempts: u32,
    ) -> ClassifyOutcome {
        let n_classes = self.class_counts.len();
        let mut counts: BTreeMap<DishId, usize> = BTreeMap::new();
        let mut test_dishes: Vec<DishId> = Vec::with_capacity(predictions.len());
        for pred in &predictions {
            let dish = match pred {
                Prediction::Known(c) => *c,
                Prediction::Unknown => n_classes,
            };
            *counts.entry(dish).or_insert(0) += 1;
            test_dishes.push(dish);
        }
        let denom = predictions.len().max(1) as f64;

        let known = self
            .class_counts
            .iter()
            .enumerate()
            .map(|(c, &count)| GroupSubclasses {
                name: format!("Class{}", c + 1),
                subclasses: vec![(c, count, 1.0)],
            })
            .collect();
        let mut test_known = Vec::new();
        let mut test_new = Vec::new();
        let mut known_items = 0usize;
        let mut new_items = 0usize;
        for (&dish, &count) in &counts {
            let row = (dish, count, count as f64 / denom);
            if dish < n_classes {
                known_items += count;
                test_known.push(row);
            } else {
                new_items += count;
                test_new.push(row);
            }
        }
        let report = SubclassReport {
            known,
            test_known,
            test_new: test_new.clone(),
            test_known_proportion: known_items as f64 / denom,
            test_new_proportion: new_items as f64 / denom,
            delta_estimate: estimate_unknown_classes(test_new.len(), n_classes, n_classes),
        };

        ClassifyOutcome {
            predictions,
            report,
            test_dishes,
            // Per-instance recognizers have no sampler state; the
            // concentrations and likelihood are identically absent.
            gamma: 0.0,
            alpha: 0.0,
            log_likelihood: 0.0,
            served_via,
            attempts,
            trace_id: String::new(),
            method: self.spec.method().to_string(),
        }
    }
}

/// Honor injected faults at the `baseline::classify` site, then report any
/// pending divergence poison (no-op without the `fault-inject` feature).
fn baseline_classify_fault() -> std::result::Result<(), AttemptError> {
    #[cfg(feature = "fault-inject")]
    {
        use osr_stats::faults::{hit, sites, Fault};
        match hit(sites::BASELINE_CLASSIFY) {
            Some(Fault::Panic { message }) => {
                // osr-lint: allow(panic-path, injected fault — the server's catch_unwind boundary is the system under test)
                panic!("{message}");
            }
            Some(Fault::Diverge | Fault::CholeskyFail) => {
                osr_stats::divergence::poison("injected divergence at baseline::classify");
            }
            Some(Fault::DelayMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(Fault::NanPoint { .. } | Fault::Corrupt) | None => {}
        }
        if let Some(reason) = osr_stats::divergence::take() {
            return Err(AttemptError::Diverged(reason));
        }
    }
    Ok(())
}

/// One sweep-free serve attempt over a batch: all work happens in
/// [`CollectiveSession::finish`].
struct BaselineSession<'m> {
    served: &'m ServedBaseline,
    batch: Vec<Vec<f64>>,
}

impl CollectiveSession for BaselineSession<'_> {
    fn sweeps_planned(&self) -> usize {
        0
    }

    fn sweep(&mut self, _rng: &mut StdRng) -> std::result::Result<SweepTrace, AttemptError> {
        Err(AttemptError::Fatal(OsrError::Internal(
            "baseline sessions plan zero sweeps; sweep() must never be called".into(),
        )))
    }

    fn finish(&mut self) -> std::result::Result<ClassifyOutcome, AttemptError> {
        baseline_classify_fault()?;
        let predictions = self.served.model.predict_batch(&self.batch);
        Ok(self.served.outcome(predictions, ServedVia::Warm, 1))
    }
}

impl CollectiveModel for ServedBaseline {
    fn method(&self) -> &'static str {
        self.spec.method()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn capabilities(&self) -> ModelCapabilities {
        ModelCapabilities {
            reseedable: false,
            divergence_watchdog: false,
            frozen_fallback: true,
            // Baselines keep no durable checkpoint: the snapshot container
            // persists the HDP posterior, which per-instance methods do not
            // have. An attached SnapshotStore is explicitly unsupported.
            durable_snapshot: false,
        }
    }

    fn fit(&mut self, train: &TrainSet) -> hdp_osr_core::Result<()> {
        *self = ServedBaseline::train(self.spec, train)
            .map_err(|e| OsrError::InvalidTrainingSet(e.to_string()))?;
        Ok(())
    }

    fn warm_session<'s>(
        &'s self,
        batch: &[Vec<f64>],
    ) -> std::result::Result<Box<dyn CollectiveSession + 's>, AttemptError> {
        Ok(Box::new(BaselineSession { served: self, batch: batch.to_vec() }))
    }

    fn classify_frozen(
        &self,
        batch: &[Vec<f64>],
        reason: DegradeReason,
        attempts: u32,
    ) -> Option<ClassifyOutcome> {
        // The frozen fallback *is* the normal deterministic prediction; it
        // bypasses the fault site so an injected divergence cannot starve
        // the degraded answer.
        let predictions = self.model.predict_batch(batch);
        Some(self.outcome(predictions, ServedVia::Degraded { reason }, attempts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![cx + 0.5 * rng.gen::<f64>() - 0.25, cy + 0.5 * rng.gen::<f64>() - 0.25]
            })
            .collect()
    }

    fn scenario() -> (TrainSet, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(5);
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(&mut rng, -5.0, 0.0, 30), blob(&mut rng, 5.0, 0.0, 30)],
        };
        let mut test = blob(&mut rng, -5.0, 0.0, 6);
        test.extend(blob(&mut rng, 0.0, 12.0, 6)); // unknowns
        (train, test)
    }

    #[test]
    fn every_baseline_trains_and_reports_dimensions() {
        let (train, test) = scenario();
        for spec in BaselineSpec::default_lineup() {
            let served = ServedBaseline::train(spec, &train).unwrap();
            assert_eq!(CollectiveModel::dim(&served), 2, "{}", spec.method());
            let caps = served.capabilities();
            assert!(!caps.reseedable);
            assert!(caps.frozen_fallback);
            let mut session = served.warm_session(&test).unwrap();
            assert_eq!(session.sweeps_planned(), 0);
            let outcome = session.finish().unwrap();
            assert_eq!(outcome.predictions.len(), test.len());
            assert_eq!(outcome.method, spec.method());
            assert_eq!(outcome.served_via, ServedVia::Warm);
        }
    }

    #[test]
    fn session_predictions_match_direct_predict_batch() {
        let (train, test) = scenario();
        let spec = BaselineSpec::Osnn(OsnnParams::default());
        let served = ServedBaseline::train(spec, &train).unwrap();
        let direct = served.model.predict_batch(&test);
        let mut session = served.warm_session(&test).unwrap();
        let outcome = session.finish().unwrap();
        assert_eq!(outcome.predictions, direct);
        // The frozen fallback is the same deterministic computation.
        let frozen = served
            .classify_frozen(&test, DegradeReason::RetriesExhausted, 3)
            .unwrap();
        assert_eq!(frozen.predictions, direct);
        assert!(frozen.served_via.is_degraded());
        assert_eq!(frozen.attempts, 3);
    }

    #[test]
    fn outcomes_use_the_degenerate_dish_vocabulary() {
        let (train, test) = scenario();
        let spec = BaselineSpec::Osnn(OsnnParams::default());
        let served = ServedBaseline::train(spec, &train).unwrap();
        let outcome = served.warm_session(&test).unwrap().finish().unwrap();
        let n_classes = train.n_classes();
        for (pred, &dish) in outcome.predictions.iter().zip(&outcome.test_dishes) {
            match pred {
                Prediction::Known(c) => assert_eq!(dish, *c),
                Prediction::Unknown => assert_eq!(dish, n_classes),
            }
        }
        assert_eq!(outcome.report.known.len(), n_classes);
        let total_prop =
            outcome.report.test_known_proportion + outcome.report.test_new_proportion;
        assert!((total_prop - 1.0).abs() < 1e-12);
        assert_eq!(outcome.gamma, 0.0);
        assert_eq!(outcome.log_likelihood, 0.0);
    }

    #[test]
    fn refit_replaces_the_model_in_place() {
        let (train, test) = scenario();
        let spec = BaselineSpec::Osnn(OsnnParams::default());
        let mut served = ServedBaseline::train(spec, &train).unwrap();
        let before = served.model.predict_batch(&test);
        // Refit on a shifted training set: the unknowns become class 0.
        let mut rng = StdRng::seed_from_u64(9);
        let train2 = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(&mut rng, 0.0, 12.0, 30), blob(&mut rng, 5.0, 0.0, 30)],
        };
        CollectiveModel::fit(&mut served, &train2).unwrap();
        let after = served.model.predict_batch(&test);
        assert_ne!(before, after, "refit must change the decision surface");
    }
}
