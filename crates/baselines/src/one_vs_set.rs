//! The 1-vs-Set machine (Scheirer et al. 2013; paper §2.1).
//!
//! Per class, a linear SVM provides the base hyperplane `A`; a second plane
//! `B` parallel to it closes the positive half-space into a *slab*. The two
//! plane offsets are chosen over the positive training scores to minimize
//! the linear-slab open-space-risk objective (paper Eq. 1)
//!
//! ```text
//! R_O = (δ_B − δ_A)/δ⁺  +  δ⁺/(δ_B − δ_A)  +  p_A ω_A  +  p_B ω_B
//! ```
//!
//! plus the empirical risk of training points leaving the slab. A test point
//! is claimed by a class when its decision score falls inside that class's
//! slab; with multiple claims the deepest slab wins, with none the point is
//! rejected — although, as the paper stresses, the slab still has infinite
//! volume in the remaining directions, so the open-space risk never reaches
//! zero (Fig. 1's classes ?2/?3 stay misclassified).

use serde::{Deserialize, Serialize};

use osr_dataset::protocol::{Prediction, TrainSet};
use osr_svm::{BinarySvm, Kernel, SvmParams};

use crate::{validate_training, OpenSetClassifier, Result};

/// 1-vs-Set hyperparameters ("the default setting in the code provided by
/// the authors", §4.1.2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OneVsSetParams {
    /// Soft-margin C of the underlying linear SVM.
    pub c: f64,
    /// Pressure on plane A: weight of the margin space ω_A (fraction of
    /// positives pushed outside when A moves inward).
    pub p_a: f64,
    /// Pressure on plane B: weight of the margin space ω_B.
    pub p_b: f64,
    /// Weight of the empirical risk term (λ_r of the open-set risk
    /// formulation).
    pub lambda_r: f64,
}

impl Default for OneVsSetParams {
    fn default() -> Self {
        Self { c: 1.0, p_a: 1.0, p_b: 1.0, lambda_r: 1.0 }
    }
}

/// One class's slab: the shared linear SVM scores bounded to `[δ_A, δ_B]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slab {
    svm: BinarySvm,
    delta_a: f64,
    delta_b: f64,
}

impl Slab {
    /// Signed depth of `x` inside the slab (≥ 0 means inside), normalized
    /// by slab width so depths are comparable across classes.
    fn depth(&self, x: &[f64]) -> f64 {
        let f = self.svm.decision_value(x);
        let width = (self.delta_b - self.delta_a).max(1e-12);
        ((f - self.delta_a).min(self.delta_b - f)) / width
    }
}

/// The trained 1-vs-Set machine (one slab per known class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneVsSet {
    slabs: Vec<Slab>,
}

impl OneVsSet {
    /// Train one slab per class of `train`.
    ///
    /// # Errors
    /// Fails on malformed data or if any underlying SVM cannot be trained.
    pub fn train(train: &TrainSet, params: &OneVsSetParams) -> Result<Self> {
        let (points, labels) = train.flattened();
        let n_classes = train.n_classes();
        validate_training(&points, &labels, n_classes)?;
        if n_classes < 2 {
            return Err(crate::BaselineError::InvalidTrainingSet(
                "1-vs-Set needs at least two classes for its one-vs-rest SVMs".into(),
            ));
        }
        if !(params.c > 0.0) {
            return Err(crate::BaselineError::InvalidParameter(format!(
                "C must be positive, got {}",
                params.c
            )));
        }
        let svm_params = SvmParams::new(params.c, Kernel::Linear);
        let mut slabs = Vec::with_capacity(n_classes);
        for class in 0..n_classes {
            let positive: Vec<bool> = labels.iter().map(|&l| l == class).collect();
            let svm = BinarySvm::train(&points, &positive, &svm_params)?;
            let pos_scores: Vec<f64> = points
                .iter()
                .zip(&positive)
                .filter(|&(_, &p)| p)
                .map(|(x, _)| svm.decision_value(x))
                .collect();
            let neg_scores: Vec<f64> = points
                .iter()
                .zip(&positive)
                .filter(|&(_, &p)| !p)
                .map(|(x, _)| svm.decision_value(x))
                .collect();
            let (delta_a, delta_b) = refine_slab(&pos_scores, &neg_scores, params);
            slabs.push(Slab { svm, delta_a, delta_b });
        }
        Ok(Self { slabs })
    }

    /// The refined plane offsets `(δ_A, δ_B)` for one class (diagnostics).
    pub fn slab_bounds(&self, class: usize) -> (f64, f64) {
        (self.slabs[class].delta_a, self.slabs[class].delta_b)
    }

    /// Primal weight vector of one class's linear SVM (diagnostics; the
    /// slab's planes are both orthogonal to it).
    pub fn linear_weights(&self, class: usize) -> Vec<f64> {
        self.slabs[class]
            .svm
            .linear_weights()
            .expect("1-vs-Set machines are linear by construction")
    }
}

/// Choose `(δ_A, δ_B)` over candidate positions (quantiles of the positive
/// scores, slightly widened) minimizing Eq. 1 plus empirical risk.
fn refine_slab(pos_scores: &[f64], neg_scores: &[f64], params: &OneVsSetParams) -> (f64, f64) {
    let mut sorted = pos_scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite SVM scores"));
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let span = (hi - lo).max(1e-9);
    // δ⁺: separation needed to account for all positive data.
    let delta_plus = span;

    // Candidate grid: quantiles of the positive scores plus margins.
    let mut candidates: Vec<f64> = (0..=20)
        .map(|q| {
            let pos = q as f64 / 20.0 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    candidates.push(lo - 0.1 * span);
    candidates.push(hi + 0.1 * span);
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite candidates"));
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let risk = |a: f64, b: f64| -> f64 {
        if b - a < 1e-9 {
            return f64::INFINITY;
        }
        let width = b - a;
        // Margin spaces: fraction of positives excluded by each plane.
        let omega_a = pos_scores.iter().filter(|&&s| s < a).count() as f64
            / pos_scores.len() as f64;
        let omega_b = pos_scores.iter().filter(|&&s| s > b).count() as f64
            / pos_scores.len() as f64;
        // Empirical risk: negatives captured inside the slab.
        let neg_inside = if neg_scores.is_empty() {
            0.0
        } else {
            neg_scores.iter().filter(|&&s| s >= a && s <= b).count() as f64
                / neg_scores.len() as f64
        };
        width / delta_plus + delta_plus / width
            + params.p_a * omega_a
            + params.p_b * omega_b
            + params.lambda_r * (omega_a + omega_b + neg_inside)
    };

    let mut best = (lo, hi);
    let mut best_risk = risk(lo, hi);
    for (i, &a) in candidates.iter().enumerate() {
        for &b in &candidates[i + 1..] {
            let r = risk(a, b);
            if r < best_risk {
                best_risk = r;
                best = (a, b);
            }
        }
    }
    best
}

impl OpenSetClassifier for OneVsSet {
    fn name(&self) -> &'static str {
        "1-vs-Set"
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let mut best: Option<(usize, f64)> = None;
        for (class, slab) in self.slabs.iter().enumerate() {
            let depth = slab.depth(x);
            if depth >= 0.0 && best.is_none_or(|(_, d)| depth > d) {
                best = Some((class, depth));
            }
        }
        match best {
            Some((class, _)) => Prediction::Known(class),
            None => Prediction::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + 0.5 * sampling::standard_normal(rng),
                    cy + 0.5 * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    fn train_set(rng: &mut StdRng) -> TrainSet {
        TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(rng, -4.0, 0.0, 50), blob(rng, 4.0, 0.0, 50)],
        }
    }

    #[test]
    fn classifies_training_regions() {
        let mut rng = StdRng::seed_from_u64(1);
        let ts = train_set(&mut rng);
        let m = OneVsSet::train(&ts, &OneVsSetParams::default()).unwrap();
        assert_eq!(m.predict(&[-4.0, 0.0]), Prediction::Known(0));
        assert_eq!(m.predict(&[4.0, 0.0]), Prediction::Known(1));
    }

    #[test]
    fn rejects_points_beyond_the_far_plane() {
        let mut rng = StdRng::seed_from_u64(2);
        let ts = train_set(&mut rng);
        let m = OneVsSet::train(&ts, &OneVsSetParams::default()).unwrap();
        // Far along class 1's positive direction: beyond plane B of class 1
        // and on the negative side of class 0 ⇒ unknown.
        assert_eq!(m.predict(&[60.0, 0.0]), Prediction::Unknown);
        assert_eq!(m.predict(&[-60.0, 0.0]), Prediction::Unknown);
    }

    #[test]
    fn slab_is_bounded_on_both_sides() {
        let mut rng = StdRng::seed_from_u64(3);
        let ts = train_set(&mut rng);
        let m = OneVsSet::train(&ts, &OneVsSetParams::default()).unwrap();
        for class in 0..2 {
            let (a, b) = m.slab_bounds(class);
            assert!(a < b, "class {class}: δ_A = {a} must be below δ_B = {b}");
            assert!(b.is_finite() && a.is_finite());
        }
    }

    #[test]
    fn open_space_risk_is_lower_than_plain_svm() {
        // The slab must reject at least some of the space the raw SVM labels
        // positive (everything with f(x) > 0 out to infinity).
        let mut rng = StdRng::seed_from_u64(4);
        let ts = train_set(&mut rng);
        let m = OneVsSet::train(&ts, &OneVsSetParams::default()).unwrap();
        // The raw one-vs-rest SVM of class 1 would claim x = (60, 0); the
        // slab must not.
        assert_eq!(m.predict(&[60.0, 0.0]), Prediction::Unknown);
        // But points near the class are still claimed.
        assert_eq!(m.predict(&[4.5, 0.3]), Prediction::Known(1));
    }

    #[test]
    fn lateral_open_space_risk_remains() {
        // Fig. 1's point: the slab is infinite in directions parallel to the
        // hyperplanes, so unknowns that project into the slab are STILL
        // misclassified. This is the failure mode HDP-OSR fixes.
        let mut rng = StdRng::seed_from_u64(5);
        let ts = train_set(&mut rng);
        let m = OneVsSet::train(&ts, &OneVsSetParams::default()).unwrap();
        // Displace a claimed point exactly along class 1's hyperplanes
        // (orthogonal to w): the decision value is unchanged, so the slab
        // still claims it however far away it is.
        let w = m.linear_weights(1);
        let lateral = [-w[1], w[0]];
        let norm = (lateral[0] * lateral[0] + lateral[1] * lateral[1]).sqrt();
        let t = 100.0 / norm;
        let probe = [4.0 + t * lateral[0], t * lateral[1]];
        // Only meaningful if class 0's slab doesn't accidentally claim it.
        let pred = m.predict(&probe);
        assert_ne!(
            pred,
            Prediction::Unknown,
            "the 1-vs-Set slab should (wrongly) claim laterally displaced unknowns"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let ts = TrainSet { class_ids: vec![0], classes: vec![vec![vec![0.0, 0.0]]] };
        assert!(OneVsSet::train(&ts, &OneVsSetParams::default()).is_err());
        let mut rng = StdRng::seed_from_u64(6);
        let ts = train_set(&mut rng);
        let bad = OneVsSetParams { c: 0.0, ..Default::default() };
        assert!(OneVsSet::train(&ts, &bad).is_err());
    }
}
