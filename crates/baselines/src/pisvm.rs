//! P_I-SVM — multi-class open set recognition using probability of
//! inclusion (Jain et al. 2014; paper §1/§4).
//!
//! Per class, a one-vs-rest binary C-SVC provides decision scores; the
//! statistical extreme value theory argument says the *lower tail* of the
//! positive class's scores (the positives nearest the decision boundary)
//! follows a Weibull, whose CDF becomes the class's probability-of-inclusion
//! model. A sample is labeled `argmax_y P_I(y|x)` when that probability
//! clears the threshold δ (grid-searched over 10⁻⁷…10⁻¹ in the paper) and
//! rejected otherwise.

use serde::{Deserialize, Serialize};

use osr_dataset::protocol::{Prediction, TrainSet};
use osr_stats::weibull::{TailSide, WeibullFit};
use osr_svm::{BinarySvm, Kernel, SvmParams};

use crate::{validate_training, OpenSetClassifier, Result};

/// P_I-SVM hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PiSvmParams {
    /// Binary C-SVC soft margin.
    pub c: f64,
    /// RBF bandwidth γ (`None` ⇒ 1/d heuristic).
    pub gamma: Option<f64>,
    /// Acceptance threshold δ on the probability of inclusion.
    pub delta: f64,
    /// Fraction of positive scores treated as the EVT tail.
    pub tail_fraction: f64,
}

impl Default for PiSvmParams {
    fn default() -> Self {
        Self { c: 1.0, gamma: None, delta: 0.05, tail_fraction: 0.5 }
    }
}

/// One class's inclusion model.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct InclusionModel {
    svm: BinarySvm,
    calibrator: Option<WeibullFit>,
    /// Fallback threshold when the Weibull fit is degenerate.
    fallback: f64,
}

impl InclusionModel {
    fn probability(&self, x: &[f64]) -> f64 {
        let f = self.svm.decision_value(x);
        match &self.calibrator {
            Some(cal) => cal.probability(f),
            None => {
                if f >= self.fallback {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Trained P_I-SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PiSvm {
    models: Vec<InclusionModel>,
    delta: f64,
}

impl PiSvm {
    /// Train one inclusion model per class.
    ///
    /// # Errors
    /// Fails on malformed training data, fewer than two classes, or SVM
    /// training failure.
    pub fn train(train: &TrainSet, params: &PiSvmParams) -> Result<Self> {
        let (points, labels) = train.flattened();
        let n_classes = train.n_classes();
        validate_training(&points, &labels, n_classes)?;
        if n_classes < 2 {
            return Err(crate::BaselineError::InvalidTrainingSet(
                "P_I-SVM's one-vs-rest stage needs ≥ 2 classes".into(),
            ));
        }
        if !(params.tail_fraction > 0.0 && params.tail_fraction <= 1.0) {
            return Err(crate::BaselineError::InvalidParameter(format!(
                "tail_fraction must be in (0,1], got {}",
                params.tail_fraction
            )));
        }
        let kernel = match params.gamma {
            Some(g) => Kernel::Rbf { gamma: g },
            None => Kernel::rbf_for_data(&points),
        };
        let svm_params = SvmParams::new(params.c, kernel);
        let mut models = Vec::with_capacity(n_classes);
        for class in 0..n_classes {
            let positive: Vec<bool> = labels.iter().map(|&l| l == class).collect();
            let svm = BinarySvm::train(&points, &positive, &svm_params)?;
            let pos_scores: Vec<f64> = points
                .iter()
                .zip(&positive)
                .filter(|&(_, &p)| p)
                .map(|(x, _)| svm.decision_value(x))
                .collect();
            let calibrator =
                WeibullFit::fit_tail(&pos_scores, TailSide::Low, params.tail_fraction, 8).ok();
            let fallback = pos_scores.iter().sum::<f64>() / pos_scores.len().max(1) as f64;
            models.push(InclusionModel { svm, calibrator, fallback });
        }
        Ok(Self { models, delta: params.delta })
    }

    /// Probability of inclusion for every class.
    pub fn inclusion_probabilities(&self, x: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| m.probability(x)).collect()
    }
}

impl OpenSetClassifier for PiSvm {
    fn name(&self) -> &'static str {
        "PI-SVM"
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let probs = self.inclusion_probabilities(x);
        let best = osr_linalg::vector::argmax(&probs).expect("≥2 classes");
        if probs[best] >= self.delta {
            Prediction::Known(best)
        } else {
            Prediction::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + 0.5 * sampling::standard_normal(rng),
                    cy + 0.5 * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    fn train_set(rng: &mut StdRng) -> TrainSet {
        TrainSet {
            class_ids: vec![0, 1, 2],
            classes: vec![
                blob(rng, -5.0, 0.0, 50),
                blob(rng, 5.0, 0.0, 50),
                blob(rng, 0.0, 6.0, 50),
            ],
        }
    }

    #[test]
    fn classifies_class_centers() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = PiSvm::train(&train_set(&mut rng), &PiSvmParams::default()).unwrap();
        assert_eq!(m.predict(&[-5.0, 0.0]), Prediction::Known(0));
        assert_eq!(m.predict(&[5.0, 0.0]), Prediction::Known(1));
        assert_eq!(m.predict(&[0.0, 6.0]), Prediction::Known(2));
    }

    #[test]
    fn rejects_far_unknowns() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = PiSvm::train(&train_set(&mut rng), &PiSvmParams::default()).unwrap();
        assert_eq!(m.predict(&[0.0, -40.0]), Prediction::Unknown);
        assert_eq!(m.predict(&[50.0, 50.0]), Prediction::Unknown);
    }

    #[test]
    fn inclusion_probabilities_are_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = PiSvm::train(&train_set(&mut rng), &PiSvmParams::default()).unwrap();
        for x in [[-5.0, 0.0], [0.0, 0.0], [20.0, -10.0]] {
            for p in m.inclusion_probabilities(&x) {
                assert!((0.0..=1.0).contains(&p), "p = {p} at {x:?}");
            }
        }
    }

    #[test]
    fn delta_controls_rejection() {
        let mut rng = StdRng::seed_from_u64(4);
        let ts = train_set(&mut rng);
        let strict = PiSvm::train(&ts, &PiSvmParams { delta: 0.999, ..Default::default() }).unwrap();
        let lenient =
            PiSvm::train(&ts, &PiSvmParams { delta: 1e-7, ..Default::default() }).unwrap();
        // Count acceptances over a probe grid straddling the classes.
        let probes: Vec<Vec<f64>> =
            (0..40).map(|i| vec![-8.0 + 0.4 * i as f64, 1.0]).collect();
        let strict_acc = probes
            .iter()
            .filter(|p| matches!(strict.predict(p), Prediction::Known(_)))
            .count();
        let lenient_acc = probes
            .iter()
            .filter(|p| matches!(lenient.predict(p), Prediction::Known(_)))
            .count();
        assert!(
            lenient_acc > strict_acc,
            "lenient δ accepts {lenient_acc} ≤ strict {strict_acc}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let ts = train_set(&mut rng);
        assert!(PiSvm::train(&ts, &PiSvmParams { tail_fraction: 0.0, ..Default::default() })
            .is_err());
        let single = TrainSet {
            class_ids: vec![0],
            classes: vec![vec![vec![0.0, 0.0], vec![1.0, 1.0]]],
        };
        assert!(PiSvm::train(&single, &PiSvmParams::default()).is_err());
    }
}
