//! OSNN — the open-set nearest-neighbour distance-ratio classifier
//! (Júnior et al. 2017; paper §2.3, Eq. 3).
//!
//! For a test sample `s`, find its nearest neighbour `t` and then the
//! nearest neighbour `u` whose label differs from `t`'s. If the ratio
//! `v = d(s,t) / d(s,u)` is at most the threshold σ, the sample takes `t`'s
//! label; otherwise it sits ambiguously between classes and is rejected as
//! unknown.

use serde::{Deserialize, Serialize};

use osr_dataset::protocol::Prediction;

use crate::{validate_training, OpenSetClassifier, Result};

/// OSNN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsnnParams {
    /// Distance-ratio threshold σ ∈ (0, 1); the only parameter the method
    /// needs (optimized on the validation simulations in the paper).
    pub sigma: f64,
}

impl Default for OsnnParams {
    fn default() -> Self {
        Self { sigma: 0.8 }
    }
}

/// A trained (memorized) OSNN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Osnn {
    points: Vec<Vec<f64>>,
    labels: Vec<usize>,
    sigma: f64,
}

impl Osnn {
    /// "Train" (memorize) the classifier.
    ///
    /// # Errors
    /// Rejects malformed training data and σ outside `(0, 1)`. OSNN also
    /// needs at least two distinct labels, or no second-class neighbour
    /// exists.
    pub fn train(
        points: &[&[f64]],
        labels: &[usize],
        n_classes: usize,
        params: &OsnnParams,
    ) -> Result<Self> {
        validate_training(points, labels, n_classes)?;
        if !(params.sigma > 0.0 && params.sigma < 1.0) {
            return Err(crate::BaselineError::InvalidParameter(format!(
                "sigma must be in (0,1), got {}",
                params.sigma
            )));
        }
        if n_classes < 2 {
            return Err(crate::BaselineError::InvalidTrainingSet(
                "OSNN needs at least two classes".into(),
            ));
        }
        Ok(Self {
            points: points.iter().map(|p| p.to_vec()).collect(),
            labels: labels.to_vec(),
            sigma: params.sigma,
        })
    }

    /// The configured distance-ratio threshold σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl OpenSetClassifier for Osnn {
    fn name(&self) -> &'static str {
        "OSNN"
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        // Nearest neighbour t.
        let mut t_dist = f64::INFINITY;
        let mut t_label = 0usize;
        for (p, &l) in self.points.iter().zip(&self.labels) {
            let d = osr_linalg::vector::dist_sq(p, x);
            if d < t_dist {
                t_dist = d;
                t_label = l;
            }
        }
        // Nearest neighbour u with θ(u) ≠ θ(t).
        let mut u_dist = f64::INFINITY;
        for (p, &l) in self.points.iter().zip(&self.labels) {
            if l == t_label {
                continue;
            }
            let d = osr_linalg::vector::dist_sq(p, x);
            if d < u_dist {
                u_dist = d;
            }
        }
        if !u_dist.is_finite() {
            // Single-label corpus (prevented at training time, but stay safe).
            return Prediction::Known(t_label);
        }
        // Ratio of Euclidean distances (squared distances need a sqrt).
        let v = (t_dist / u_dist).sqrt();
        if v <= self.sigma {
            Prediction::Known(t_label)
        } else {
            Prediction::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 1-d classes at 0 and 10.
    fn model(sigma: f64) -> Osnn {
        let pts = [vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        Osnn::train(&refs, &[0, 0, 1, 1], 2, &OsnnParams { sigma }).unwrap()
    }

    #[test]
    fn points_near_a_class_are_accepted() {
        let m = model(0.5);
        assert_eq!(m.predict(&[0.2]), Prediction::Known(0));
        assert_eq!(m.predict(&[10.6]), Prediction::Known(1));
    }

    #[test]
    fn points_between_classes_are_rejected() {
        let m = model(0.5);
        // Midpoint: d(s,t)/d(s,u) ≈ 4.5/5.5 ≈ 0.82 > 0.5 ⇒ unknown.
        assert_eq!(m.predict(&[5.5]), Prediction::Unknown);
    }

    #[test]
    fn sigma_controls_rejection_region() {
        let loose = model(0.95);
        let strict = model(0.1);
        // Same ambiguous point: loose threshold accepts, strict rejects.
        let x = [4.0]; // ratio = 3/6 = 0.5
        assert_eq!(loose.predict(&x), Prediction::Known(0));
        assert_eq!(strict.predict(&x), Prediction::Unknown);
    }

    #[test]
    fn ratio_uses_euclidean_not_squared_distances() {
        // s = 4: t at 1 (d = 3), u at 10 (d = 6); v = 0.5 exactly.
        let m = model(0.5);
        assert_eq!(m.predict(&[4.0]), Prediction::Known(0));
        // Just past the threshold.
        let m = model(0.49);
        assert_eq!(m.predict(&[4.0]), Prediction::Unknown);
    }

    #[test]
    fn exact_training_point_is_its_own_label() {
        let m = model(0.3);
        assert_eq!(m.predict(&[0.0]), Prediction::Known(0));
    }

    #[test]
    fn train_rejects_bad_inputs() {
        let pts = [vec![0.0], vec![1.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        assert!(Osnn::train(&refs, &[0, 0], 1, &OsnnParams::default()).is_err());
        assert!(Osnn::train(&refs, &[0, 1], 2, &OsnnParams { sigma: 0.0 }).is_err());
        assert!(Osnn::train(&refs, &[0, 1], 2, &OsnnParams { sigma: 1.0 }).is_err());
        assert!(Osnn::train(&[], &[], 2, &OsnnParams::default()).is_err());
    }

    #[test]
    fn batch_prediction_matches_pointwise() {
        let m = model(0.5);
        let batch = vec![vec![0.2], vec![5.5], vec![10.9]];
        let preds = m.predict_batch(&batch);
        assert_eq!(
            preds,
            vec![Prediction::Known(0), Prediction::Unknown, Prediction::Known(1)]
        );
    }
}
