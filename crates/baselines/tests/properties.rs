//! Property-based tests for the baselines: monotonicity of their rejection
//! thresholds, prediction-domain guarantees, and agreement between batch and
//! pointwise APIs.

use osr_baselines::{
    OneVsSet, OneVsSetParams, OpenSetClassifier, Osnn, OsnnParams, PiSvm, PiSvmParams,
    Prediction, WOsvm, WOsvmParams, WSvm, WSvmParams,
};
use osr_dataset::protocol::TrainSet;
use proptest::prelude::*;

/// Deterministic three-blob training set plus probe points.
fn scene(seed: u64, n_per: usize) -> (TrainSet, Vec<Vec<f64>>) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let centers = [[-6.0, 0.0], [6.0, 0.0], [0.0, 7.0]];
    let classes: Vec<Vec<Vec<f64>>> = centers
        .iter()
        .map(|c| {
            (0..n_per).map(|_| vec![c[0] + next() * 1.6, c[1] + next() * 1.6]).collect()
        })
        .collect();
    let probes: Vec<Vec<f64>> = (0..20).map(|_| vec![next() * 24.0, next() * 24.0]).collect();
    (TrainSet { class_ids: vec![0, 1, 2], classes }, probes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn predictions_are_always_in_domain(seed in 0u64..300, n_per in 10usize..40) {
        let (train, probes) = scene(seed, n_per);
        let (pts, labels) = train.flattened();

        let methods: Vec<Box<dyn OpenSetClassifier>> = vec![
            Box::new(OneVsSet::train(&train, &OneVsSetParams::default()).unwrap()),
            Box::new(WOsvm::train(&train, &WOsvmParams::default()).unwrap()),
            Box::new(WSvm::train(&train, &WSvmParams::default()).unwrap()),
            Box::new(PiSvm::train(&train, &PiSvmParams::default()).unwrap()),
            Box::new(Osnn::train(&pts, &labels, 3, &OsnnParams::default()).unwrap()),
        ];
        for m in &methods {
            for p in &probes {
                match m.predict(p) {
                    Prediction::Known(c) => prop_assert!(c < 3, "{} out of range", m.name()),
                    Prediction::Unknown => {}
                }
            }
        }
    }

    #[test]
    fn batch_equals_pointwise(seed in 0u64..300) {
        let (train, probes) = scene(seed, 15);
        let m = PiSvm::train(&train, &PiSvmParams::default()).unwrap();
        let batch = m.predict_batch(&probes);
        for (p, expect) in probes.iter().zip(&batch) {
            prop_assert_eq!(&m.predict(p), expect);
        }
    }

    #[test]
    fn osnn_sigma_monotonicity(seed in 0u64..300) {
        // A smaller σ can only reject more: acceptance sets are nested.
        let (train, probes) = scene(seed, 15);
        let (pts, labels) = train.flattened();
        let strict = Osnn::train(&pts, &labels, 3, &OsnnParams { sigma: 0.3 }).unwrap();
        let lenient = Osnn::train(&pts, &labels, 3, &OsnnParams { sigma: 0.9 }).unwrap();
        for p in &probes {
            if matches!(strict.predict(p), Prediction::Known(_)) {
                prop_assert!(
                    matches!(lenient.predict(p), Prediction::Known(_)),
                    "lenient σ rejected a point the strict σ accepted"
                );
            }
        }
    }

    #[test]
    fn pisvm_delta_monotonicity(seed in 0u64..300) {
        let (train, probes) = scene(seed, 15);
        let strict = PiSvm::train(&train, &PiSvmParams { delta: 0.5, ..Default::default() }).unwrap();
        let lenient = PiSvm::train(&train, &PiSvmParams { delta: 1e-6, ..Default::default() }).unwrap();
        for p in &probes {
            if matches!(strict.predict(p), Prediction::Known(_)) {
                prop_assert!(matches!(lenient.predict(p), Prediction::Known(_)));
            }
        }
    }

    #[test]
    fn wsvm_posteriors_live_in_unit_interval(seed in 0u64..300) {
        let (train, probes) = scene(seed, 15);
        let m = WSvm::train(&train, &WSvmParams::default()).unwrap();
        for p in &probes {
            for q in m.posteriors(p) {
                prop_assert!((0.0..=1.0).contains(&q), "posterior {q} out of range");
            }
        }
    }

    #[test]
    fn training_points_mostly_accepted_as_their_class(seed in 0u64..300) {
        // Sanity: every method must label a clear majority of its own
        // training points correctly (they are maximally in-distribution).
        let (train, _) = scene(seed, 20);
        let (pts, labels) = train.flattened();
        let methods: Vec<Box<dyn OpenSetClassifier>> = vec![
            Box::new(OneVsSet::train(&train, &OneVsSetParams::default()).unwrap()),
            Box::new(WSvm::train(&train, &WSvmParams::default()).unwrap()),
            Box::new(PiSvm::train(&train, &PiSvmParams::default()).unwrap()),
            Box::new(Osnn::train(&pts, &labels, 3, &OsnnParams::default()).unwrap()),
        ];
        for m in &methods {
            let correct = pts
                .iter()
                .zip(&labels)
                .filter(|(p, &l)| m.predict(p) == Prediction::Known(l))
                .count();
            prop_assert!(
                correct * 10 >= pts.len() * 7,
                "{} only recovered {correct}/{} training labels",
                m.name(),
                pts.len()
            );
        }
    }
}
