//! Locking primitives for the `hdp-osr` workspace.
//!
//! Self-contained stand-in for the subset of the `parking_lot 0.12` API the
//! workspace uses (`Mutex` with an infallible `lock`). The build environment
//! has no access to crates.io, so the real `parking_lot` cannot be fetched;
//! the shim wraps [`std::sync::Mutex`] and matches parking_lot's signature by
//! ignoring lock poisoning — a poisoned mutex's data is still returned, which
//! is parking_lot's (poison-free) behavior.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking until available. Unlike
    /// [`std::sync::Mutex::lock`] this never fails: a poisoned lock (a
    /// holder panicked) still yields the data, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self` proves
    /// exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
