//! Property-based tests for the evaluation metrics: the micro-F-measure and
//! open-set accuracy must obey their defining identities for arbitrary
//! prediction/truth sequences.

use osr_dataset::protocol::{GroundTruth, Prediction};
use osr_eval::metrics::{micro_f_measure, open_set_accuracy, OpenSetConfusion};
use proptest::prelude::*;

fn prediction() -> impl Strategy<Value = Prediction> {
    prop_oneof![
        (0usize..5).prop_map(Prediction::Known),
        Just(Prediction::Unknown),
    ]
}

fn truth() -> impl Strategy<Value = GroundTruth> {
    prop_oneof![
        (0usize..5).prop_map(GroundTruth::Known),
        Just(GroundTruth::Unknown),
    ]
}

proptest! {
    #[test]
    fn metrics_are_bounded(
        pairs in prop::collection::vec((prediction(), truth()), 0..60),
    ) {
        let (preds, truths): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let f = micro_f_measure(&preds, &truths);
        let a = open_set_accuracy(&preds, &truths);
        prop_assert!((0.0..=1.0).contains(&f), "F = {f}");
        prop_assert!((0.0..=1.0).contains(&a), "acc = {a}");
    }

    #[test]
    fn accuracy_counts_correct_responses(
        pairs in prop::collection::vec((prediction(), truth()), 1..60),
    ) {
        let (preds, truths): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let correct = preds.iter().zip(&truths).filter(|(p, t)| p.is_correct(t)).count();
        let a = open_set_accuracy(&preds, &truths);
        prop_assert!((a - correct as f64 / preds.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_score_one(
        truths in prop::collection::vec(truth(), 1..60),
    ) {
        let preds: Vec<Prediction> = truths
            .iter()
            .map(|t| match t {
                GroundTruth::Known(c) => Prediction::Known(*c),
                GroundTruth::Unknown => Prediction::Unknown,
            })
            .collect();
        prop_assert_eq!(micro_f_measure(&preds, &truths), 1.0);
        prop_assert_eq!(open_set_accuracy(&preds, &truths), 1.0);
    }

    #[test]
    fn confusion_counts_partition_the_data(
        pairs in prop::collection::vec((prediction(), truth()), 0..60),
    ) {
        let (preds, truths): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let c = OpenSetConfusion::from_slices(&preds, &truths);
        prop_assert_eq!(c.total, preds.len());
        // tp + tn_rejected + errors = total, where an error is any pair that
        // is not correct; a cross-class error contributes to BOTH fp and fn.
        let errors = preds.iter().zip(&truths).filter(|(p, t)| !p.is_correct(t)).count();
        prop_assert_eq!(c.tp + c.tn_rejected + errors, c.total);
        // fp + fn ≥ errors ≥ max(fp, fn).
        prop_assert!(c.fp + c.fn_ >= errors);
        prop_assert!(errors >= c.fp.max(c.fn_));
    }

    #[test]
    fn adding_a_correct_pair_never_lowers_either_metric(
        pairs in prop::collection::vec((prediction(), truth()), 1..40),
        extra in truth(),
    ) {
        let (mut preds, mut truths): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let f_before = micro_f_measure(&preds, &truths);
        let a_before = open_set_accuracy(&preds, &truths);
        let matching = match extra {
            GroundTruth::Known(c) => Prediction::Known(c),
            GroundTruth::Unknown => Prediction::Unknown,
        };
        preds.push(matching);
        truths.push(extra);
        prop_assert!(micro_f_measure(&preds, &truths) >= f_before - 1e-12);
        prop_assert!(open_set_accuracy(&preds, &truths) >= a_before - 1e-12);
    }

    #[test]
    fn f_measure_is_harmonic_mean_of_precision_recall(
        pairs in prop::collection::vec((prediction(), truth()), 1..60),
    ) {
        let (preds, truths): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let c = OpenSetConfusion::from_slices(&preds, &truths);
        let (p, r) = (c.precision(), c.recall());
        let expect = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
        prop_assert!((c.f_measure() - expect).abs() < 1e-12);
    }
}
