//! Uniform wrapper over HDP-OSR and the five baselines, so the experiment
//! runner and the tuning phase can treat every method identically:
//! `spec + training set + test points → predictions`.
//!
//! Every method — CD-OSR *and* the per-instance baselines — is trained into
//! a boxed [`CollectiveModel`] and served through the production
//! [`BatchServer`], so the Figures 4–9 replication exercises the same
//! admission/retry/degrade pipeline that production traffic does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hdp_osr_core::{BatchServer, CollectiveModel, HdpOsr, HdpOsrConfig};
use osr_baselines::{
    BaselineSpec, OneVsSetParams, OsnnParams, PiSvmParams, ServedBaseline, WOsvmParams,
    WSvmParams,
};
use osr_dataset::protocol::{Prediction, TrainSet};

use crate::{EvalError, Result};

/// A fully parameterized method, ready to train.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum MethodSpec {
    /// The paper's contribution.
    HdpOsr(HdpOsrConfig),
    /// 1-vs-Set machine.
    OneVsSet(OneVsSetParams),
    /// W-OSVM (one-class CAP model only).
    WOsvm(WOsvmParams),
    /// Weibull-calibrated SVM.
    WSvm(WSvmParams),
    /// Probability-of-inclusion SVM.
    PiSvm(PiSvmParams),
    /// Nearest-neighbour distance ratio.
    Osnn(OsnnParams),
}

impl MethodSpec {
    /// Method name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::HdpOsr(_) => "HDP-OSR",
            Self::OneVsSet(_) => "1-vs-Set",
            Self::WOsvm(_) => "W-OSVM",
            Self::WSvm(_) => "W-SVM",
            Self::PiSvm(_) => "PI-SVM",
            Self::Osnn(_) => "OSNN",
        }
    }

    /// Train this specification into a boxed [`CollectiveModel`] ready for
    /// a [`BatchServer`].
    ///
    /// # Errors
    /// Wraps any training failure with the method name.
    pub fn fit_collective(&self, train: &TrainSet) -> Result<Box<dyn CollectiveModel>> {
        let wrap = |e: String| EvalError::Method(format!("{}: {e}", self.name()));
        let baseline = |spec: BaselineSpec| -> Result<Box<dyn CollectiveModel>> {
            Ok(Box::new(ServedBaseline::train(spec, train).map_err(|e| wrap(e.to_string()))?))
        };
        match self {
            Self::HdpOsr(cfg) => {
                Ok(Box::new(HdpOsr::fit(cfg, train).map_err(|e| wrap(e.to_string()))?))
            }
            Self::OneVsSet(p) => baseline(BaselineSpec::OneVsSet(*p)),
            Self::WOsvm(p) => baseline(BaselineSpec::WOsvm(*p)),
            Self::WSvm(p) => baseline(BaselineSpec::WSvm(*p)),
            Self::PiSvm(p) => baseline(BaselineSpec::PiSvm(*p)),
            Self::Osnn(p) => baseline(BaselineSpec::Osnn(*p)),
        }
    }

    /// Train on `train` and classify every point of `test` through the
    /// production [`BatchServer`] (single worker, one batch).
    ///
    /// The RNG seeds the server; only HDP-OSR actually consumes randomness
    /// (Gibbs sampling) — the baselines are deterministic given the data.
    /// Seeding is the caller's responsibility so trials stay reproducible.
    ///
    /// # Errors
    /// Wraps any training or serving failure with the method name.
    pub fn train_and_predict<R: Rng + ?Sized>(
        &self,
        train: &TrainSet,
        test: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<Vec<Prediction>> {
        let wrap = |e: String| EvalError::Method(format!("{}: {e}", self.name()));
        let model = self.fit_collective(train)?;
        if test.is_empty() {
            // The server's admission control rejects empty batches; an empty
            // test set is a valid no-op for an evaluation trial.
            return Ok(Vec::new());
        }
        let server = BatchServer::with_workers(model.as_ref(), 1);
        let mut results = server.classify_batches(&[test.to_vec()], rng.next_u64());
        match results.pop() {
            Some(Ok(outcome)) => Ok(outcome.predictions),
            Some(Err(e)) => Err(wrap(e.to_string())),
            None => Err(wrap("server returned no result for the test batch".into())),
        }
    }

    /// Deterministic helper: derive a fresh RNG for `(seed, trial)` and run
    /// [`train_and_predict`](Self::train_and_predict) with it.
    ///
    /// # Errors
    /// Propagates training failures.
    pub fn run_trial(
        &self,
        train: &TrainSet,
        test: &[Vec<f64>],
        seed: u64,
        trial: u64,
    ) -> Result<Vec<Prediction>> {
        let mut rng = StdRng::seed_from_u64(seed ^ trial.wrapping_mul(0x9E3779B97F4A7C15));
        self.train_and_predict(train, test, &mut rng)
    }

    /// The default specification of every method in the paper's comparison,
    /// in figure-legend order.
    pub fn paper_lineup() -> Vec<MethodSpec> {
        vec![
            Self::OneVsSet(OneVsSetParams::default()),
            Self::WOsvm(WOsvmParams::default()),
            Self::WSvm(WSvmParams::default()),
            Self::PiSvm(PiSvmParams::default()),
            Self::Osnn(OsnnParams::default()),
            Self::HdpOsr(HdpOsrConfig::default()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_stats::sampling;

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    cx + 0.5 * sampling::standard_normal(rng),
                    cy + 0.5 * sampling::standard_normal(rng),
                ]
            })
            .collect()
    }

    fn scenario() -> (TrainSet, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(1);
        let train = TrainSet {
            class_ids: vec![0, 1],
            classes: vec![blob(&mut rng, -5.0, 0.0, 40), blob(&mut rng, 5.0, 0.0, 40)],
        };
        let mut test = blob(&mut rng, -5.0, 0.0, 5);
        test.extend(blob(&mut rng, 0.0, 12.0, 5)); // unknowns
        (train, test)
    }

    #[test]
    fn every_method_trains_and_predicts() {
        let (train, test) = scenario();
        for spec in MethodSpec::paper_lineup() {
            // Shrink HDP-OSR iterations for test speed.
            let spec = match spec {
                MethodSpec::HdpOsr(mut cfg) => {
                    cfg.iterations = 5;
                    MethodSpec::HdpOsr(cfg)
                }
                other => other,
            };
            let preds = spec.run_trial(&train, &test, 7, 0).unwrap();
            assert_eq!(preds.len(), test.len(), "{} returned wrong count", spec.name());
        }
    }

    #[test]
    fn lineup_names_match_figure_legends() {
        let names: Vec<&str> = MethodSpec::paper_lineup().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["1-vs-Set", "W-OSVM", "W-SVM", "PI-SVM", "OSNN", "HDP-OSR"]);
    }

    #[test]
    fn run_trial_is_deterministic() {
        let (train, test) = scenario();
        let cfg = HdpOsrConfig { iterations: 3, ..Default::default() };
        let spec = MethodSpec::HdpOsr(cfg);
        let a = spec.run_trial(&train, &test, 42, 3).unwrap();
        let b = spec.run_trial(&train, &test, 42, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn failures_carry_the_method_name() {
        let empty = TrainSet { class_ids: vec![], classes: vec![] };
        let err = MethodSpec::Osnn(OsnnParams::default())
            .run_trial(&empty, &[], 0, 0)
            .unwrap_err();
        assert!(matches!(err, EvalError::Method(ref m) if m.starts_with("OSNN")));
    }
}
