//! The parameter-optimization phase (paper §4.1.1 step 7 and §4.1.2).
//!
//! Every candidate parameterization is trained on the fitting set `F` and
//! scored on *both* validation simulations; the winner maximizes the mean
//! of the Closed-Set and Open-Set F-measures — the "tradeoff on F-measure"
//! the paper describes. Grids follow §4.1.2, with coarse defaults so the
//! full six-method sweep stays tractable on a laptop (the paper's complete
//! 11 × 12 SVM grids are available via [`Grids::full`]).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hdp_osr_core::HdpOsrConfig;
use osr_baselines::{OneVsSetParams, OsnnParams, PiSvmParams, WOsvmParams, WSvmParams};
use osr_dataset::protocol::ValidationSplit;

use crate::methods::MethodSpec;
use crate::metrics::micro_f_measure;
use crate::Result;

/// Candidate grids for every method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grids {
    /// Candidates per method, each a complete [`MethodSpec`].
    pub candidates: Vec<Vec<MethodSpec>>,
}

impl Grids {
    /// Coarse default grids: the experiment binaries' default. Thresholds
    /// sweep the paper's 10⁻⁷…10⁻¹ decades; C sweeps three decades; σ
    /// sweeps (0,1); HDP-OSR sweeps ρ.
    pub fn coarse() -> Self {
        let mut candidates = Vec::new();

        // 1-vs-Set: "default setting in the code provided by the authors".
        candidates.push(vec![MethodSpec::OneVsSet(OneVsSetParams::default())]);

        // W-OSVM: ν sweep, δ_τ fixed at 0.001.
        candidates.push(
            [0.1, 0.05, 0.2]
                .iter()
                .map(|&nu| MethodSpec::WOsvm(WOsvmParams { nu, ..Default::default() }))
                .collect(),
        );

        // W-SVM: δ_R over the paper's decades × small C sweep (mid default
        // first for untuned runs).
        candidates.push(
            [1e-2, 1e-7, 1e-5, 1e-3, 1e-1]
                .iter()
                .flat_map(|&delta_r| {
                    [1.0, 0.5, 4.0].iter().map(move |&c| {
                        MethodSpec::WSvm(WSvmParams { c, delta_r, ..Default::default() })
                    })
                })
                .collect(),
        );

        // P_I-SVM: δ over the paper's decades × small C sweep (mid default
        // first for untuned runs).
        candidates.push(
            [1e-2, 1e-7, 1e-5, 1e-3, 1e-1]
                .iter()
                .flat_map(|&delta| {
                    [1.0, 0.5, 4.0].iter().map(move |&c| {
                        MethodSpec::PiSvm(PiSvmParams { c, delta, ..Default::default() })
                    })
                })
                .collect(),
        );

        // OSNN: σ sweep (default-quality value first: it is what runs when
        // tuning is disabled).
        candidates.push(
            [0.8, 0.3, 0.5, 0.6, 0.7, 0.9]
                .iter()
                .map(|&sigma| MethodSpec::Osnn(OsnnParams { sigma }))
                .collect(),
        );

        // HDP-OSR: (ρ, ν) sweep. See DESIGN.md: our ρ is an NIW covariance
        // scale, so the useful range sits above 1 (the paper's ρ ∈ {0.1…1}
        // scales a Wishart precision — the reciprocal convention).
        candidates.push(
            [(4.0, 0.0), (8.0, 0.0), (16.0, 0.0), (2.0, 0.0), (4.0, 3.0)]
                .iter()
                .map(|&(rho, nu_offset)| {
                    MethodSpec::HdpOsr(HdpOsrConfig { rho, nu_offset, ..Default::default() })
                })
                .collect(),
        );

        Self { candidates }
    }

    /// The paper's full grids (§4.1.2): C ∈ 2⁻⁵…2⁵, γ ∈ 2⁻⁸…2³, thresholds
    /// 10⁻⁷…10⁻¹, ν ∈ {d, …, d+20} (offset 0…20), ρ ∈ {0.1, …, 1.0}.
    /// Orders of magnitude slower than [`Grids::coarse`]; provided for
    /// completeness.
    pub fn full() -> Self {
        let cs: Vec<f64> = (-5..=5).map(|e| 2.0f64.powi(e)).collect();
        let gammas: Vec<f64> = (-8..=3).map(|e| 2.0f64.powi(e)).collect();
        let deltas: Vec<f64> = (1..=7).map(|e| 10.0f64.powi(-e)).collect();

        let mut candidates = Vec::new();
        candidates.push(vec![MethodSpec::OneVsSet(OneVsSetParams::default())]);
        candidates.push(
            [0.02, 0.05, 0.1, 0.2, 0.4]
                .iter()
                .map(|&nu| MethodSpec::WOsvm(WOsvmParams { nu, ..Default::default() }))
                .collect(),
        );
        let mut wsvm = Vec::new();
        let mut pisvm = Vec::new();
        for &c in &cs {
            for &g in &gammas {
                for &d in &deltas {
                    wsvm.push(MethodSpec::WSvm(WSvmParams {
                        c,
                        gamma: Some(g),
                        delta_r: d,
                        ..Default::default()
                    }));
                    pisvm.push(MethodSpec::PiSvm(PiSvmParams {
                        c,
                        gamma: Some(g),
                        delta: d,
                        ..Default::default()
                    }));
                }
            }
        }
        candidates.push(wsvm);
        candidates.push(pisvm);
        candidates.push(
            (1..20)
                .map(|i| MethodSpec::Osnn(OsnnParams { sigma: i as f64 * 0.05 }))
                .collect(),
        );
        candidates.push(
            (1..=10)
                .flat_map(|r| {
                    [0.0, 5.0, 10.0, 20.0].iter().map(move |&nu_off| {
                        MethodSpec::HdpOsr(HdpOsrConfig {
                            // ρ grid: 10 values spanning the covariance-scale
                            // convention (0.8…8.0, i.e. the paper's precision
                            // ρ ∈ {0.1…1} mapped through the reciprocal).
                            rho: r as f64 * 0.8,
                            nu_offset: nu_off,
                            ..Default::default()
                        })
                    })
                })
                .collect(),
        );
        Self { candidates }
    }
}

/// Outcome of tuning one method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunedMethod {
    /// The winning specification.
    pub spec: MethodSpec,
    /// Its F-measure on the Closed-Set simulation.
    pub f_closed: f64,
    /// Its F-measure on the Open-Set simulation.
    pub f_open: f64,
}

impl TunedMethod {
    /// The tradeoff score that selected this candidate.
    pub fn score(&self) -> f64 {
        0.5 * (self.f_closed + self.f_open)
    }
}

/// Tune one method family: train each candidate on `val.fitting`, score on
/// both simulations, keep the best mean F-measure. Candidates that fail to
/// train (degenerate parameterizations) are skipped.
///
/// # Errors
/// Fails when `candidates` is empty or *every* candidate fails.
pub fn tune_method(
    candidates: &[MethodSpec],
    val: &ValidationSplit,
    seed: u64,
) -> Result<TunedMethod> {
    if candidates.is_empty() {
        return Err(crate::EvalError::InvalidConfig("no candidates to tune".into()));
    }
    let mut best: Option<TunedMethod> = None;
    let mut last_err = None;
    for (i, spec) in candidates.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        let closed = match spec.train_and_predict(&val.fitting, &val.closed.points, &mut rng) {
            Ok(p) => p,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let open = match spec.train_and_predict(&val.fitting, &val.open.points, &mut rng) {
            Ok(p) => p,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let cand = TunedMethod {
            spec: *spec,
            f_closed: micro_f_measure(&closed, &val.closed.truth),
            f_open: micro_f_measure(&open, &val.open.truth),
        };
        if best.as_ref().is_none_or(|b| cand.score() > b.score()) {
            best = Some(cand);
        }
    }
    best.ok_or_else(|| {
        last_err.unwrap_or_else(|| crate::EvalError::Method("all candidates failed".into()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_dataset::protocol::{OpenSetSplit, SplitConfig};
    use osr_dataset::synthetic;

    fn validation() -> ValidationSplit {
        let mut rng = StdRng::seed_from_u64(3);
        let data = synthetic::pendigits_config().scaled(0.03).generate(&mut rng);
        let split = OpenSetSplit::sample(&data, &SplitConfig::new(5, 0), &mut rng).unwrap();
        ValidationSplit::sample(&split.train, &mut rng).unwrap()
    }

    #[test]
    fn tuning_picks_a_reasonable_osnn_sigma() {
        let val = validation();
        let sigmas: Vec<MethodSpec> = [0.01, 0.5, 0.7, 0.9]
            .iter()
            .map(|&sigma| MethodSpec::Osnn(OsnnParams { sigma }))
            .collect();
        let tuned = tune_method(&sigmas, &val, 1).unwrap();
        // σ = 0.01 rejects nearly everything — terrible closed-set F, so it
        // must not win.
        match tuned.spec {
            MethodSpec::Osnn(p) => assert!(p.sigma > 0.1, "picked degenerate σ = {}", p.sigma),
            other => panic!("wrong family: {other:?}"),
        }
        assert!(tuned.f_closed > 0.5, "closed F {:.3}", tuned.f_closed);
    }

    #[test]
    fn tuning_skips_failing_candidates() {
        let val = validation();
        // First candidate has an invalid σ and fails to train; the second
        // must still win.
        let candidates = vec![
            MethodSpec::Osnn(OsnnParams { sigma: -1.0 }),
            MethodSpec::Osnn(OsnnParams { sigma: 0.7 }),
        ];
        let tuned = tune_method(&candidates, &val, 1).unwrap();
        assert!(matches!(tuned.spec, MethodSpec::Osnn(p) if p.sigma == 0.7));
    }

    #[test]
    fn tuning_with_no_candidates_errors() {
        let val = validation();
        assert!(tune_method(&[], &val, 0).is_err());
    }

    #[test]
    fn tuning_with_all_failing_candidates_errors() {
        let val = validation();
        let candidates = vec![MethodSpec::Osnn(OsnnParams { sigma: 2.0 })];
        assert!(tune_method(&candidates, &val, 0).is_err());
    }

    #[test]
    fn coarse_grids_cover_all_six_methods() {
        let g = Grids::coarse();
        assert_eq!(g.candidates.len(), 6);
        let names: Vec<&str> = g.candidates.iter().map(|c| c[0].name()).collect();
        assert_eq!(names, vec!["1-vs-Set", "W-OSVM", "W-SVM", "PI-SVM", "OSNN", "HDP-OSR"]);
        assert!(g.candidates.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn full_grids_match_paper_cardinalities() {
        let g = Grids::full();
        // W-SVM: 11 C × 12 γ × 7 δ_R = 924.
        assert_eq!(g.candidates[2].len(), 924);
        assert_eq!(g.candidates[3].len(), 924);
    }
}
