//! Experiment artifacts: serializable result bundles, JSON/TSV export, and
//! markdown rendering for `EXPERIMENTS.md`-style reports.

use serde::{Deserialize, Serialize};

use crate::experiment::MethodResult;
use crate::Result;

/// A complete figure-reproduction artifact: everything needed to replot or
/// re-verify one of the paper's figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Figure id, e.g. "fig6".
    pub figure: String,
    /// Dataset name.
    pub dataset: String,
    /// What the paper's figure shows, paraphrased.
    pub paper_expectation: String,
    /// Settings string (trials/seed/scale/tune) for provenance.
    pub settings: String,
    /// All sweep rows.
    pub rows: Vec<MethodResult>,
}

impl FigureReport {
    /// Serialize to pretty JSON.
    ///
    /// # Errors
    /// Propagates serializer failures (cannot happen for these types in
    /// practice).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| crate::EvalError::InvalidConfig(format!("serialize report: {e}")))
    }

    /// Parse back from JSON.
    ///
    /// # Errors
    /// Fails on malformed input.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s)
            .map_err(|e| crate::EvalError::InvalidConfig(format!("parse report: {e}")))
    }

    /// Distinct openness values, ascending.
    pub fn opennesses(&self) -> Vec<f64> {
        let mut o: Vec<f64> = self.rows.iter().map(|r| r.openness).collect();
        o.sort_by(|a, b| a.partial_cmp(b).expect("finite openness"));
        o.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        o
    }

    /// Distinct method names in first-appearance order.
    pub fn methods(&self) -> Vec<String> {
        let mut m: Vec<String> = Vec::new();
        for r in &self.rows {
            if !m.contains(&r.method) {
                m.push(r.method.clone());
            }
        }
        m
    }

    /// Look up one cell of the sweep grid.
    pub fn row(&self, method: &str, openness: f64) -> Option<&MethodResult> {
        self.rows.iter().find(|r| r.method == method && (r.openness - openness).abs() < 1e-12)
    }

    /// Render a markdown table: methods × openness, `mean ± std` cells.
    pub fn to_markdown(&self, metric: ReportMetric) -> String {
        use std::fmt::Write;
        let opennesses = self.opennesses();
        let mut out = String::new();
        let _ = write!(out, "| method |");
        for o in &opennesses {
            let _ = write!(out, " {:.1}% |", o * 100.0);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &opennesses {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for m in self.methods() {
            let _ = write!(out, "| {m} |");
            for &o in &opennesses {
                match self.row(&m, o) {
                    Some(r) => {
                        let v = match metric {
                            ReportMetric::FMeasure => &r.f_measure,
                            ReportMetric::Accuracy => &r.accuracy,
                        };
                        let _ = write!(out, " {:.3} ± {:.3} |", v.mean, v.std);
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Which metric a markdown table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportMetric {
    /// Micro-F-measure (Figs. 4–6).
    FMeasure,
    /// Open-set accuracy (Figs. 7–9).
    Accuracy,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodSpec;
    use osr_baselines::OsnnParams;
    use osr_stats::descriptive::MeanStd;

    fn sample_report() -> FigureReport {
        let mk = |method: &str, openness: f64, f: f64| MethodResult {
            method: method.into(),
            openness,
            f_measure: MeanStd { mean: f, std: 0.01, n: 3 },
            accuracy: MeanStd { mean: f - 0.05, std: 0.02, n: 3 },
            spec: MethodSpec::Osnn(OsnnParams::default()),
        };
        FigureReport {
            figure: "fig6".into(),
            dataset: "PENDIGITS".into(),
            paper_expectation: "HDP-OSR flat and highest".into(),
            settings: "trials 3, seed 42".into(),
            rows: vec![
                mk("OSNN", 0.0, 0.99),
                mk("HDP-OSR", 0.0, 0.99),
                mk("OSNN", 0.12, 0.75),
                mk("HDP-OSR", 0.12, 0.95),
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_rows() {
        let r = sample_report();
        let json = r.to_json().unwrap();
        let back = FigureReport::from_json(&json).unwrap();
        assert_eq!(back.rows.len(), 4);
        assert_eq!(back.figure, "fig6");
        assert_eq!(back.row("OSNN", 0.12).unwrap().f_measure.mean, 0.75);
    }

    #[test]
    fn grid_accessors() {
        let r = sample_report();
        assert_eq!(r.opennesses(), vec![0.0, 0.12]);
        assert_eq!(r.methods(), vec!["OSNN".to_string(), "HDP-OSR".to_string()]);
        assert!(r.row("W-SVM", 0.0).is_none());
    }

    #[test]
    fn markdown_has_all_cells() {
        let r = sample_report();
        let md = r.to_markdown(ReportMetric::FMeasure);
        assert!(md.contains("| OSNN |"));
        assert!(md.contains("0.950 ± 0.010"));
        assert_eq!(md.lines().count(), 4); // header + separator + 2 methods
        let md_acc = r.to_markdown(ReportMetric::Accuracy);
        assert!(md_acc.contains("0.900 ± 0.020"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(FigureReport::from_json("{not json").is_err());
    }
}
