//! Open-set evaluation metrics (paper §4).
//!
//! * **micro-F-measure** — precision/recall pooled over the known classes;
//!   unknown is *not* a class: rejected known samples count as false
//!   negatives of their class, accepted unknown samples count as false
//!   positives of the predicted class.
//! * **open-set recognition accuracy** — "a correct response should be
//!   either the correct classification or 'rejection' if the testing sample
//!   is from an unknown category."

use serde::{Deserialize, Serialize};

use osr_dataset::protocol::{GroundTruth, Prediction};

/// Pooled confusion counts over the known classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenSetConfusion {
    /// Known sample predicted as its own class.
    pub tp: usize,
    /// Sample predicted as some known class it is not (includes accepted
    /// unknowns).
    pub fp: usize,
    /// Known sample predicted as another class or rejected.
    pub fn_: usize,
    /// Unknown sample correctly rejected.
    pub tn_rejected: usize,
    /// Total samples scored.
    pub total: usize,
}

impl OpenSetConfusion {
    /// Accumulate one `(prediction, truth)` pair.
    pub fn record(&mut self, pred: Prediction, truth: GroundTruth) {
        self.total += 1;
        match (pred, truth) {
            (Prediction::Known(p), GroundTruth::Known(t)) => {
                if p == t {
                    self.tp += 1;
                } else {
                    // Wrong known class: FP for the predicted class AND FN
                    // for the true class — both pooled here.
                    self.fp += 1;
                    self.fn_ += 1;
                }
            }
            (Prediction::Known(_), GroundTruth::Unknown) => self.fp += 1,
            (Prediction::Unknown, GroundTruth::Known(_)) => self.fn_ += 1,
            (Prediction::Unknown, GroundTruth::Unknown) => self.tn_rejected += 1,
        }
    }

    /// Build from parallel slices.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_slices(preds: &[Prediction], truth: &[GroundTruth]) -> Self {
        assert_eq!(preds.len(), truth.len(), "confusion: length mismatch");
        let mut c = Self::default();
        for (&p, &t) in preds.iter().zip(truth) {
            c.record(p, t);
        }
        c
    }

    /// Micro precision `TP / (TP + FP)`; 1.0 when nothing was predicted
    /// positive (vacuously precise).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Micro recall `TP / (TP + FN)`; 1.0 when there were no known samples.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Micro-F-measure: harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Open-set recognition accuracy: correct known classifications plus
    /// correct rejections, over everything.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.tp + self.tn_rejected) as f64 / self.total as f64
    }
}

/// Convenience: micro-F-measure of a prediction run.
pub fn micro_f_measure(preds: &[Prediction], truth: &[GroundTruth]) -> f64 {
    OpenSetConfusion::from_slices(preds, truth).f_measure()
}

/// Convenience: open-set accuracy of a prediction run.
pub fn open_set_accuracy(preds: &[Prediction], truth: &[GroundTruth]) -> f64 {
    OpenSetConfusion::from_slices(preds, truth).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    use GroundTruth as G;
    use Prediction as P;

    #[test]
    fn perfect_closed_set_run() {
        let preds = [P::Known(0), P::Known(1), P::Known(0)];
        let truth = [G::Known(0), G::Known(1), G::Known(0)];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!(c.f_measure(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!((c.tp, c.fp, c.fn_), (3, 0, 0));
    }

    #[test]
    fn perfect_open_set_run_includes_rejections() {
        let preds = [P::Known(0), P::Unknown, P::Unknown];
        let truth = [G::Known(0), G::Unknown, G::Unknown];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f_measure(), 1.0);
        assert_eq!(c.tn_rejected, 2);
    }

    #[test]
    fn accepted_unknown_is_a_false_positive() {
        let preds = [P::Known(0), P::Known(1)];
        let truth = [G::Known(0), G::Unknown];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 1, 0));
        // P = 1/2, R = 1 ⇒ F = 2/3.
        assert!((c.f_measure() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn rejected_known_is_a_false_negative() {
        let preds = [P::Unknown, P::Known(1)];
        let truth = [G::Known(0), G::Known(1)];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (1, 0, 1));
        // P = 1, R = 1/2 ⇒ F = 2/3.
        assert!((c.f_measure() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn cross_class_error_counts_both_fp_and_fn() {
        let preds = [P::Known(1)];
        let truth = [G::Known(0)];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!((c.tp, c.fp, c.fn_), (0, 1, 1));
        assert_eq!(c.f_measure(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn all_unknown_testset_with_full_rejection_is_perfect() {
        let preds = [P::Unknown; 4];
        let truth = [G::Unknown; 4];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!(c.f_measure(), 1.0); // vacuous precision & recall
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn empty_run_is_vacuously_perfect() {
        let c = OpenSetConfusion::from_slices(&[], &[]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f_measure(), 1.0);
    }

    #[test]
    fn f_measure_degrades_with_openness_for_a_threshold_free_classifier() {
        // A classifier that never rejects: adding unknowns adds FPs, pulling
        // F down — the mechanism behind every baseline's degradation curve.
        let closed_preds = [P::Known(0), P::Known(1)];
        let closed_truth = [G::Known(0), G::Known(1)];
        let f_closed = micro_f_measure(&closed_preds, &closed_truth);
        let open_preds = [P::Known(0), P::Known(1), P::Known(0), P::Known(1)];
        let open_truth = [G::Known(0), G::Known(1), G::Unknown, G::Unknown];
        let f_open = micro_f_measure(&open_preds, &open_truth);
        assert!(f_open < f_closed);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_panic() {
        let _ = OpenSetConfusion::from_slices(&[P::Unknown], &[]);
    }

    #[test]
    fn convenience_wrappers_match_struct() {
        let preds = [P::Known(0), P::Unknown];
        let truth = [G::Known(0), G::Known(1)];
        let c = OpenSetConfusion::from_slices(&preds, &truth);
        assert_eq!(micro_f_measure(&preds, &truth), c.f_measure());
        assert_eq!(open_set_accuracy(&preds, &truth), c.accuracy());
    }
}
