//! Evaluation harness: metrics, method adapters, validation-set tuning and
//! the randomized trial runner that regenerates the paper's figures.
//!
//! * [`metrics`] — micro-F-measure over the known classes and open-set
//!   recognition accuracy (correct classification *or* correct rejection),
//!   exactly the two quantities plotted in Figs. 4–9.
//! * [`methods`] — a uniform [`methods::MethodSpec`] wrapper over HDP-OSR
//!   and the five baselines so the runner can sweep them interchangeably.
//! * [`tuning`] — the paper's parameter-optimization phase (§4.1.1 step 7):
//!   every candidate parameterization is trained on the fitting set `F` and
//!   scored on the Closed-Set and Open-Set validation simulations; the
//!   candidate maximizing the mean of the two F-measures wins.
//! * [`experiment`] — steps 1–8 end to end: tune once, then evaluate on
//!   `trials` freshly randomized train/test splits (the paper uses 10) in
//!   parallel, reporting mean ± std.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiment;
pub mod methods;
pub mod metrics;
pub mod report;
pub mod tuning;

/// Errors produced by the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Dataset/split construction failed.
    Dataset(osr_dataset::DatasetError),
    /// A method failed to train or predict (message includes the method).
    Method(String),
    /// Invalid harness configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Dataset(e) => write!(f, "dataset failure: {e}"),
            Self::Method(m) => write!(f, "method failure: {m}"),
            Self::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<osr_dataset::DatasetError> for EvalError {
    fn from(e: osr_dataset::DatasetError) -> Self {
        Self::Dataset(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvalError>;
