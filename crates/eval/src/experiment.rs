//! The end-to-end experiment runner (paper §4.1.1 steps 1–8).
//!
//! For each method: tune once on a validation split carved from a first
//! training set (step 7), then evaluate the winning parameterization on
//! `trials` freshly randomized train/test splits (step 8; the paper uses
//! 10), reporting mean ± std of micro-F-measure and open-set accuracy —
//! the exact series plotted in Figs. 4–9. Trials run in parallel via
//! crossbeam scoped threads; every trial derives its own RNG from
//! `(seed, trial)`, so results are reproducible regardless of thread
//! scheduling. Every trial — CD-OSR and baseline alike — classifies
//! through the production `BatchServer` (see [`MethodSpec`]), so the
//! replication exercises the same serving stack as production traffic.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use osr_dataset::protocol::{OpenSetSplit, SplitConfig, ValidationSplit};
use osr_dataset::Dataset;
use osr_stats::descriptive::MeanStd;

use crate::methods::MethodSpec;
use crate::metrics::OpenSetConfusion;
use crate::tuning::tune_method;
use crate::{EvalError, Result};

/// Runner configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Open-set split shape (known/unknown class counts, train fraction).
    pub split: SplitConfig,
    /// Number of randomized evaluation splits (paper: 10).
    pub trials: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Run the validation-tuning phase (step 7). When false the *first*
    /// candidate of each method is used as-is.
    pub tune: bool,
    /// Run trials on multiple threads.
    pub parallel: bool,
}

impl ExperimentConfig {
    /// Paper defaults: 10 trials, tuning on, parallel on.
    pub fn new(split: SplitConfig, seed: u64) -> Self {
        Self { split, trials: 10, seed, tune: true, parallel: true }
    }
}

/// Aggregated result of one method at one openness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name (figure legend).
    pub method: String,
    /// Openness of the evaluated problem.
    pub openness: f64,
    /// Micro-F-measure over trials.
    pub f_measure: MeanStd,
    /// Open-set recognition accuracy over trials.
    pub accuracy: MeanStd,
    /// The specification that produced these numbers (post-tuning).
    pub spec: MethodSpec,
}

/// Per-trial raw scores (exposed for tests and detailed reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialScores {
    /// One F-measure per trial.
    pub f_measures: Vec<f64>,
    /// One accuracy per trial.
    pub accuracies: Vec<f64>,
}

/// Tune (optionally) and evaluate one method family.
///
/// # Errors
/// Propagates split-construction and method failures.
pub fn run_method(
    data: &Dataset,
    config: &ExperimentConfig,
    candidates: &[MethodSpec],
) -> Result<MethodResult> {
    if config.trials == 0 {
        return Err(EvalError::InvalidConfig("trials must be ≥ 1".into()));
    }
    if candidates.is_empty() {
        return Err(EvalError::InvalidConfig("no candidates".into()));
    }

    // Step 7: parameter optimization on a validation split.
    let spec = if config.tune && candidates.len() > 1 {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let split = OpenSetSplit::sample(data, &config.split, &mut rng)?;
        let val = ValidationSplit::sample(&split.train, &mut rng)?;
        tune_method(candidates, &val, config.seed)?.spec
    } else {
        candidates[0]
    };

    // Step 8: evaluate on `trials` randomized splits.
    let scores = run_trials(data, config, &spec)?;
    Ok(MethodResult {
        method: spec.name().to_string(),
        openness: config.split.openness(),
        f_measure: MeanStd::from_values(&scores.f_measures),
        accuracy: MeanStd::from_values(&scores.accuracies),
        spec,
    })
}

/// Evaluate a fixed specification on `config.trials` randomized splits.
///
/// # Errors
/// Propagates the first trial failure.
pub fn run_trials(
    data: &Dataset,
    config: &ExperimentConfig,
    spec: &MethodSpec,
) -> Result<TrialScores> {
    type TrialCell = Option<Result<(f64, f64)>>;
    let results: Mutex<Vec<TrialCell>> = Mutex::new(vec![None; config.trials]);

    let run_one = |trial: usize| -> Result<(f64, f64)> {
        // Trial seeds are disjoint from the tuning seed by construction.
        let mut rng =
            StdRng::seed_from_u64(config.seed.wrapping_add(0x5DEECE66D + trial as u64 * 0x2545F4914F6CDD1D));
        let split = OpenSetSplit::sample(data, &config.split, &mut rng)?;
        let preds = spec.train_and_predict(&split.train, &split.test.points, &mut rng)?;
        let c = OpenSetConfusion::from_slices(&preds, &split.test.truth);
        Ok((c.f_measure(), c.accuracy()))
    };

    if config.parallel && config.trials > 1 {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(config.trials);
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= config.trials {
                        break;
                    }
                    let r = run_one(t);
                    results.lock()[t] = Some(r);
                });
            }
        })
        .expect("trial worker panicked");
    } else {
        for t in 0..config.trials {
            let r = run_one(t);
            results.lock()[t] = Some(r);
        }
    }

    let mut f_measures = Vec::with_capacity(config.trials);
    let mut accuracies = Vec::with_capacity(config.trials);
    for r in results.into_inner() {
        let (f, a) = r.expect("all trials executed")?;
        f_measures.push(f);
        accuracies.push(a);
    }
    Ok(TrialScores { f_measures, accuracies })
}

/// Run a full openness sweep: for each unknown-class count, tune + evaluate
/// every method family. Returns one row per (openness, method) — the data
/// behind one of the paper's figures.
///
/// # Errors
/// Propagates the first failure.
pub fn openness_sweep(
    data: &Dataset,
    n_known: usize,
    unknown_counts: &[usize],
    trials: usize,
    seed: u64,
    tune: bool,
    families: &[Vec<MethodSpec>],
) -> Result<Vec<MethodResult>> {
    let mut rows = Vec::new();
    for &n_unknown in unknown_counts {
        let config = ExperimentConfig {
            split: SplitConfig::new(n_known, n_unknown),
            trials,
            seed,
            tune,
            parallel: true,
        };
        for family in families {
            rows.push(run_method(data, &config, family)?);
        }
    }
    Ok(rows)
}

/// Render a slice of results as an aligned TSV table (openness ascending,
/// then method).
pub fn to_tsv(rows: &[MethodResult]) -> String {
    use std::fmt::Write;
    let mut out = String::from("method\topenness\tf_measure\tf_std\taccuracy\tacc_std\ttrials\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{}",
            r.method,
            r.openness,
            r.f_measure.mean,
            r.f_measure.std,
            r.accuracy.mean,
            r.accuracy.std,
            r.f_measure.n
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodSpec;
    use osr_baselines::OsnnParams;
    use osr_dataset::synthetic;

    fn small_data() -> Dataset {
        let mut rng = StdRng::seed_from_u64(10);
        synthetic::pendigits_config().scaled(0.03).generate(&mut rng)
    }

    fn osnn_family() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Osnn(OsnnParams { sigma: 0.5 }),
            MethodSpec::Osnn(OsnnParams { sigma: 0.8 }),
        ]
    }

    #[test]
    fn run_method_produces_sane_aggregates() {
        let data = small_data();
        let config = ExperimentConfig {
            split: SplitConfig::new(4, 2),
            trials: 4,
            seed: 7,
            tune: true,
            parallel: true,
        };
        let r = run_method(&data, &config, &osnn_family()).unwrap();
        assert_eq!(r.method, "OSNN");
        assert_eq!(r.f_measure.n, 4);
        assert!((0.0..=1.0).contains(&r.f_measure.mean), "F = {}", r.f_measure.mean);
        assert!((0.0..=1.0).contains(&r.accuracy.mean));
        assert!(r.openness > 0.0);
    }

    #[test]
    fn parallel_and_serial_trials_agree() {
        let data = small_data();
        let base = ExperimentConfig {
            split: SplitConfig::new(4, 1),
            trials: 3,
            seed: 21,
            tune: false,
            parallel: true,
        };
        let spec = MethodSpec::Osnn(OsnnParams { sigma: 0.7 });
        let par = run_trials(&data, &base, &spec).unwrap();
        let ser = run_trials(&data, &ExperimentConfig { parallel: false, ..base }, &spec).unwrap();
        assert_eq!(par.f_measures, ser.f_measures);
        assert_eq!(par.accuracies, ser.accuracies);
    }

    #[test]
    fn runs_are_reproducible_under_seed() {
        let data = small_data();
        let config = ExperimentConfig {
            split: SplitConfig::new(4, 2),
            trials: 3,
            seed: 5,
            tune: false,
            parallel: true,
        };
        let spec = MethodSpec::Osnn(OsnnParams { sigma: 0.7 });
        let a = run_trials(&data, &config, &spec).unwrap();
        let b = run_trials(&data, &config, &spec).unwrap();
        assert_eq!(a.f_measures, b.f_measures);
    }

    #[test]
    fn openness_sweep_orders_rows() {
        let data = small_data();
        let rows = openness_sweep(&data, 4, &[0, 2], 2, 3, false, &[osnn_family()]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].openness, 0.0);
        assert!(rows[1].openness > 0.0);
    }

    #[test]
    fn closed_set_beats_open_set_for_osnn_family() {
        // Openness should not make the problem EASIER for a fixed method.
        let data = small_data();
        let rows =
            openness_sweep(&data, 4, &[0, 4], 3, 11, false, &[vec![MethodSpec::Osnn(
                OsnnParams { sigma: 0.9 },
            )]])
            .unwrap();
        assert!(
            rows[0].f_measure.mean >= rows[1].f_measure.mean - 0.05,
            "closed {:.3} vs open {:.3}",
            rows[0].f_measure.mean,
            rows[1].f_measure.mean
        );
    }

    #[test]
    fn tsv_rendering_contains_all_rows() {
        let data = small_data();
        let rows = openness_sweep(&data, 4, &[1], 2, 3, false, &[osnn_family()]).unwrap();
        let tsv = to_tsv(&rows);
        assert!(tsv.starts_with("method\topenness"));
        assert_eq!(tsv.lines().count(), 2);
        assert!(tsv.contains("OSNN"));
    }

    #[test]
    fn zero_trials_is_rejected() {
        let data = small_data();
        let config = ExperimentConfig {
            split: SplitConfig::new(4, 0),
            trials: 0,
            seed: 0,
            tune: false,
            parallel: false,
        };
        assert!(run_method(&data, &config, &osnn_family()).is_err());
    }
}
