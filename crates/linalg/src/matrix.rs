use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
///
/// Sized for the workloads in this workspace (covariance/scatter matrices up
/// to a few hundred rows), so all operations are straightforward
/// cache-friendly triple loops rather than blocked kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged input");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Diagonal matrix from the given entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Scaled identity `alpha * I` of order `n`.
    pub fn scaled_identity(n: usize, alpha: f64) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = alpha;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose into a fresh matrix.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|r| crate::vector::dot(self.row(r), x)).collect()
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Self::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Quadratic form `x' * self * x` for a square matrix.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        crate::vector::dot(x, &self.matvec(x))
    }

    /// Add `alpha * x x'` to a square matrix in place (symmetric rank-1
    /// update; the backbone of scatter-matrix bookkeeping in the sampler).
    ///
    /// # Panics
    /// Panics if the matrix is not square of order `x.len()`.
    pub fn syr(&mut self, alpha: f64, x: &[f64]) {
        assert!(self.is_square() && self.rows == x.len(), "syr: shape mismatch");
        for r in 0..self.rows {
            let xr = alpha * x[r];
            let row = self.row_mut(r);
            for (c, &xc) in x.iter().enumerate() {
                row[c] += xr * xc;
            }
        }
    }

    /// `self += alpha * other` in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &Self) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `alpha` in place.
    pub fn scale_in_place(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute asymmetry `|A[i,j] - A[j,i]|` of a square matrix.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square(), "asymmetry: matrix must be square");
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                worst = worst.max((self[(r, c)] - self[(c, r)]).abs());
            }
        }
        worst
    }

    /// Force exact symmetry by averaging mirrored entries.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: matrix must be square");
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        crate::vector::all_finite(&self.data)
    }

    /// Sample covariance matrix of `points` (rows are observations), using
    /// the `n - 1` denominator. Returns a `d × d` zero matrix when fewer than
    /// two points are supplied.
    pub fn covariance(points: &[&[f64]], dim: usize) -> Self {
        let mut cov = Self::zeros(dim, dim);
        if points.len() < 2 {
            return cov;
        }
        let mu = crate::vector::mean(points).expect("non-empty by the guard above");
        let mut diff = vec![0.0; dim];
        for p in points {
            for (d, (pi, mi)) in diff.iter_mut().zip(p.iter().zip(&mu)) {
                *d = pi - mi;
            }
            cov.syr(1.0, &diff);
        }
        cov.scale_in_place(1.0 / (points.len() - 1) as f64);
        cov
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(1.0, rhs);
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(-1.0, rhs);
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(alpha);
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = sample();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = sample();
        let y = a.matvec(&[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn syr_builds_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.syr(2.0, &[1.0, 3.0]);
        assert_eq!(m, Matrix::from_rows(&[vec![2.0, 6.0], vec![6.0, 18.0]]));
    }

    #[test]
    fn quad_form_matches_expansion() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        // [1,2] A [1,2]' = 2 + 2 + 2 + 12 = 18
        assert!((a.quad_form(&[1.0, 2.0]) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_axis_aligned_cloud() {
        let pts: Vec<Vec<f64>> =
            vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 4.0], vec![2.0, 4.0]];
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let cov = Matrix::covariance(&refs, 2);
        // var(x) = 4/3, var(y) = 16/3, cov = 0
        assert!((cov[(0, 0)] - 4.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 16.0 / 3.0).abs() < 1e-12);
        assert!(cov[(0, 1)].abs() < 1e-12);
        assert_eq!(cov.asymmetry(), 0.0);
    }

    #[test]
    fn covariance_of_single_point_is_zero() {
        let p = [1.0, 2.0];
        let cov = Matrix::covariance(&[&p], 2);
        assert_eq!(cov, Matrix::zeros(2, 2));
    }

    #[test]
    fn symmetrize_removes_asymmetry() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 1.0]]);
        assert!(m.asymmetry() > 0.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn trace_sums_diagonal() {
        assert_eq!(sample().trace(), 5.0);
    }

    #[test]
    fn operators_add_sub_scale() {
        let a = sample();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 1)], 8.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_panics_on_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
