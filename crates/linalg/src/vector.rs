//! Free functions over `&[f64]` slices.
//!
//! Every crate in the workspace represents feature vectors as plain slices;
//! these helpers keep the hot loops (kernel evaluations, Mahalanobis terms,
//! nearest-neighbour scans) branch-light and allocation-free.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// `y += alpha * x` in place.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise sum of two slices into a fresh vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` into a fresh vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Arithmetic mean of a set of equal-length points, one slice per row.
///
/// Returns `None` when `points` is empty.
pub fn mean(points: &[&[f64]]) -> Option<Vec<f64>> {
    let first = points.first()?;
    let mut acc = vec![0.0; first.len()];
    for p in points {
        axpy(1.0, p, &mut acc);
    }
    scale(1.0 / points.len() as f64, &mut acc);
    Some(acc)
}

/// True when every component is finite.
#[inline]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

/// Index of the maximum element; ties resolve to the first occurrence.
///
/// Returns `None` on an empty slice or when all elements are NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if bx >= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element; ties resolve to the first occurrence.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let neg: Vec<f64> = a.iter().map(|x| -x).collect();
    argmax(&neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_identical_points() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 3.5, 2.0];
        assert!((dist(&a, &b) - dist(&b, &a)).abs() < 1e-15);
        assert_eq!(dist(&a, &a), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn mean_averages_rows() {
        let a = [0.0, 2.0];
        let b = [4.0, 6.0];
        let m = mean(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
    }

    #[test]
    fn mean_of_no_points_is_none() {
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn argmax_prefers_first_of_ties_and_skips_nan() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmin_mirrors_argmax() {
        assert_eq!(argmin(&[5.0, -1.0, 0.0]), Some(1));
    }

    #[test]
    fn all_finite_flags_nan_and_inf() {
        assert!(all_finite(&[0.0, -1.5]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
