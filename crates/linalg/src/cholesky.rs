use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L L'` of a symmetric positive-definite matrix.
///
/// This is the numerical core of the collapsed Gibbs sampler: every posterior
/// predictive density evaluation reduces to one triangular solve against the
/// factor of the Normal–Inverse-Wishart posterior scale matrix, and moving an
/// observation in or out of a mixture component is a rank-1
/// [`update`](Self::update) / [`downdate`](Self::downdate) of that factor —
/// O(d²) instead of refactorizing at O(d³).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense with zeros above the diagonal.
    l: Matrix,
}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// ignored, so callers may pass matrices with small round-off asymmetry.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive, [`LinalgError::NonFiniteInput`] on NaN/inf entries.
    ///
    /// # Panics
    /// Panics when `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Self> {
        assert!(a.is_square(), "Cholesky::factor: matrix must be square");
        if !a.all_finite() {
            return Err(LinalgError::NonFiniteInput);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if !(diag > 0.0) || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: diag });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Self { l })
    }

    /// Wrap an already-computed lower-triangular factor.
    ///
    /// For callers that maintain the factor in their own storage (the dish
    /// bank keeps it packed) and need to re-enter the dense API — e.g. to
    /// reconstruct `A = L L'` on the rank-1 downdate rescue path with the
    /// exact operation sequence of the dense implementation. The strict
    /// upper triangle must be zero and diagonal entries positive; only
    /// debug builds verify this.
    ///
    /// # Panics
    /// Panics when `l` is not square.
    pub fn from_factor(l: Matrix) -> Self {
        assert!(l.is_square(), "Cholesky::from_factor: factor must be square");
        #[cfg(debug_assertions)]
        for i in 0..l.rows() {
            debug_assert!(l[(i, i)] > 0.0, "from_factor: non-positive diagonal at {i}");
            for j in (i + 1)..l.cols() {
                debug_assert_eq!(l[(i, j)], 0.0, "from_factor: nonzero above diagonal");
            }
        }
        Self { l }
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    #[inline]
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: dimension mismatch");
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        y
    }

    /// Solve `L' x = b` (backward substitution).
    pub fn solve_upper(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_upper: dimension mismatch");
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Log-determinant of `A` (twice the log-determinant of `L`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Mahalanobis-style quadratic form `b' A⁻¹ b`, computed without forming
    /// the inverse: it is `‖L⁻¹ b‖²`.
    pub fn inv_quad_form(&self, b: &[f64]) -> f64 {
        let y = self.solve_lower(b);
        crate::vector::dot(&y, &y)
    }

    /// Dense inverse of `A`. Prefer [`solve`](Self::solve) or
    /// [`inv_quad_form`](Self::inv_quad_form) in hot paths.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e);
            e[c] = 0.0;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        // A⁻¹ is symmetric; remove the round-off skew so downstream
        // factorizations see a clean matrix.
        inv.symmetrize();
        inv
    }

    /// Reconstruct `A = L L'` (mostly for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l.matmul(&self.l.transpose())
    }

    /// Rank-1 update: replace the factored `A` by `A + x x'` in place,
    /// in O(d²) via Givens-style rotations.
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    pub fn update(&mut self, x: &[f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "update: dimension mismatch");
        let mut w = x.to_vec();
        for j in 0..n {
            let ljj = self.l[(j, j)];
            let wj = w[j];
            let r = (ljj * ljj + wj * wj).sqrt();
            let c = r / ljj;
            let s = wj / ljj;
            self.l[(j, j)] = r;
            for i in (j + 1)..n {
                let lij = self.l[(i, j)];
                self.l[(i, j)] = (lij + s * w[i]) / c;
                w[i] = c * w[i] - s * self.l[(i, j)];
            }
        }
    }

    /// Rank-1 downdate: replace the factored `A` by `A - x x'` in place.
    ///
    /// # Errors
    /// [`LinalgError::DowndateBreaksSpd`] when the result would not be
    /// positive definite (the factor is left in an unspecified but
    /// structurally valid state; callers should refactorize).
    pub fn downdate(&mut self, x: &[f64]) -> Result<()> {
        let n = self.dim();
        assert_eq!(x.len(), n, "downdate: dimension mismatch");
        let mut w = x.to_vec();
        for j in 0..n {
            let ljj = self.l[(j, j)];
            let wj = w[j];
            let d = ljj * ljj - wj * wj;
            if !(d > 0.0) || !d.is_finite() {
                return Err(LinalgError::DowndateBreaksSpd { pivot: j });
            }
            let r = d.sqrt();
            let c = r / ljj;
            let s = wj / ljj;
            self.l[(j, j)] = r;
            for i in (j + 1)..n {
                let lij = self.l[(i, j)];
                self.l[(i, j)] = (lij - s * w[i]) / c;
                w[i] = c * w[i] - s * self.l[(i, j)];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // Diagonally dominant symmetric matrix — guaranteed SPD.
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 5.0, -1.0],
            vec![0.5, -1.0, 3.0],
        ])
    }

    #[test]
    fn factor_reconstructs_original() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let r = ch.reconstruct();
        assert!((&r - &a).frobenius_norm() < 1e-12);
    }

    #[test]
    fn solve_inverts_matvec() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x = [1.0, -2.0, 0.5];
        let b = a.matvec(&x);
        let got = ch.solve(&b);
        for (g, e) in got.iter().zip(x) {
            assert!((g - e).abs() < 1e-10, "solve mismatch: {g} vs {e}");
        }
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[vec![2.0, 0.3], vec![0.3, 1.5]]);
        let ch = Cholesky::factor(&a).unwrap();
        let det: f64 = 2.0 * 1.5 - 0.09;
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn inv_quad_form_matches_explicit_inverse() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let b = [0.7, -1.1, 2.2];
        assert!((ch.inv_quad_form(&b) - inv.quad_form(&b)).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(3)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. }) => {}
            other => panic!("expected NotPositiveDefinite at pivot 1, got {other:?}"),
        }
    }

    #[test]
    fn rejects_nan_input() {
        let mut a = spd3();
        a[(0, 0)] = f64::NAN;
        assert_eq!(Cholesky::factor(&a), Err(LinalgError::NonFiniteInput));
    }

    #[test]
    fn update_matches_refactorization() {
        let a = spd3();
        let x = [0.3, -0.8, 1.1];
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.update(&x);
        let mut ax = a.clone();
        ax.syr(1.0, &x);
        let direct = Cholesky::factor(&ax).unwrap();
        assert!((&ch.reconstruct() - &direct.reconstruct()).frobenius_norm() < 1e-10);
    }

    #[test]
    fn downdate_inverts_update() {
        let a = spd3();
        let x = [0.5, 0.25, -0.75];
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.update(&x);
        ch.downdate(&x).unwrap();
        assert!((&ch.reconstruct() - &a).frobenius_norm() < 1e-9);
    }

    #[test]
    fn downdate_detects_loss_of_spd() {
        let a = Matrix::identity(2);
        let mut ch = Cholesky::factor(&a).unwrap();
        // I - 2 e1 e1' has a negative eigenvalue.
        let err = ch.downdate(&[2.0f64.sqrt(), 0.0]).unwrap_err();
        assert!(matches!(err, LinalgError::DowndateBreaksSpd { .. }));
    }

    #[test]
    fn one_by_one_matrix_roundtrip() {
        let a = Matrix::from_rows(&[vec![9.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - 9.0f64.ln()).abs() < 1e-14);
        assert_eq!(ch.solve(&[18.0]), vec![2.0]);
    }
}
