//! Explicit-width f64 lane helpers for the predictive hot kernels.
//!
//! The bank-layout predictive evaluation (`osr-stats::bank`) runs two fused
//! kernels — one observation against every dish, and a batch of
//! observations against one dish — whose inner loops are small dense
//! triangular solves and reductions. The helpers here are written so the
//! compiler can autovectorize them: fixed-width 4-lane chunks with a scalar
//! tail, no bounds checks in the steady state, no allocation.
//!
//! **Bit-compatibility contract.** Floating-point addition is not
//! associative, so the helpers fall into two classes:
//!
//! * *Reassociating* ([`dot4`]): four independent accumulators, combined at
//!   the end. Faster on wide cores but **not** bit-identical to the
//!   sequential [`crate::vector::dot`]. Never use these where results feed
//!   the golden-trace suite; the predictive micro-bench compares both forms
//!   so the cost of the sequential order stays visible.
//! * *Elementwise* ([`axpy4`], [`fused_solve_lower_packed`],
//!   [`fused_solve_lower_cols`], [`givens_update_col`],
//!   [`givens_downdate_col`]): every output element is produced by the
//!   exact operation sequence of its scalar counterpart, so results are
//!   bit-identical — unrolling independent elements changes instruction
//!   scheduling, never rounding.

/// Dot product with four independent accumulators (reassociated).
///
/// **Not** bit-identical to [`crate::vector::dot`] — see the module docs.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot4: length mismatch {} vs {}", a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// `y += alpha * x`, unrolled in 4-wide lanes.
///
/// Elementwise, therefore bit-identical to [`crate::vector::axpy`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy4(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy4: length mismatch");
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (xs, ys) in cx.by_ref().zip(cy.by_ref()) {
        ys[0] += alpha * xs[0];
        ys[1] += alpha * xs[1];
        ys[2] += alpha * xs[2];
        ys[3] += alpha * xs[3];
    }
    for (xi, yi) in cx.remainder().iter().zip(cy.into_remainder()) {
        *yi += alpha * xi;
    }
}

/// Fused forward substitution on a packed lower-triangular factor:
/// solves `L y = (x − mu)` without materializing the difference vector.
///
/// `l_packed` stores the rows of `L` contiguously (row `i` contributes its
/// `i + 1` entries at offset `i (i + 1) / 2`). The operation sequence per
/// output element is exactly that of the dense in-place solve
/// (`Cholesky::solve_lower(&vector::sub(x, mu))`): subtract the already
/// solved prefix in ascending `k` order, then divide by the diagonal — so
/// the result is bit-identical to the unfused scalar path.
///
/// The dish bank stores factors column-packed and uses
/// [`fused_solve_lower_cols`]; this row-packed form is the reference the
/// column form is tested against.
///
/// # Panics
/// Panics when the slice lengths are inconsistent with `x.len()` = d and
/// `l_packed.len()` = d(d+1)/2.
#[inline]
pub fn fused_solve_lower_packed(l_packed: &[f64], x: &[f64], mu: &[f64], y: &mut [f64]) {
    let d = x.len();
    assert_eq!(mu.len(), d, "fused_solve_lower_packed: mu dimension mismatch");
    assert_eq!(y.len(), d, "fused_solve_lower_packed: output dimension mismatch");
    assert_eq!(l_packed.len(), d * (d + 1) / 2, "fused_solve_lower_packed: bad packed length");
    let mut off = 0;
    for i in 0..d {
        let row = &l_packed[off..off + i];
        let diag = l_packed[off + i];
        let (solved, rest) = y.split_at_mut(i);
        let mut acc = x[i] - mu[i];
        for (l, s) in row.iter().zip(solved.iter()) {
            acc -= l * s;
        }
        rest[0] = acc / diag;
        off += i + 1;
    }
}

/// Column-packed forward substitution: solves `L y = (x − mu)` with `L`
/// stored column-major (column `j` contributes its `d − j` entries, diagonal
/// first, at offset `j d − j (j − 1) / 2`).
///
/// Column order turns the inner loop into a contiguous [`axpy4`] over the
/// tail of the right-hand side, which is what lets the compiler vectorize
/// it — and it is still **bit-identical** to the row-oriented solve: each
/// accumulator `y_i` receives the subtractions `l_ik · y_k` in the same
/// ascending-`k` order (`b − l·y` and `b + (−y)·l` round identically), then
/// divides by the same diagonal.
///
/// # Panics
/// Panics when the slice lengths are inconsistent with `x.len()` = d and
/// `l_cols.len()` = d(d+1)/2.
#[inline]
pub fn fused_solve_lower_cols(l_cols: &[f64], x: &[f64], mu: &[f64], y: &mut [f64]) {
    let d = x.len();
    assert_eq!(mu.len(), d, "fused_solve_lower_cols: mu dimension mismatch");
    assert_eq!(y.len(), d, "fused_solve_lower_cols: output dimension mismatch");
    assert_eq!(l_cols.len(), d * (d + 1) / 2, "fused_solve_lower_cols: bad packed length");
    for ((yi, &xi), &mi) in y.iter_mut().zip(x).zip(mu) {
        *yi = xi - mi;
    }
    let mut off = 0;
    for j in 0..d {
        let col = &l_cols[off..off + (d - j)];
        let (head, tail) = y.split_at_mut(j + 1);
        let yj = head[j] / col[0];
        head[j] = yj;
        axpy4(-yj, &col[1..], tail);
        off += d - j;
    }
}

/// One column of a Givens rank-1 **update** of a lower factor: given the
/// column rotation `(c, s)`, maps each below-diagonal element and its
/// working-vector lane through
///
/// ```text
/// new = (l + s·w) / c;   l ← new;   w ← c·w − s·new
/// ```
///
/// Elementwise (each lane reads only its own `l`/`w`), so unrolling is
/// bit-identical to the sequential loop in `Cholesky::update`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn givens_update_col(col: &mut [f64], w: &mut [f64], c: f64, s: f64) {
    assert_eq!(col.len(), w.len(), "givens_update_col: length mismatch");
    let mut cl = col.chunks_exact_mut(4);
    let mut cw = w.chunks_exact_mut(4);
    for (ls, ws) in cl.by_ref().zip(cw.by_ref()) {
        for (l, wi) in ls.iter_mut().zip(ws.iter_mut()) {
            let new = (*l + s * *wi) / c;
            *wi = c * *wi - s * new;
            *l = new;
        }
    }
    for (l, wi) in cl.into_remainder().iter_mut().zip(cw.into_remainder()) {
        let new = (*l + s * *wi) / c;
        *wi = c * *wi - s * new;
        *l = new;
    }
}

/// One column of a Givens rank-1 **downdate**: the `(l − s·w)/c` mirror of
/// [`givens_update_col`], with the same elementwise bit-identity guarantee
/// (the SPD feasibility check stays with the caller).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn givens_downdate_col(col: &mut [f64], w: &mut [f64], c: f64, s: f64) {
    assert_eq!(col.len(), w.len(), "givens_downdate_col: length mismatch");
    let mut cl = col.chunks_exact_mut(4);
    let mut cw = w.chunks_exact_mut(4);
    for (ls, ws) in cl.by_ref().zip(cw.by_ref()) {
        for (l, wi) in ls.iter_mut().zip(ws.iter_mut()) {
            let new = (*l - s * *wi) / c;
            *wi = c * *wi - s * new;
            *l = new;
        }
    }
    for (l, wi) in cl.into_remainder().iter_mut().zip(cw.into_remainder()) {
        let new = (*l - s * *wi) / c;
        *wi = c * *wi - s * new;
        *l = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use crate::{Cholesky, Matrix};

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot4_matches_sequential_to_tolerance() {
        for n in [0, 1, 3, 4, 7, 8, 13, 64] {
            let a = seq(n, |i| (i as f64 * 0.37).sin());
            let b = seq(n, |i| (i as f64 * 0.71).cos());
            let fast = dot4(&a, &b);
            let slow = vector::dot(&a, &b);
            assert!((fast - slow).abs() < 1e-12 * slow.abs().max(1.0), "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn axpy4_is_bit_identical_to_axpy() {
        for n in [0, 1, 4, 5, 11, 32] {
            let x = seq(n, |i| (i as f64 * 1.3).sin() * 1e3);
            let mut y4 = seq(n, |i| (i as f64 * 0.9).cos());
            let mut y1 = y4.clone();
            axpy4(0.123456789, &x, &mut y4);
            vector::axpy(0.123456789, &x, &mut y1);
            for (a, b) in y4.iter().zip(&y1) {
                assert_eq!(a.to_bits(), b.to_bits(), "axpy4 drifted at n={n}");
            }
        }
    }

    #[test]
    fn fused_solve_is_bit_identical_to_dense_path() {
        for d in 1..8usize {
            // A diagonally dominant SPD matrix gives a well-conditioned factor.
            let mut a = Matrix::identity(d);
            for i in 0..d {
                for j in 0..d {
                    a[(i, j)] += 0.1 / (1.0 + (i as f64 - j as f64).abs());
                }
                a[(i, i)] += d as f64;
            }
            let chol = Cholesky::factor(&a).unwrap();
            let l = chol.factor_l();
            let mut packed = Vec::new();
            for i in 0..d {
                for k in 0..=i {
                    packed.push(l[(i, k)]);
                }
            }
            let x = seq(d, |i| (i as f64 * 0.77).sin() * 2.0);
            let mu = seq(d, |i| (i as f64 * 0.31).cos());
            let mut fused = vec![0.0; d];
            fused_solve_lower_packed(&packed, &x, &mu, &mut fused);
            let dense = chol.solve_lower(&vector::sub(&x, &mu));
            for (f, s) in fused.iter().zip(&dense) {
                assert_eq!(f.to_bits(), s.to_bits(), "fused solve drifted at d={d}");
            }
        }
    }

    #[test]
    fn column_solve_is_bit_identical_to_row_solve() {
        for d in 1..10usize {
            let mut a = Matrix::identity(d);
            for i in 0..d {
                for j in 0..d {
                    a[(i, j)] += 0.1 / (1.0 + (i as f64 - j as f64).abs());
                }
                a[(i, i)] += d as f64;
            }
            let chol = Cholesky::factor(&a).unwrap();
            let l = chol.factor_l();
            let mut rows = Vec::new();
            for i in 0..d {
                for k in 0..=i {
                    rows.push(l[(i, k)]);
                }
            }
            let mut cols = Vec::new();
            for j in 0..d {
                for i in j..d {
                    cols.push(l[(i, j)]);
                }
            }
            let x = seq(d, |i| (i as f64 * 0.77).sin() * 2.0);
            let mu = seq(d, |i| (i as f64 * 0.31).cos());
            let mut by_row = vec![0.0; d];
            let mut by_col = vec![0.0; d];
            fused_solve_lower_packed(&rows, &x, &mu, &mut by_row);
            fused_solve_lower_cols(&cols, &x, &mu, &mut by_col);
            for (r, c) in by_row.iter().zip(&by_col) {
                assert_eq!(r.to_bits(), c.to_bits(), "column solve drifted at d={d}");
            }
        }
    }

    #[test]
    fn givens_columns_are_bit_identical_to_the_scalar_recurrence() {
        for n in [0usize, 1, 3, 4, 7, 12, 17] {
            let (c, s) = (1.2345678, 0.34567);
            let col0 = seq(n, |i| 1.0 + (i as f64 * 0.59).sin().abs());
            let w0 = seq(n, |i| (i as f64 * 0.83).cos() * 0.4);

            let (mut col, mut w) = (col0.clone(), w0.clone());
            givens_update_col(&mut col, &mut w, c, s);
            let (mut col_ref, mut w_ref) = (col0.clone(), w0.clone());
            for (l, wi) in col_ref.iter_mut().zip(w_ref.iter_mut()) {
                let new = (*l + s * *wi) / c;
                *l = new;
                *wi = c * *wi - s * new;
            }
            for (a, b) in col.iter().zip(&col_ref).chain(w.iter().zip(&w_ref)) {
                assert_eq!(a.to_bits(), b.to_bits(), "update drifted at n={n}");
            }

            let (mut col, mut w) = (col0.clone(), w0.clone());
            givens_downdate_col(&mut col, &mut w, c, s);
            let (mut col_ref, mut w_ref) = (col0.clone(), w0.clone());
            for (l, wi) in col_ref.iter_mut().zip(w_ref.iter_mut()) {
                let new = (*l - s * *wi) / c;
                *l = new;
                *wi = c * *wi - s * new;
            }
            for (a, b) in col.iter().zip(&col_ref).chain(w.iter().zip(&w_ref)) {
                assert_eq!(a.to_bits(), b.to_bits(), "downdate drifted at n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot4_panics_on_length_mismatch() {
        let _ = dot4(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "bad packed length")]
    fn fused_solve_rejects_bad_packed_length() {
        let mut y = [0.0; 2];
        fused_solve_lower_packed(&[1.0], &[0.0, 0.0], &[0.0, 0.0], &mut y);
    }
}
