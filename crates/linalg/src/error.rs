use std::fmt;

/// Errors produced by the linear-algebra routines.
///
/// Shape mismatches are programming errors and panic instead; this type only
/// covers failures that depend on the numerical content of the input.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Cholesky factorization hit a non-positive pivot: the matrix is not
    /// (numerically) positive definite. Carries the offending pivot index and
    /// value for diagnostics.
    NotPositiveDefinite {
        /// Row/column at which the factorization broke down.
        pivot: usize,
        /// Value of the failed diagonal pivot.
        value: f64,
    },
    /// A rank-1 downdate would destroy positive definiteness.
    DowndateBreaksSpd {
        /// Row/column at which the downdate broke down.
        pivot: usize,
    },
    /// The Jacobi eigensolver did not converge within its sweep budget.
    EigenNoConvergence {
        /// Largest remaining off-diagonal magnitude when iteration stopped.
        off_diagonal: f64,
    },
    /// An input that must be non-empty (e.g. PCA sample set) was empty.
    EmptyInput,
    /// An input contained NaN or infinity where finite values are required.
    NonFiniteInput,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} = {value:.6e})"
            ),
            Self::DowndateBreaksSpd { pivot } => {
                write!(f, "rank-1 downdate breaks positive definiteness at pivot {pivot}")
            }
            Self::EigenNoConvergence { off_diagonal } => write!(
                f,
                "Jacobi eigensolver failed to converge (residual off-diagonal {off_diagonal:.3e})"
            ),
            Self::EmptyInput => write!(f, "input must be non-empty"),
            Self::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for LinalgError {}
