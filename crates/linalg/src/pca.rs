use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix, Result, SymEigen};

/// Principal component analysis fitted on a sample of points.
///
/// The paper projects the 256-dimensional USPS features onto the subspace
/// retaining 95 % of the variance (39 dimensions); [`Pca::fit_retaining`]
/// reproduces exactly that selection rule, and [`Pca::fit`] supports a fixed
/// component count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    /// `k × d` projection matrix: rows are principal axes.
    components: Matrix,
    /// Variance captured by each kept component, descending.
    explained: Vec<f64>,
    /// Total variance of the training sample (sum of all eigenvalues).
    total_variance: f64,
}

impl Pca {
    /// Fit with a fixed number of components `k` (capped at the data
    /// dimension).
    ///
    /// # Errors
    /// [`LinalgError::EmptyInput`] when `points` is empty, plus any
    /// eigensolver failure.
    pub fn fit(points: &[&[f64]], k: usize) -> Result<Self> {
        let (mean, eig, total) = Self::prepare(points)?;
        let k = k.min(eig.values.len());
        Ok(Self::assemble(mean, &eig, k, total))
    }

    /// Fit keeping the smallest number of components whose cumulative
    /// variance reaches `fraction` (e.g. `0.95`) of the total.
    ///
    /// # Errors
    /// Same as [`Pca::fit`].
    pub fn fit_retaining(points: &[&[f64]], fraction: f64) -> Result<Self> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        let (mean, eig, total) = Self::prepare(points)?;
        let mut k = 0;
        let mut acc = 0.0;
        let target = fraction * total;
        while k < eig.values.len() && (acc < target || k == 0) {
            acc += eig.values[k].max(0.0);
            k += 1;
            if acc >= target {
                break;
            }
        }
        Ok(Self::assemble(mean, &eig, k, total))
    }

    fn prepare(points: &[&[f64]]) -> Result<(Vec<f64>, SymEigen, f64)> {
        if points.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        let dim = points[0].len();
        if points.iter().any(|p| !crate::vector::all_finite(p)) {
            return Err(LinalgError::NonFiniteInput);
        }
        let mean = crate::vector::mean(points).expect("non-empty");
        let cov = Matrix::covariance(points, dim);
        let eig = SymEigen::decompose(&cov)?;
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        Ok((mean, eig, total))
    }

    fn assemble(mean: Vec<f64>, eig: &SymEigen, k: usize, total: f64) -> Self {
        let d = mean.len();
        let mut components = Matrix::zeros(k, d);
        for c in 0..k {
            for r in 0..d {
                components[(c, r)] = eig.vectors[(r, c)];
            }
        }
        let explained = eig.values[..k].to_vec();
        Self { mean, components, explained, total_variance: total }
    }

    /// Number of retained components.
    #[inline]
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input dimension expected by [`transform`](Self::transform).
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_fraction(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        self.explained.iter().map(|v| v.max(0.0)).sum::<f64>() / self.total_variance
    }

    /// Project a single point into the principal subspace.
    ///
    /// # Panics
    /// Panics when `x.len() != self.input_dim()`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let centered = crate::vector::sub(x, &self.mean);
        self.components.matvec(&centered)
    }

    /// Project a batch of points.
    pub fn transform_all(&self, points: &[&[f64]]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.transform(p)).collect()
    }

    /// Map a projected point back into the original space (lossy when
    /// `n_components < input_dim`).
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n_components(), "inverse_transform: dimension mismatch");
        let mut x = self.mean.clone();
        for (c, &zc) in z.iter().enumerate() {
            for (xi, comp) in x.iter_mut().zip(self.components.row(c)) {
                *xi += zc * comp;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-d cloud that actually lives on a 2-d plane (third coordinate is a
    /// fixed linear combination of the first two).
    fn planar_cloud() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f64 * 0.37 - 3.0;
                let y = j as f64 * 0.11 + 1.0;
                pts.push(vec![x, y, 2.0 * x - y]);
            }
        }
        pts
    }

    fn as_refs(pts: &[Vec<f64>]) -> Vec<&[f64]> {
        pts.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn planar_data_needs_two_components_for_full_variance() {
        let pts = planar_cloud();
        let pca = Pca::fit_retaining(&as_refs(&pts), 0.999).unwrap();
        assert_eq!(pca.n_components(), 2);
        assert!(pca.explained_fraction() > 0.999);
    }

    #[test]
    fn transform_then_inverse_recovers_planar_points() {
        let pts = planar_cloud();
        let pca = Pca::fit(&as_refs(&pts), 2).unwrap();
        for p in pts.iter().take(10) {
            let back = pca.inverse_transform(&pca.transform(p));
            for (b, e) in back.iter().zip(p) {
                assert!((b - e).abs() < 1e-8, "reconstruction drift: {b} vs {e}");
            }
        }
    }

    #[test]
    fn transformed_data_is_centered() {
        let pts = planar_cloud();
        let refs = as_refs(&pts);
        let pca = Pca::fit(&refs, 2).unwrap();
        let z = pca.transform_all(&refs);
        let zrefs: Vec<&[f64]> = z.iter().map(Vec::as_slice).collect();
        let m = crate::vector::mean(&zrefs).unwrap();
        for c in m {
            assert!(c.abs() < 1e-9, "projected mean should be ~0, got {c}");
        }
    }

    #[test]
    fn k_larger_than_dim_is_capped() {
        let pts = planar_cloud();
        let pca = Pca::fit(&as_refs(&pts), 10).unwrap();
        assert_eq!(pca.n_components(), 3);
    }

    #[test]
    fn retaining_zero_fraction_keeps_one_component() {
        let pts = planar_cloud();
        let pca = Pca::fit_retaining(&as_refs(&pts), 0.0).unwrap();
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(Pca::fit(&[], 2), Err(LinalgError::EmptyInput)));
    }

    #[test]
    fn explained_variances_are_descending() {
        let pts = planar_cloud();
        let pca = Pca::fit(&as_refs(&pts), 3).unwrap();
        for w in pca.explained.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
