use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
///
/// Jacobi is slow for very large matrices but unconditionally stable and
/// simple; the only consumer here is PCA on covariance matrices up to
/// 256 × 256 (the USPS replica), where it finishes in well under a second.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in **descending** order.
    pub values: Vec<f64>,
    /// Matching eigenvectors, one per **column** of this matrix.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Decompose a symmetric matrix. Only the lower triangle is trusted; the
    /// matrix is symmetrized first so tiny round-off skew is harmless.
    ///
    /// # Errors
    /// [`LinalgError::NonFiniteInput`] for NaN/inf entries and
    /// [`LinalgError::EigenNoConvergence`] if 100 sweeps do not reduce the
    /// off-diagonal mass below tolerance (does not happen for well-scaled
    /// covariance matrices).
    ///
    /// # Panics
    /// Panics when `a` is not square.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        assert!(a.is_square(), "SymEigen::decompose: matrix must be square");
        if !a.all_finite() {
            return Err(LinalgError::NonFiniteInput);
        }
        let n = a.rows();
        if n == 0 {
            return Ok(Self { values: Vec::new(), vectors: Matrix::zeros(0, 0) });
        }
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);
        let scale = m.frobenius_norm().max(1.0);
        let tol = 1e-14 * scale;

        const MAX_SWEEPS: usize = 100;
        for _ in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                return Ok(Self::sorted(m, v));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n * n) as f64 {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    apply_rotation(&mut m, &mut v, p, q, c, s);
                }
            }
        }
        let off = off_diagonal_norm(&m);
        if off <= tol * 10.0 {
            Ok(Self::sorted(m, v))
        } else {
            Err(LinalgError::EigenNoConvergence { off_diagonal: off })
        }
    }

    fn sorted(m: Matrix, v: Matrix) -> Self {
        let n = m.rows();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("finite eigenvalues"));
        let values: Vec<f64> = idx.iter().map(|&i| m[(i, i)]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_c, &old_c) in idx.iter().enumerate() {
            for r in 0..n {
                vectors[(r, new_c)] = v[(r, old_c)];
            }
        }
        Self { values, vectors }
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for p in 0..n {
        for q in (p + 1)..n {
            acc += 2.0 * m[(p, q)] * m[(p, q)];
        }
    }
    acc.sqrt()
}

/// Classic Jacobi rotation angle for annihilating `a_pq`.
fn jacobi_rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let theta = (aqq - app) / (2.0 * apq);
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    (c, t * c)
}

fn apply_rotation(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];
    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;
    for i in 0..n {
        if i != p && i != q {
            let aip = m[(i, p)];
            let aiq = m[(i, q)];
            m[(i, p)] = c * aip - s * aiq;
            m[(p, i)] = m[(i, p)];
            m[(i, q)] = s * aip + c * aiq;
            m[(q, i)] = m[(i, q)];
        }
    }
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = SymEigen::decompose(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two_closed_form() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_v_lambda_vt() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 5.0, -1.0],
            vec![0.5, -1.0, 3.0],
        ]);
        let e = SymEigen::decompose(&a).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!((&rec - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = SymEigen::decompose(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!((&vtv - &Matrix::identity(3)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_rows(&[vec![1.0, 0.2], vec![0.2, -3.0]]);
        let e = SymEigen::decompose(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_yields_empty_decomposition() {
        let e = SymEigen::decompose(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn rejects_non_finite() {
        let a = Matrix::from_rows(&[vec![f64::INFINITY]]);
        assert!(matches!(SymEigen::decompose(&a), Err(LinalgError::NonFiniteInput)));
    }
}
