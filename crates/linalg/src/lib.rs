//! Dense linear algebra substrate for the `hdp-osr` workspace.
//!
//! The HDP-OSR sampler and the SVM/EVT baselines only ever need small dense
//! matrices (feature dimension ≤ a few hundred), so this crate implements a
//! compact, allocation-conscious dense toolkit rather than binding to BLAS:
//!
//! * [`Matrix`] — row-major dense matrix with the usual arithmetic,
//! * [`Cholesky`] — SPD factorization with solves, inverse, log-determinant,
//!   and numerically careful rank-1 updates/downdates (the inner loop of the
//!   collapsed Gibbs sampler),
//! * [`SymEigen`] — cyclic Jacobi eigendecomposition for symmetric matrices,
//! * [`Pca`] — principal component analysis built on the above (used to
//!   project the USPS replica to 39 dimensions exactly as the paper does),
//! * [`vector`] — free functions over `&[f64]` slices (dot products, norms,
//!   distances) shared by every crate in the workspace,
//! * [`lanes`] — explicit-width f64 lane helpers (4-wide dot/axpy and the
//!   fused packed triangular solve) backing the vectorized predictive
//!   kernels of the dish bank.
//!
//! All routines are deterministic and panic-free on well-formed input;
//! failure modes that depend on the *values* (e.g. a non-positive-definite
//! matrix handed to Cholesky) surface as [`LinalgError`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod cholesky;
mod eigen;
mod error;
pub mod lanes;
mod matrix;
mod pca;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymEigen;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use pca::Pca;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
