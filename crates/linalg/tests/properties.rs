//! Property-based tests for the linear-algebra substrate.
//!
//! Random SPD matrices are built as `A = B B' + eps·I` so every generated
//! case is a legal input for Cholesky; the properties then check algebraic
//! identities rather than specific values.

use osr_linalg::{vector, Cholesky, Matrix, SymEigen};
use proptest::prelude::*;

const DIM_RANGE: std::ops::Range<usize> = 1..6;

fn finite_entry() -> impl Strategy<Value = f64> {
    // Keep magnitudes moderate so conditioning stays sane.
    -3.0..3.0f64
}

prop_compose! {
    fn spd_matrix()(n in DIM_RANGE)(
        n in Just(n),
        entries in prop::collection::vec(finite_entry(), n * n),
    ) -> Matrix {
        let b = Matrix::from_vec(n, n, entries);
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += 0.5 + n as f64 * 0.1;
        }
        a
    }
}

prop_compose! {
    fn spd_with_vector()(a in spd_matrix())(
        a in Just(a.clone()),
        x in prop::collection::vec(finite_entry(), a.rows()),
    ) -> (Matrix, Vec<f64>) {
        (a, x)
    }
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in spd_matrix()) {
        let ch = Cholesky::factor(&a).unwrap();
        let rel = (&ch.reconstruct() - &a).frobenius_norm() / a.frobenius_norm().max(1.0);
        prop_assert!(rel < 1e-10, "relative reconstruction error {rel}");
    }

    #[test]
    fn cholesky_solve_is_inverse_of_matvec((a, x) in spd_with_vector()) {
        let ch = Cholesky::factor(&a).unwrap();
        let b = a.matvec(&x);
        let got = ch.solve(&b);
        for (g, e) in got.iter().zip(&x) {
            prop_assert!((g - e).abs() < 1e-6, "solve drift: {g} vs {e}");
        }
    }

    #[test]
    fn rank1_update_matches_refactorization((a, x) in spd_with_vector()) {
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.update(&x);
        let mut ax = a.clone();
        ax.syr(1.0, &x);
        let direct = Cholesky::factor(&ax).unwrap();
        let diff = (&ch.reconstruct() - &direct.reconstruct()).frobenius_norm();
        prop_assert!(diff < 1e-8 * ax.frobenius_norm().max(1.0), "update drift {diff}");
    }

    #[test]
    fn update_then_downdate_roundtrips((a, x) in spd_with_vector()) {
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.update(&x);
        ch.downdate(&x).unwrap();
        let diff = (&ch.reconstruct() - &a).frobenius_norm();
        prop_assert!(diff < 1e-7 * a.frobenius_norm().max(1.0), "roundtrip drift {diff}");
    }

    #[test]
    fn log_det_is_additive_under_scaling(a in spd_matrix()) {
        let n = a.rows() as f64;
        let ch = Cholesky::factor(&a).unwrap();
        let scaled = &a * 2.0;
        let ch2 = Cholesky::factor(&scaled).unwrap();
        // det(2A) = 2^n det(A)
        prop_assert!((ch2.log_det() - (ch.log_det() + n * 2.0f64.ln())).abs() < 1e-8);
    }

    #[test]
    fn inv_quad_form_is_nonnegative((a, x) in spd_with_vector()) {
        let ch = Cholesky::factor(&a).unwrap();
        prop_assert!(ch.inv_quad_form(&x) >= 0.0);
    }

    #[test]
    fn eigenvalues_of_spd_are_positive_and_sum_to_trace(a in spd_matrix()) {
        let e = SymEigen::decompose(&a).unwrap();
        for &v in &e.values {
            prop_assert!(v > 0.0, "SPD matrix produced eigenvalue {v}");
        }
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8 * a.trace().abs().max(1.0));
    }

    #[test]
    fn eigenvectors_diagonalize(a in spd_matrix()) {
        let e = SymEigen::decompose(&a).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        let rel = (&rec - &a).frobenius_norm() / a.frobenius_norm().max(1.0);
        prop_assert!(rel < 1e-8, "eigen reconstruction error {rel}");
    }

    #[test]
    fn dot_is_bilinear(
        x in prop::collection::vec(finite_entry(), 1..8),
        alpha in finite_entry(),
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let lhs = vector::dot(&x, &y);
        let rhs = alpha * vector::dot(&x, &x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
    }

    #[test]
    fn triangle_inequality_for_dist(
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random points from the seed.
        let f = |k: u64| ((seed.wrapping_mul(6364136223846793005).wrapping_add(k) >> 33) as f64
            / (1u64 << 31) as f64) - 1.0;
        let a: Vec<f64> = (0..n as u64).map(f).collect();
        let b: Vec<f64> = (n as u64..2 * n as u64).map(f).collect();
        let c: Vec<f64> = (2 * n as u64..3 * n as u64).map(f).collect();
        prop_assert!(vector::dist(&a, &c) <= vector::dist(&a, &b) + vector::dist(&b, &c) + 1e-12);
    }
}
