//! Property-based tests of the CRF sampler: bookkeeping invariants must
//! survive arbitrary sweep sequences on arbitrary group structures, and the
//! posterior state must remain internally consistent.

// Test code: the crate-level unwrap/expect ban targets sampler paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use osr_hdp::{Hdp, HdpConfig};
use osr_linalg::Matrix;
use osr_stats::NiwParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(d: usize) -> NiwParams {
    NiwParams::new(vec![0.0; d], 1.0, d as f64 + 2.0, Matrix::scaled_identity(d, 1.5)).unwrap()
}

prop_compose! {
    fn random_groups()(d in 1usize..4)(
        d in Just(d),
        sizes in prop::collection::vec(1usize..12, 1..4),
        seed in 0u64..10_000,
    ) -> (usize, Vec<Vec<Vec<f64>>>, u64) {
        // Deterministic pseudo-random data with cluster structure.
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let groups = sizes
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|i| {
                        let c = if i % 2 == 0 { 3.0 } else { -3.0 };
                        (0..d).map(|_| c + next() * 2.0).collect()
                    })
                    .collect()
            })
            .collect();
        (d, groups, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn invariants_hold_after_every_sweep((d, groups, seed) in random_groups()) {
        let cfg = HdpConfig { iterations: 1, ..Default::default() };
        let mut hdp = Hdp::new(params(d), cfg, groups.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            hdp.sweep(&mut rng);
            hdp.check_invariants();
        }
        // Total items across dish summaries equals the corpus size.
        let total: usize = groups.iter().map(Vec::len).sum();
        let from_dishes: usize = hdp.dish_summaries().iter().map(|s| s.n_items).sum();
        prop_assert_eq!(from_dishes, total);
        // Every item resolves to a live dish.
        for (j, g) in groups.iter().enumerate() {
            for i in 0..g.len() {
                let dish = hdp.dish_of(j, i);
                prop_assert!(
                    hdp.dish_summaries().iter().any(|s| s.id == dish),
                    "item ({j},{i}) points at a retired dish"
                );
            }
        }
    }

    #[test]
    fn table_and_dish_counts_are_coherent((d, groups, seed) in random_groups()) {
        let cfg = HdpConfig { iterations: 2, ..Default::default() };
        let mut hdp = Hdp::new(params(d), cfg, groups.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        hdp.run(&mut rng);

        let n_groups = groups.len();
        let summaries = hdp.dish_summaries();
        // Dishes ≤ tables ≤ items.
        let total_items: usize = groups.iter().map(Vec::len).sum();
        prop_assert!(hdp.n_dishes() <= hdp.total_tables());
        prop_assert!(hdp.total_tables() <= total_items);
        // Per-dish table counts sum to the total table count.
        let tables_from_dishes: usize = summaries.iter().map(|s| s.n_tables).sum();
        prop_assert_eq!(tables_from_dishes, hdp.total_tables());
        // Group summaries partition each group's items.
        for j in 0..n_groups {
            let s = hdp.group_summary(j);
            let sum: usize = s.dish_counts.iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(sum, groups[j].len());
            prop_assert_eq!(s.n_items, groups[j].len());
        }
    }

    #[test]
    fn joint_likelihood_is_finite_throughout((d, groups, seed) in random_groups()) {
        let cfg = HdpConfig { iterations: 1, ..Default::default() };
        let mut hdp = Hdp::new(params(d), cfg, groups).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..3 {
            hdp.sweep(&mut rng);
            let ll = hdp.joint_log_likelihood();
            prop_assert!(ll.is_finite(), "joint log-likelihood became {ll}");
            prop_assert!(hdp.gamma().is_finite() && hdp.gamma() > 0.0);
            prop_assert!(hdp.alpha().is_finite() && hdp.alpha() > 0.0);
        }
    }

    #[test]
    fn runs_are_reproducible((d, groups, seed) in random_groups()) {
        let cfg = HdpConfig { iterations: 2, ..Default::default() };
        let run = |s: u64| {
            let mut hdp = Hdp::new(params(d), cfg, groups.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(s);
            hdp.run(&mut rng);
            (0..groups.len())
                .flat_map(|j| (0..groups[j].len()).map(move |i| (j, i)))
                .map(|(j, i)| hdp.dish_of(j, i))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
