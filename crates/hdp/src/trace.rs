//! Per-sweep observability: the [`SweepTrace`] record and the sampler's
//! global metrics.
//!
//! Every Gibbs sweep — full-franchise ([`crate::Hdp::sweep`]) or warm batch
//! ([`crate::BatchSession::sweep`]) — reports into the process-wide metrics
//! registry (sweep count, seat-move count, wall-time histogram, current
//! concentrations), and the `*_traced` sweep variants additionally return a
//! [`SweepTrace`] snapshot of the sampler's convergence-relevant state.
//!
//! Traces are the substrate of the golden-trace determinism suite, so the
//! serialized form must be a pure function of `(data, config, seed)`:
//! [`SweepTrace`] therefore hand-implements `Serialize`/`Deserialize` and
//! **excludes `wall_ns`** — wall-time varies run to run and belongs in the
//! metrics histogram, not in the deterministic record. `wall_ns` stays on
//! the struct for programmatic consumers; deserialized traces carry 0.

use std::sync::OnceLock;

use serde::{field, DeError, Deserialize, Serialize, Value};

use osr_stats::metrics::{global, Counter, Gauge, Histogram};

use crate::state::HdpState;

/// Registry name of the sweep counter.
pub const SWEEPS_METRIC: &str = "hdp.sweeps";
/// Registry name of the seat-move counter (Eq. 7 item reseatings plus
/// Eq. 8 table dish resamplings).
pub const SEAT_MOVES_METRIC: &str = "hdp.seat_moves";
/// Registry name of the per-sweep wall-time histogram (nanoseconds).
pub const SWEEP_TIME_METRIC: &str = "hdp.sweep_time_ns";
/// Registry name of the γ gauge (last value any sampler thread wrote).
pub const GAMMA_METRIC: &str = "hdp.gamma";
/// Registry name of the α₀ gauge (last value any sampler thread wrote).
pub const ALPHA_METRIC: &str = "hdp.alpha";

pub(crate) struct SweepMetrics {
    pub sweeps: Counter,
    pub seat_moves: Counter,
    pub sweep_time_ns: Histogram,
    pub gamma: Gauge,
    pub alpha: Gauge,
}

/// Registry handles, resolved once per process; the per-sweep hot path is
/// pure relaxed atomics.
pub(crate) fn sweep_metrics() -> &'static SweepMetrics {
    static CELL: OnceLock<SweepMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = global();
        SweepMetrics {
            sweeps: reg.counter(SWEEPS_METRIC),
            seat_moves: reg.counter(SEAT_MOVES_METRIC),
            sweep_time_ns: reg.histogram(SWEEP_TIME_METRIC),
            gamma: reg.gauge(GAMMA_METRIC),
            alpha: reg.gauge(ALPHA_METRIC),
        }
    })
}

/// Record one finished sweep into the global registry.
pub(crate) fn record_sweep(state: &HdpState, wall_ns: u64, seat_moves: u64) {
    let m = sweep_metrics();
    m.sweeps.inc();
    m.seat_moves.add(seat_moves);
    m.sweep_time_ns.record(wall_ns);
    // Gauges race benignly across sampler threads: "a recent value".
    m.gamma.set(state.gamma);
    m.alpha.set(state.alpha);
}

/// Convergence-relevant snapshot of one Gibbs sweep.
///
/// All fields except [`wall_ns`](Self::wall_ns) are deterministic functions
/// of `(data, config, seed)`; the serialized (JSON) form contains exactly
/// those fields and is therefore byte-identical across runs and worker
/// counts.
#[derive(Debug, Clone)]
pub struct SweepTrace {
    /// 0-based sweep index within this sampler/session's lifetime.
    pub sweep: usize,
    /// Joint log marginal likelihood after the sweep.
    pub log_likelihood: f64,
    /// Live dishes (subclasses) after the sweep.
    pub n_dishes: usize,
    /// Total tables across all groups (`m_··`).
    pub total_tables: usize,
    /// Tables per group, training groups first (a warm session's batch
    /// group is the last entry).
    pub tables_per_group: Vec<usize>,
    /// Top-level concentration γ after the sweep.
    pub gamma: f64,
    /// Group-level concentration α₀ after the sweep.
    pub alpha: f64,
    /// Seating decisions taken in this sweep (item reseatings + table dish
    /// resamplings).
    pub seat_moves: u64,
    /// Sweep wall-time in nanoseconds. **Not serialized** (run-dependent);
    /// 0 after deserialization.
    pub wall_ns: u64,
}

pub(crate) fn build_trace(
    state: &HdpState,
    sweep: usize,
    wall_ns: u64,
    seat_moves: u64,
    log_likelihood: f64,
) -> SweepTrace {
    SweepTrace {
        sweep,
        log_likelihood,
        n_dishes: state.n_dishes(),
        total_tables: state.total_tables(),
        tables_per_group: state.tables.iter().map(Vec::len).collect(),
        gamma: state.gamma,
        alpha: state.alpha,
        seat_moves,
        wall_ns,
    }
}

impl Serialize for SweepTrace {
    fn to_value(&self) -> Value {
        // wall_ns deliberately omitted: see the struct docs.
        Value::Obj(vec![
            ("sweep".to_string(), self.sweep.to_value()),
            ("log_likelihood".to_string(), self.log_likelihood.to_value()),
            ("n_dishes".to_string(), self.n_dishes.to_value()),
            ("total_tables".to_string(), self.total_tables.to_value()),
            ("tables_per_group".to_string(), self.tables_per_group.to_value()),
            ("gamma".to_string(), self.gamma.to_value()),
            ("alpha".to_string(), self.alpha.to_value()),
            ("seat_moves".to_string(), self.seat_moves.to_value()),
        ])
    }
}

impl Deserialize for SweepTrace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => Ok(Self {
                sweep: field(entries, "sweep")?,
                log_likelihood: field(entries, "log_likelihood")?,
                n_dishes: field(entries, "n_dishes")?,
                total_tables: field(entries, "total_tables")?,
                tables_per_group: field(entries, "tables_per_group")?,
                gamma: field(entries, "gamma")?,
                alpha: field(entries, "alpha")?,
                seat_moves: field(entries, "seat_moves")?,
                wall_ns: 0,
            }),
            other => Err(DeError::expected("struct SweepTrace", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepTrace {
        SweepTrace {
            sweep: 3,
            log_likelihood: -123.456,
            n_dishes: 4,
            total_tables: 9,
            tables_per_group: vec![4, 3, 2],
            gamma: 95.5,
            alpha: 9.25,
            seat_moves: 170,
            wall_ns: 987_654,
        }
    }

    #[test]
    fn serialization_excludes_wall_time() {
        let v = sample().to_value();
        assert!(v.get("wall_ns").is_none(), "wall_ns must not be serialized");
        assert_eq!(v.get("sweep"), Some(&Value::Num(3.0)));
    }

    #[test]
    fn roundtrip_preserves_everything_but_wall_time() {
        let t = sample();
        let back = SweepTrace::from_value(&t.to_value()).unwrap();
        assert_eq!(back.sweep, t.sweep);
        assert_eq!(back.log_likelihood, t.log_likelihood);
        assert_eq!(back.n_dishes, t.n_dishes);
        assert_eq!(back.total_tables, t.total_tables);
        assert_eq!(back.tables_per_group, t.tables_per_group);
        assert_eq!(back.gamma, t.gamma);
        assert_eq!(back.alpha, t.alpha);
        assert_eq!(back.seat_moves, t.seat_moves);
        assert_eq!(back.wall_ns, 0, "wall time is run-local, not persisted");
    }
}
