//! Fit-once / serve-many: checkpointing a converged sampler and serving
//! warm-start batch sessions from it.
//!
//! The paper's method is transductive — every test batch is co-clustered
//! with the full training set, so serving `B` batches cold costs
//! `B × iterations × (N_train + N_batch)` seating moves. A
//! [`PosteriorSnapshot`] freezes the converged training arrangement once;
//! each [`BatchSession`] then clones the snapshot (sharing the training
//! observations behind `Arc`s), appends *only* its test group, and reseats
//! just that group for a handful of sweeps. Per batch the cost drops to
//! `O(sweeps × N_batch)` seating moves against the frozen training
//! posterior.
//!
//! What stays frozen and what moves:
//!
//! * **Frozen**: training seating (tables and assignments of every training
//!   group), hence also every training group's subclass composition.
//! * **Warm-started**: concentrations γ/α₀ (they continue from their
//!   converged values and keep being resampled), dish sufficient statistics
//!   (batch items joining a dish update its NIW posterior inside the
//!   session's private clone — the collective, transductive part).
//! * **Re-sampled per batch**: the batch group's tables, its items' dish
//!   memberships, and any brand-new dishes the batch nucleates.

use std::sync::Arc;

use rand::Rng;

use osr_stats::{NiwParams, NiwPosterior};

use crate::sampler::validate_group;
use crate::state::{DishId, DishSummary, GroupSummary, HdpConfig, HdpState};
use crate::trace::{self, SweepTrace};
use crate::watchdog::{self, Divergence};
use crate::{Hdp, Result};

/// An immutable checkpoint of a converged sampler: the seating arrangement,
/// every dish's NIW sufficient statistics, and the concentrations.
///
/// Produced by [`Hdp::snapshot`]; consumed by [`PosteriorSnapshot::session`]
/// (warm-start serving) and [`PosteriorSnapshot::restore`] (resume full
/// sampling). Cloning is cheap in the data dimension: group observations
/// are shared, only bookkeeping and O(K·d²) dish statistics are copied.
#[derive(Debug, Clone)]
pub struct PosteriorSnapshot {
    state: HdpState,
    config: HdpConfig,
    prior_post: NiwPosterior,
}

impl PosteriorSnapshot {
    pub(crate) fn from_parts(
        state: HdpState,
        config: HdpConfig,
        prior_post: NiwPosterior,
    ) -> Self {
        Self { state, config, prior_post }
    }

    /// Number of (training) groups in the checkpoint.
    pub fn n_groups(&self) -> usize {
        self.state.groups.len()
    }

    /// Number of live dishes.
    pub fn n_dishes(&self) -> usize {
        self.state.n_dishes()
    }

    /// Total number of tables across all groups (`m_··`).
    pub fn total_tables(&self) -> usize {
        self.state.total_tables()
    }

    /// Checkpointed top-level concentration γ.
    pub fn gamma(&self) -> f64 {
        self.state.gamma
    }

    /// Checkpointed group-level concentration α₀.
    pub fn alpha(&self) -> f64 {
        self.state.alpha
    }

    /// The base-measure parameters.
    pub fn params(&self) -> &NiwParams {
        &self.state.params
    }

    /// The sampler configuration the checkpoint was taken under.
    pub fn config(&self) -> &HdpConfig {
        &self.config
    }

    /// Dish explaining item `i` of group `j` in the frozen arrangement.
    pub fn dish_of(&self, group: usize, item: usize) -> DishId {
        self.state.dish_of(group, item)
    }

    /// The observations of training group `group` (one row per item) — lets
    /// a consumer reconstruct its per-class training data from a durable
    /// checkpoint alone.
    ///
    /// # Panics
    /// Panics when `group` is out of range.
    pub fn group_points(&self, group: usize) -> &[Vec<f64>] {
        &self.state.groups[group]
    }

    /// Per-dish item counts within one group, sorted by descending count.
    pub fn group_summary(&self, group: usize) -> GroupSummary {
        self.state.group_summary(group)
    }

    /// Summaries of every live dish, sorted by id.
    pub fn dish_summaries(&self) -> Vec<DishSummary> {
        self.state.dish_summaries()
    }

    /// Joint log marginal likelihood of the frozen state.
    pub fn joint_log_likelihood(&self) -> f64 {
        self.state.joint_log_likelihood()
    }

    /// One past the largest dish id ever allocated in the checkpoint: a
    /// pseudo-id guaranteed to collide with no training dish, used by
    /// degraded frozen inference to pool every MAP-novel point into a single
    /// stand-in "new" subclass.
    pub fn fresh_dish_id(&self) -> DishId {
        self.state.dishes.len()
    }

    /// MAP dish assignment of `x` under the frozen global mixture — the
    /// degraded-mode replacement for reseating. Scores each live dish `k` by
    /// `ln m_·k + f_k(x)` and the "brand-new dish" option by `ln γ + f_H(x)`
    /// (the menu weights of Eq. 8 with the batch contributing nothing);
    /// returns `None` when the new-dish option wins, i.e. no frozen subclass
    /// explains `x` better than the prior.
    ///
    /// # Panics
    /// Panics when `x` does not match the base measure's dimension.
    pub fn map_dish(&self, x: &[f64]) -> Option<DishId> {
        let (live, slots) = self.live_menu();
        let mut scratch = vec![0.0; slots.len() * self.state.bank.dim()];
        let mut scores = Vec::with_capacity(slots.len());
        self.map_dish_banked(x, &live, &slots, &mut scratch, &mut scores)
    }

    /// [`Self::map_dish`] over a whole batch: the live menu, the solve
    /// scratch, and the score buffer are built once and reused across
    /// points, so degraded frozen serving runs the one-vs-all kernel
    /// back-to-back with no per-point allocation beyond the result.
    ///
    /// # Panics
    /// Panics when any point does not match the base measure's dimension.
    pub fn map_dishes(&self, points: &[Vec<f64>]) -> Vec<Option<DishId>> {
        let (live, slots) = self.live_menu();
        let mut scratch = vec![0.0; slots.len() * self.state.bank.dim()];
        let mut scores = Vec::with_capacity(slots.len());
        points
            .iter()
            .map(|x| self.map_dish_banked(x, &live, &slots, &mut scratch, &mut scores))
            .collect()
    }

    /// Live menu as parallel `(dish id, m_·k)` rows and bank-slot list,
    /// ascending id — the shape the one-vs-all kernel consumes.
    #[allow(clippy::type_complexity)]
    fn live_menu(&self) -> (Vec<(DishId, usize)>, Vec<osr_stats::Slot>) {
        let live: Vec<(DishId, usize)> =
            self.state.live_dishes().map(|(id, d)| (id, d.n_tables)).collect();
        let slots: Vec<osr_stats::Slot> =
            self.state.live_dishes().map(|(_, d)| d.slot).collect();
        (live, slots)
    }

    fn map_dish_banked(
        &self,
        x: &[f64],
        live: &[(DishId, usize)],
        slots: &[osr_stats::Slot],
        scratch: &mut [f64],
        scores: &mut Vec<f64>,
    ) -> Option<DishId> {
        let new_lw = self.state.gamma.ln() + self.prior_post.predictive_logpdf(x);
        scores.clear();
        // One fused pass over the bank replaces the per-dish predictive
        // loop; ties still resolve to the lowest dish id (strict `>`).
        self.state.bank.score_all(slots, x, scratch, scores);
        let mut best: Option<(DishId, f64)> = None;
        for (&(id, n_tables), &lp) in live.iter().zip(scores.iter()) {
            let lw = (n_tables as f64).ln() + lp;
            if best.is_none_or(|(_, b)| lw > b) {
                best = Some((id, lw));
            }
        }
        match best {
            Some((id, lw)) if lw >= new_lw => Some(id),
            _ => None,
        }
    }

    /// Rebuild a full sampler from the checkpoint (the inverse of
    /// [`Hdp::snapshot`]): the restored sampler continues sweeping *all*
    /// groups from the frozen arrangement.
    pub fn restore(&self) -> Hdp {
        Hdp::from_parts(self.state.clone(), self.config, self.prior_post.clone())
    }

    /// Append this checkpoint's sections (base measure, config, seating,
    /// dish bank, prior posterior) to a durable snapshot container. The
    /// byte output is a pure function of the checkpoint's canonical state:
    /// writing the same checkpoint twice — or writing a checkpoint decoded
    /// by [`Self::read_sections`] — produces identical bytes.
    pub fn write_sections(&self, w: &mut osr_stats::snapshot::SnapshotWriter) {
        crate::persist::write_sections(&self.state, &self.config, &self.prior_post, w);
    }

    /// Decode a checkpoint from a verified snapshot container, revalidating
    /// every decoded invariant (dimensions, seating cross-references, bank
    /// consistency) so that serving from the result can never panic on
    /// corrupted-but-CRC-valid input.
    ///
    /// # Errors
    /// Typed [`osr_stats::snapshot::SnapshotError`] on any missing section,
    /// truncation, dimension mismatch, or invariant violation.
    pub fn read_sections(
        file: &osr_stats::snapshot::SnapshotFile<'_>,
    ) -> osr_stats::snapshot::SnapResult<Self> {
        let (state, config, prior_post) = crate::persist::read_sections(file)?;
        Ok(Self { state, config, prior_post })
    }

    /// Open a warm serving session: clone the checkpoint, append `batch` as
    /// one more group, and return a session that reseats only that group.
    ///
    /// # Errors
    /// Rejects an empty batch, dimension mismatches against the base
    /// measure, and non-finite values.
    pub fn session(&self, batch: Vec<Vec<f64>>) -> Result<BatchSession> {
        let batch_group = self.state.groups.len();
        validate_group(batch_group, &batch, self.state.params.dim())?;
        let mut state = self.state.clone();
        state.assignment.push(vec![usize::MAX; batch.len()]);
        state.tables.push(Vec::new());
        state.groups.push(Arc::new(batch));
        Ok(BatchSession {
            state,
            config: self.config,
            batch_group,
            initialized: false,
            sweeps_done: 0,
            last_sweep_wall_ns: 0,
            last_sweep_moves: 0,
        })
    }
}

/// One warm-start serving session: a private clone of a
/// [`PosteriorSnapshot`] with a single test batch appended as the last
/// group. Sweeps reseat only the batch group — training items never move,
/// training tables never empty, so the checkpointed class structure is
/// invariant while the batch still enjoys the full collective decision
/// (its points may join training dishes or nucleate new ones).
#[derive(Debug, Clone)]
pub struct BatchSession {
    state: HdpState,
    config: HdpConfig,
    batch_group: usize,
    initialized: bool,
    /// Warm sweeps completed by this session (the `sweep` index of traces).
    sweeps_done: usize,
    /// Wall-time of the most recent sweep, nanoseconds.
    last_sweep_wall_ns: u64,
    /// Seating decisions taken in the most recent sweep.
    last_sweep_moves: u64,
}

impl BatchSession {
    /// Index of the batch group (training groups are `0..batch_group`).
    pub fn batch_group(&self) -> usize {
        self.batch_group
    }

    /// Number of points in the batch.
    pub fn batch_len(&self) -> usize {
        self.state.groups[self.batch_group].len()
    }

    /// One warm Gibbs sweep over the batch group only: reseat every batch
    /// item (Eq. 7), resample every batch table's dish (Eq. 8), then the
    /// concentrations. The first call runs a sequential CRF seating pass
    /// first, exactly like [`Hdp::run`] does for the full problem.
    pub fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        #[cfg(feature = "fault-inject")]
        if osr_stats::faults::hit(osr_stats::faults::sites::ENGINE_SWEEP)
            == Some(osr_stats::faults::Fault::Diverge)
        {
            osr_stats::divergence::poison("injected: engine sweep divergence");
        }
        let started = std::time::Instant::now();
        let moves_before = self.state.seat_moves;
        self.ensure_initialized(rng);
        self.state.seat_group_items(self.batch_group, rng);
        self.state.resample_group_dishes(self.batch_group, rng);
        if self.config.resample_concentrations {
            self.state.resample_concentrations(&self.config, rng);
        }
        self.sweeps_done += 1;
        self.last_sweep_wall_ns = started.elapsed().as_nanos() as u64;
        self.last_sweep_moves = self.state.seat_moves - moves_before;
        trace::record_sweep(&self.state, self.last_sweep_wall_ns, self.last_sweep_moves);
    }

    /// [`Self::sweep`] plus a [`SweepTrace`] of the post-sweep state.
    pub fn sweep_traced<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SweepTrace {
        self.sweep(rng);
        self.build_trace(self.state.joint_log_likelihood())
    }

    /// [`Self::sweep`] under the divergence watchdog: runs one sweep, then
    /// consumes the thread's poison flag and audits concentrations and the
    /// joint log-likelihood. An `Err` means the session state can no longer
    /// be trusted — the caller should discard the session and retry the
    /// batch with a fresh seed or fall back to degraded frozen inference.
    pub fn sweep_checked<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<(), Divergence> {
        self.sweep_checked_traced(rng).map(|_| ())
    }

    /// [`Self::sweep_checked`], returning the [`SweepTrace`] on a healthy
    /// sweep. The trace's log-likelihood doubles as the watchdog's
    /// finiteness audit, so tracing adds no extra likelihood evaluation.
    pub fn sweep_checked_traced<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> std::result::Result<SweepTrace, Divergence> {
        self.sweep(rng);
        let trace = self.build_trace(self.state.joint_log_likelihood());
        watchdog::check_health_with_ll(&self.state, trace.log_likelihood)?;
        Ok(trace)
    }

    fn build_trace(&self, log_likelihood: f64) -> SweepTrace {
        trace::build_trace(
            &self.state,
            self.sweeps_done - 1,
            self.last_sweep_wall_ns,
            self.last_sweep_moves,
            log_likelihood,
        )
    }

    /// Run `sweeps` warm sweeps (the short `decision_sweeps` schedule of
    /// the serving layer).
    pub fn run<R: Rng + ?Sized>(&mut self, sweeps: usize, rng: &mut R) {
        for _ in 0..sweeps {
            self.sweep(rng);
        }
    }

    fn ensure_initialized<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        self.state.seat_group_items(self.batch_group, rng);
    }

    /// Dish currently explaining batch item `i`.
    ///
    /// # Panics
    /// Panics before the first sweep.
    pub fn dish_of(&self, item: usize) -> DishId {
        self.state.dish_of(self.batch_group, item)
    }

    /// Number of live dishes (shared training dishes plus any the batch
    /// nucleated).
    pub fn n_dishes(&self) -> usize {
        self.state.n_dishes()
    }

    /// Current top-level concentration γ.
    pub fn gamma(&self) -> f64 {
        self.state.gamma
    }

    /// Current group-level concentration α₀.
    pub fn alpha(&self) -> f64 {
        self.state.alpha
    }

    /// Per-dish item counts within one group (training or batch), sorted by
    /// descending count.
    pub fn group_summary(&self, group: usize) -> GroupSummary {
        self.state.group_summary(group)
    }

    /// Summaries of every live dish, sorted by id.
    pub fn dish_summaries(&self) -> Vec<DishSummary> {
        self.state.dish_summaries()
    }

    /// Joint log marginal likelihood of the session's current state.
    pub fn joint_log_likelihood(&self) -> f64 {
        self.state.joint_log_likelihood()
    }

    /// Exhaustive state audit (tests run this after sweeps).
    ///
    /// # Panics
    /// Panics on any bookkeeping inconsistency.
    pub fn check_invariants(&self) {
        if self.initialized {
            self.state.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn niw(d: usize) -> NiwParams {
        NiwParams::new(vec![0.0; d], 1.0, d as f64 + 3.0, Matrix::identity(d)).unwrap()
    }

    fn blob(rng: &mut StdRng, center: &[f64], n: usize, std: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + std * osr_stats::sampling::standard_normal(rng))
                    .collect()
            })
            .collect()
    }

    fn config() -> HdpConfig {
        HdpConfig {
            gamma_prior: (2.0, 1.0),
            alpha_prior: (2.0, 1.0),
            resample_concentrations: true,
            iterations: 10,
        }
    }

    /// Two well-separated training groups, converged.
    fn trained(rng: &mut StdRng) -> Hdp {
        let g1 = blob(rng, &[-6.0, 0.0], 40, 0.5);
        let g2 = blob(rng, &[6.0, 0.0], 40, 0.5);
        let mut hdp = Hdp::new(niw(2), config(), vec![g1, g2]).unwrap();
        hdp.run(rng);
        hdp
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_the_arrangement() {
        let mut rng = StdRng::seed_from_u64(1);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        let restored = snap.restore();
        restored.check_invariants();
        assert_eq!(restored.n_dishes(), hdp.n_dishes());
        assert_eq!(restored.total_tables(), hdp.total_tables());
        for j in 0..2 {
            for i in 0..40 {
                assert_eq!(restored.dish_of(j, i), hdp.dish_of(j, i));
            }
        }
        // The restored sampler is live: it can keep sweeping.
        let mut resumed = snap.restore();
        resumed.sweep(&mut rng);
        resumed.check_invariants();
    }

    #[test]
    fn snapshot_sections_roundtrip_byte_identically_and_serve_bit_equal() {
        let mut rng = StdRng::seed_from_u64(21);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();

        let encode = |s: &PosteriorSnapshot| {
            let mut w =
                osr_stats::snapshot::SnapshotWriter::new("cdosr", s.params().dim());
            s.write_sections(&mut w);
            w.finish()
        };
        let bytes = encode(&snap);
        // Encoding is a pure function of canonical state.
        assert_eq!(bytes, encode(&snap));

        let file = osr_stats::snapshot::SnapshotFile::parse(&bytes).unwrap();
        let decoded = PosteriorSnapshot::read_sections(&file).unwrap();
        // Save → load → re-save is byte-identical.
        assert_eq!(bytes, encode(&decoded));

        // The reloaded checkpoint is observationally bit-equal: structure,
        // likelihood, MAP decisions, and a warm serve under one seed.
        assert_eq!(snap.n_dishes(), decoded.n_dishes());
        assert_eq!(snap.total_tables(), decoded.total_tables());
        assert_eq!(snap.gamma().to_bits(), decoded.gamma().to_bits());
        assert_eq!(snap.alpha().to_bits(), decoded.alpha().to_bits());
        assert_eq!(
            snap.joint_log_likelihood().to_bits(),
            decoded.joint_log_likelihood().to_bits()
        );
        let probe = vec![vec![-6.0, 0.2], vec![6.1, -0.1], vec![0.0, 9.0]];
        assert_eq!(snap.map_dishes(&probe), decoded.map_dishes(&probe));
        let serve = |s: &PosteriorSnapshot| {
            let mut rng = StdRng::seed_from_u64(77);
            let mut sess = s.session(probe.clone()).unwrap();
            sess.run(3, &mut rng);
            (0..probe.len()).map(|i| sess.dish_of(i)).collect::<Vec<_>>()
        };
        assert_eq!(serve(&snap), serve(&decoded));
        decoded.restore().check_invariants();
    }

    #[test]
    fn snapshot_sections_reject_tampered_seating() {
        let mut rng = StdRng::seed_from_u64(22);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        // Re-encode the seating section with a table pointing at a retired
        // dish id: the CRCs pass (we re-stamp them), so the typed error must
        // come from the cross-validation layer.
        let mut w = osr_stats::snapshot::SnapshotWriter::new("cdosr", 2);
        snap.write_sections(&mut w);
        let bytes = w.finish();
        let file = osr_stats::snapshot::SnapshotFile::parse(&bytes).unwrap();
        let mut decoded = PosteriorSnapshot::read_sections(&file).unwrap();
        decoded.state.tables[0][0].dish = decoded.state.dishes.len() + 7;
        let mut w = osr_stats::snapshot::SnapshotWriter::new("cdosr", 2);
        decoded.write_sections(&mut w);
        let tampered = w.finish();
        let file = osr_stats::snapshot::SnapshotFile::parse(&tampered).unwrap();
        assert!(matches!(
            PosteriorSnapshot::read_sections(&file),
            Err(osr_stats::snapshot::SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn snapshot_shares_training_observations() {
        let mut rng = StdRng::seed_from_u64(2);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        let sess = snap.session(vec![vec![0.0, 0.0]]).unwrap();
        // Snapshot, its clones, and sessions all point at the same group
        // buffers — no deep copy of the training set anywhere.
        assert!(Arc::ptr_eq(&snap.state.groups[0], &snap.clone().state.groups[0]));
        assert!(Arc::ptr_eq(&snap.state.groups[0], &sess.state.groups[0]));
        assert!(Arc::ptr_eq(&snap.state.groups[1], &sess.state.groups[1]));
    }

    #[test]
    fn warm_session_leaves_training_seating_frozen() {
        let mut rng = StdRng::seed_from_u64(3);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        let batch = blob(&mut rng, &[-6.0, 0.0], 15, 0.5);
        let mut sess = snap.session(batch).unwrap();
        sess.run(5, &mut rng);
        sess.check_invariants();
        // Training composition is bit-identical to the checkpoint.
        for j in 0..2 {
            let before = snap.group_summary(j);
            let after = sess.group_summary(j);
            assert_eq!(before.dish_counts, after.dish_counts, "group {j} moved");
            assert_eq!(before.n_tables, after.n_tables);
        }
    }

    #[test]
    fn batch_near_a_training_class_joins_its_dish() {
        let mut rng = StdRng::seed_from_u64(4);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        let dominant = snap.group_summary(0).dish_counts[0].0;
        let batch = blob(&mut rng, &[-6.0, 0.0], 20, 0.5);
        let mut sess = snap.session(batch).unwrap();
        sess.run(3, &mut rng);
        let on_dominant =
            (0..20).filter(|&i| sess.dish_of(i) == dominant).count();
        assert!(on_dominant >= 16, "only {on_dominant}/20 joined the training dish");
    }

    #[test]
    fn far_away_batch_nucleates_a_new_dish() {
        let mut rng = StdRng::seed_from_u64(5);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        let training_dishes: std::collections::HashSet<DishId> =
            snap.dish_summaries().iter().map(|d| d.id).collect();
        let batch = blob(&mut rng, &[0.0, 9.0], 20, 0.5);
        let mut sess = snap.session(batch).unwrap();
        sess.run(3, &mut rng);
        sess.check_invariants();
        let new_points = (0..20)
            .filter(|&i| !training_dishes.contains(&sess.dish_of(i)))
            .count();
        assert!(new_points >= 16, "only {new_points}/20 left the training dishes");
        assert!(sess.n_dishes() > training_dishes.len());
    }

    #[test]
    fn session_is_deterministic_under_seed() {
        let mut rng = StdRng::seed_from_u64(6);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        let batch = blob(&mut rng, &[-6.0, 1.0], 10, 0.6);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sess = snap.session(batch.clone()).unwrap();
            sess.run(4, &mut rng);
            (0..10).map(|i| sess.dish_of(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn session_rejects_bad_batches() {
        let mut rng = StdRng::seed_from_u64(7);
        let hdp = trained(&mut rng);
        let snap = hdp.snapshot();
        assert!(snap.session(vec![]).is_err());
        assert!(snap.session(vec![vec![1.0]]).is_err());
        assert!(snap.session(vec![vec![f64::INFINITY, 0.0]]).is_err());
    }

    #[test]
    #[should_panic(expected = "has not run yet")]
    fn session_dish_of_requires_a_sweep() {
        let mut rng = StdRng::seed_from_u64(8);
        let hdp = trained(&mut rng);
        let sess = hdp.snapshot().session(vec![vec![0.0, 0.0]]).unwrap();
        let _ = sess.dish_of(0);
    }
}
